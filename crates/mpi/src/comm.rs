//! The per-rank communicator: point-to-point messaging with CUDA-aware
//! path selection, IPC handshakes, registration caching and virtual-time
//! accounting.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use dlsr_gpu::{DeviceEnv, GpuId, IpcRegistry};
use dlsr_net::{ClusterTopology, RegCacheStats, RegistrationCache, TransportPath};

use crate::clock::VClock;
use crate::config::{DeviceMode, MpiConfig};
use crate::error::CommError;
use crate::executor::budget::FlightBudget;
use crate::executor::fabric::EventFabric;
use crate::message::{Message, Payload};

/// Per-rank communication statistics (drives Fig 11's hit-rate numbers and
/// the transport-mix assertions in tests).
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    /// Bytes sent over NVLink P2P (IPC path).
    pub nvlink_bytes: u64,
    /// Bytes sent via host staging.
    pub staged_bytes: u64,
    /// Bytes sent over InfiniBand (RDMA + eager).
    pub ib_bytes: u64,
    /// Total virtual seconds spent pinning memory.
    pub pin_seconds: f64,
    /// Number of pin operations performed.
    pub pin_count: u64,
    /// Successful CUDA IPC mappings established.
    pub ipc_mappings: u64,
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// Retransmissions after injected loss/corruption (0 without faults).
    pub retries: u64,
    /// Virtual seconds spent in retry timeouts/backoff (0 without faults).
    pub backoff_seconds: f64,
    /// Extra virtual seconds charged by degraded-link windows (0 without
    /// faults).
    pub degraded_seconds: f64,
}

/// Which library's path-selection rules a message follows.
///
/// MVAPICH2 honours the device masks and IPC thresholds of the paper's
/// study. NCCL (§III-C: "NCCL and CUDA-Aware MPI libraries are able to
/// perform IPC transfers while the Python library is restricted") manages
/// its own IPC rings and persistent, pre-registered transport buffers — it
/// is immune to the `CUDA_VISIBLE_DEVICES` conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathPolicy {
    /// MVAPICH2-GDR semantics (device masks, IPC threshold, reg cache).
    #[default]
    Mpi,
    /// NCCL semantics (own IPC, own pre-registered buffers).
    NcclLike,
}

/// Handle for a posted nonblocking receive ([`Comm::irecv`]), redeemed by
/// [`Comm::wait`]. Dropping a request without waiting leaves the message in
/// the out-of-order buffer, exactly like an unmatched `MPI_Irecv`.
#[derive(Debug, Clone, Copy)]
#[must_use = "an irecv completes only when waited on"]
pub struct RecvRequest {
    src: usize,
    tag: u64,
    recv_buf_id: u64,
}

/// The message fabric behind one rank's communicator.
///
/// The variant never changes payloads or virtual-time arithmetic — both
/// are computed rank-locally in [`Comm`] before a message touches the
/// wire — so results are identical across wires by construction (the
/// equivalence suite asserts it).
pub(crate) enum Wire {
    /// Legacy threaded core: one crossbeam channel per rank.
    Channels {
        senders: Vec<Sender<Message>>,
        rx: Receiver<Message>,
    },
    /// Event context core: shared mailbox fabric with run-token scheduling.
    Event { fabric: Arc<EventFabric> },
    /// Driven core: sends accumulate locally and the single-threaded engine
    /// routes them between program segments. Blocking recv is forbidden —
    /// tasks poll with [`Comm::try_recv_buffered`].
    Driven { outbox: Vec<(usize, Message)> },
}

/// MPI communicator for one rank.
pub struct Comm {
    rank: usize,
    size: usize,
    topo: ClusterTopology,
    /// `topo.node_of(rank)`, cached: the send path resolves locality per
    /// message and the integer divisions showed up in the engine profile.
    my_node: usize,
    /// `topo.local_of(rank)`, cached (same reason).
    my_local: usize,
    env: DeviceEnv,
    cfg: Arc<MpiConfig>,
    clock: VClock,
    wire: Wire,
    budget: Option<Arc<FlightBudget>>,
    pending: VecDeque<Message>,
    regcache: RegistrationCache,
    ipc_registries: Arc<Vec<IpcRegistry>>,
    ipc_mapped: Vec<bool>,
    stats: CommStats,
    pub(crate) coll_seq: u64,
    policy: PathPolicy,
    /// When set, transport-path selection keys on this size instead of each
    /// message's own (see [`Comm::set_rendezvous_bytes`]).
    rendezvous_bytes: Option<u64>,
    /// NCCL's internal registration bookkeeping (always enabled — NCCL
    /// registers its persistent transport buffers once at init).
    nccl_regcache: RegistrationCache,
    /// Per-destination message sequence numbers feeding the deterministic
    /// fault plan (without the `faults` feature the field does not exist
    /// and the send path is byte-identical to the pre-fault build).
    #[cfg(feature = "faults")]
    send_seq: Vec<u64>,
    /// Cross-rank verifier for this world (debug builds only; without the
    /// `verify` feature the field does not exist and every hook below
    /// compiles to nothing).
    #[cfg(feature = "verify")]
    verify: Option<Arc<crate::verify::VerifyCtx>>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        topo: ClusterTopology,
        cfg: Arc<MpiConfig>,
        wire: Wire,
        budget: Option<Arc<FlightBudget>>,
        ipc_registries: Arc<Vec<IpcRegistry>>,
    ) -> Self {
        let size = topo.total_gpus();
        let local = topo.local_of(rank);
        let gpn = topo.gpus_per_node;
        let env = match cfg.device_mode {
            DeviceMode::Pinned => DeviceEnv::default_pinned(local),
            DeviceMode::PinnedWithMv2 => DeviceEnv::mpi_opt(local, gpn),
            DeviceMode::Unpinned => DeviceEnv::unpinned(gpn),
        };
        let regcache = if cfg.registration_cache {
            RegistrationCache::new(cfg.reg_cache_capacity)
        } else {
            RegistrationCache::disabled()
        };
        Comm {
            rank,
            size,
            my_node: topo.node_of(rank),
            my_local: local,
            topo,
            env,
            cfg,
            clock: VClock::zero(),
            wire,
            budget,
            pending: VecDeque::new(),
            regcache,
            ipc_registries,
            ipc_mapped: vec![false; size],
            stats: CommStats::default(),
            coll_seq: 0,
            policy: PathPolicy::Mpi,
            rendezvous_bytes: None,
            nccl_regcache: RegistrationCache::new(1 << 34),
            #[cfg(feature = "faults")]
            send_seq: vec![0; size],
            #[cfg(feature = "verify")]
            verify: None,
        }
    }

    /// Attach the world's cross-rank verifier (set by [`crate::MpiWorld`]
    /// right after construction, before the rank closure runs).
    #[cfg(feature = "verify")]
    pub(crate) fn attach_verify(&mut self, ctx: Arc<crate::verify::VerifyCtx>) {
        self.verify = Some(ctx);
    }

    /// Record + cross-check one collective signature (no-op unless the
    /// `verify` feature is on). Called at every top-level collective entry
    /// point, before any of the collective's messages move.
    #[inline]
    #[allow(unused_variables)]
    // one parameter per `CollSig` field: the arg list *is* the signature
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn verify_coll(
        &mut self,
        kind: &'static str,
        op: &'static str,
        dtype: &'static str,
        elems: usize,
        algo: &'static str,
        group: Option<usize>,
        root: usize,
    ) {
        #[cfg(feature = "verify")]
        if let Some(ctx) = self.verify.clone() {
            ctx.record_collective(
                self.rank,
                crate::verify::CollSig {
                    kind,
                    op,
                    dtype,
                    elems,
                    seq: self.coll_seq,
                    algo,
                    group,
                    root,
                },
            );
        }
    }

    /// Cross-rank checkpoint: all ranks must call this with the same label
    /// and marker, in the same program order (no-op unless `verify` is on).
    /// `dlsr-horovod` calls it at every negotiation round.
    #[inline]
    #[allow(unused_variables)]
    pub fn verify_checkpoint(&mut self, label: &'static str, marker: u64) {
        self.verify_coll("checkpoint", "-", "-", marker as usize, label, None, 0);
    }

    /// Record one fusion-group launch for launch-order verification
    /// (no-op unless `verify` is on). The overlapped optimizer calls this
    /// right before launching each group's allreduce.
    #[inline]
    #[allow(unused_variables)]
    pub fn verify_launch(&mut self, group: usize) {
        #[cfg(feature = "verify")]
        if let Some(ctx) = self.verify.clone() {
            ctx.record_launch(self.rank, group);
        }
    }

    /// Switch the path-selection policy (set to `NcclLike` inside NCCL
    /// backend collectives, restored to `Mpi` afterwards).
    pub fn set_path_policy(&mut self, policy: PathPolicy) {
        self.policy = policy;
    }

    /// Current path-selection policy.
    pub fn path_policy(&self) -> PathPolicy {
        self.policy
    }

    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// This rank's device environment.
    pub fn env(&self) -> &DeviceEnv {
        &self.env
    }

    /// Library configuration.
    pub fn config(&self) -> &MpiConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Advance local virtual time (compute, framework overhead, ...).
    pub fn advance(&mut self, dt: f64) {
        self.clock.advance(dt);
    }

    /// Advance the clock to at least `t` (no-op if already past it). Used
    /// by schedules that launch communication at planned offsets — e.g.
    /// Horovod fusion groups launching at cycle boundaries.
    pub fn advance_to(&mut self, t: f64) {
        self.clock.merge(t);
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Key transport-path selection on a parent transfer size instead of
    /// each message's own until cleared with `None`.
    ///
    /// Chunked collectives (the pipelined ring) stream one large registered
    /// buffer as `pipeline_chunk`-sized sub-messages. CUDA IPC mappings and
    /// the rendezvous-protocol choice are established once per *buffer* —
    /// MVAPICH2's large-message path decides against the registered
    /// transfer's size, then chunks internally — so the NVLink-vs-staged
    /// decision must see the parent size, not the sub-chunk's. Transfer
    /// *time* is still charged per message actually on the wire.
    ///
    /// Collectives set this on entry and clear it before returning; it is
    /// never left set across user-visible calls.
    pub fn set_rendezvous_bytes(&mut self, bytes: Option<u64>) {
        self.rendezvous_bytes = bytes;
    }

    /// Registration cache statistics.
    pub fn regcache_stats(&self) -> RegCacheStats {
        self.regcache.stats()
    }

    /// The GPU this rank drives.
    pub fn gpu(&self) -> GpuId {
        GpuId {
            node: self.topo.node_of(self.rank),
            local: self.topo.local_of(self.rank),
        }
    }

    /// Which transport a message of `bytes` to `dst` takes, performing the
    /// one-time CUDA IPC handshake (handle export + peer open) if the path
    /// requires a mapping that does not exist yet.
    fn resolve_path(&mut self, dst: usize, bytes: u64) -> Result<TransportPath, CommError> {
        let gpn = self.topo.gpus_per_node;
        let dst_node = dst / gpn;
        let same_node = dst_node == self.my_node;
        let my_local = self.my_local;
        let dst_local = dst - dst_node * gpn;
        if self.policy == PathPolicy::NcclLike && same_node {
            // NCCL sets up its own IPC rings at communicator init — the
            // framework's CUDA_VISIBLE_DEVICES mask does not constrain it,
            // and it uses the P2P path at every message size.
            if !self.ipc_mapped[dst] {
                self.clock.advance(self.cfg.ipc_setup_cost);
                self.ipc_mapped[dst] = true;
                self.stats.ipc_mappings += 1;
            }
            return Ok(TransportPath::NvlinkP2p);
        }
        let ipc_ok = same_node && self.env.ipc_possible(my_local, dst_local);
        let path = self.cfg.transport.path(false, same_node, ipc_ok, bytes);
        if path == TransportPath::NvlinkP2p && !self.ipc_mapped[dst] {
            // One-time handshake: export our buffer, peer opens it. Both
            // env masks are identical across ranks (same job config), so
            // simulating the peer's open with our env is faithful.
            let node = self.my_node;
            let reg = &self.ipc_registries[node];
            let buf = dlsr_gpu::device::DeviceBuffer {
                device: self.gpu(),
                id: (self.rank as u64) << 32 | dst as u64,
                bytes,
            };
            let handle = reg.get_mem_handle(buf);
            let peer = GpuId {
                node,
                local: dst_local,
            };
            reg.open_mem_handle(handle, peer, &self.env)
                .map_err(|e| CommError::Ipc(e.to_string()))?;
            self.clock.advance(self.cfg.ipc_setup_cost);
            self.ipc_mapped[dst] = true;
            self.stats.ipc_mappings += 1;
        }
        Ok(path)
    }

    /// Charge registration (pinning) for a buffer if the path needs it and
    /// the cache misses.
    fn charge_registration(&mut self, path: TransportPath, buf_id: u64, bytes: u64) {
        if !self.cfg.transport.needs_registration(path) {
            return;
        }
        let cache = match self.policy {
            PathPolicy::Mpi => &mut self.regcache,
            PathPolicy::NcclLike => &mut self.nccl_regcache,
        };
        if !cache.lookup(buf_id, bytes) {
            let t = self.cfg.transport.pin_time(bytes);
            self.clock.advance(t);
            self.stats.pin_seconds += t;
            self.stats.pin_count += 1;
        }
    }

    /// Extra wire time and retry charges from the fault plan, if any: link
    /// degradation stretches `transfer`, and loss/corruption verdicts are
    /// answered with the config's retry/timeout/backoff policy. The fault
    /// verdict is a pure function of (plan seed, src, dst, per-destination
    /// sequence number, attempt), so it is deterministic under the virtual
    /// clock, independent of OS thread scheduling. Only the *sender's*
    /// timeline is perturbed — failed attempts never reach the channel, so
    /// the receive path stays byte-identical and payloads stay exact.
    #[cfg(feature = "faults")]
    fn faulted_transfer(&mut self, dst: usize, transfer: f64) -> Result<f64, CommError> {
        use dlsr_trace::report::keys;
        let Some(plan) = self.cfg.fault_plan.clone() else {
            return Ok(transfer);
        };
        let mut transfer = transfer;
        let now = self.clock.now();
        let node_a = self.topo.node_of(self.rank);
        let node_b = self.topo.node_of(dst);
        if let Some(p) = plan.link_penalty(node_a, node_b, now) {
            let degraded = transfer * p.bandwidth_factor + p.extra_latency_s;
            let extra = degraded - transfer;
            self.stats.degraded_seconds += extra;
            dlsr_trace::counter_add(keys::FAULT_DEGRADED_SECONDS, extra);
            transfer = degraded;
        }
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        let retry = self.cfg.retry;
        for attempt in 1..=retry.max_attempts {
            let Some(kind) = plan.attempt_fault(self.rank, dst, seq, attempt, self.clock.now())
            else {
                return Ok(transfer);
            };
            let err = match kind {
                dlsr_faults::FaultKind::Lost => dlsr_net::TransportError::Lost {
                    src: self.rank,
                    dst,
                    attempt,
                },
                dlsr_faults::FaultKind::Corrupted => dlsr_net::TransportError::Corrupted {
                    src: self.rank,
                    dst,
                    attempt,
                },
            };
            if attempt == retry.max_attempts {
                return Err(CommError::RetriesExhausted {
                    src: self.rank,
                    dst,
                    attempts: retry.max_attempts,
                    last: err,
                });
            }
            // Failed attempt: the timeout fires after timeout·backoff^(k−1)
            // virtual seconds, then we retransmit.
            let wait = retry.timeout * retry.backoff.powi(attempt as i32 - 1);
            self.clock.advance(wait);
            self.stats.retries += 1;
            self.stats.backoff_seconds += wait;
            dlsr_trace::counter_add(keys::FAULT_RETRIES, 1.0);
            dlsr_trace::counter_add(keys::FAULT_BACKOFF_SECONDS, wait);
            match kind {
                dlsr_faults::FaultKind::Lost => dlsr_trace::counter_add(keys::FAULT_LOST, 1.0),
                dlsr_faults::FaultKind::Corrupted => {
                    dlsr_trace::counter_add(keys::FAULT_CORRUPT, 1.0)
                }
            }
        }
        Ok(transfer)
    }

    /// Non-blocking send (the wire carries the bandwidth cost; the sender
    /// pays CPU overhead, registration and any IPC setup).
    ///
    /// Panics on terminal errors ([`Comm::try_send`] returns them as
    /// values): one rank panicking tears down its channels and the whole
    /// world aborts together through `std::thread::scope`.
    ///
    /// `buf_id` identifies the application buffer for the registration
    /// cache — pass a stable id for reused buffers (fusion buffers) and a
    /// fresh id for transient ones.
    pub fn send(&mut self, dst: usize, tag: u64, payload: Payload, buf_id: u64) {
        if let Err(e) = self.try_send(dst, tag, payload, buf_id) {
            panic!("dlsr-mpi: rank {}: send failed: {e}", self.rank);
        }
    }

    /// [`Comm::send`], returning terminal failures instead of panicking.
    pub fn try_send(
        &mut self,
        dst: usize,
        tag: u64,
        payload: Payload,
        buf_id: u64,
    ) -> Result<(), CommError> {
        if dst >= self.size {
            return Err(CommError::InvalidRank {
                rank: dst,
                size: self.size,
            });
        }
        let bytes = payload.size_bytes();
        // The protocol decision (IPC/NVLink vs host staging, eager vs
        // rendezvous) is made for the registered parent buffer when a
        // chunked collective is streaming it as sub-chunks; each chunk
        // then rides the path the parent established. Transfer time below
        // still uses the chunk's own wire size.
        let path = self.resolve_path(dst, self.rendezvous_bytes.unwrap_or(bytes))?;
        self.charge_registration(path, buf_id, bytes);
        // NCCL launches a device kernel per transport step — higher
        // per-message CPU+launch overhead than MPI's host-driven engine.
        let overhead = match self.policy {
            PathPolicy::Mpi => self.cfg.send_overhead,
            PathPolicy::NcclLike => self.cfg.nccl_send_overhead,
        };
        self.clock.advance(overhead);
        {
            use dlsr_trace::report::keys;
            match path {
                TransportPath::NvlinkP2p => {
                    self.stats.nvlink_bytes += bytes;
                    dlsr_trace::counter_add(keys::NET_IPC, 1.0);
                }
                TransportPath::HostStaged => {
                    self.stats.staged_bytes += bytes;
                    dlsr_trace::counter_add(keys::NET_STAGED, 1.0);
                }
                TransportPath::IbRdma => {
                    self.stats.ib_bytes += bytes;
                    dlsr_trace::counter_add(keys::NET_RDMA, 1.0);
                }
                TransportPath::IbEager => {
                    self.stats.ib_bytes += bytes;
                    dlsr_trace::counter_add(keys::NET_EAGER, 1.0);
                }
                TransportPath::DeviceLocal => {
                    dlsr_trace::counter_add(keys::NET_LOCAL, 1.0);
                }
            }
        }
        let mut transfer = match self.policy {
            PathPolicy::Mpi => self.cfg.transport.transfer_time(path, bytes),
            PathPolicy::NcclLike => self.cfg.transport.transfer_time_nccl(path, bytes),
        };
        if matches!(path, TransportPath::IbRdma | TransportPath::IbEager) {
            // spine-crossing hops on the fat tree add switch latency
            transfer += self
                .cfg
                .fat_tree
                .extra_latency(self.my_node, dst / self.topo.gpus_per_node);
        }
        #[cfg(feature = "faults")]
        let transfer = self.faulted_transfer(dst, transfer)?;
        let arrival = self.clock.now() + transfer;
        // The wire occupancy of this message on the sender's virtual
        // timeline: departure at now(), delivery at arrival.
        dlsr_trace::record_span(
            || format!("{path:?} {bytes}B -> r{dst}"),
            dlsr_trace::cat::NET,
            self.clock.now(),
            arrival,
        );
        self.stats.sends += 1;
        self.deliver(
            dst,
            Message {
                src: self.rank,
                tag,
                payload,
                arrival,
            },
        )
    }

    /// Hand a finished message to the wire, charging the in-flight budget
    /// first. The charge is timing-neutral and uniform across wires, so
    /// the bounded-mailbox guarantee — and any overflow error — is
    /// core-independent.
    fn deliver(&mut self, dst: usize, msg: Message) -> Result<(), CommError> {
        if let Some(b) = &self.budget {
            if let Err(in_flight) = b.charge(&msg) {
                return Err(CommError::MailboxBudget {
                    rank: self.rank,
                    in_flight,
                    budget: b.limit(),
                });
            }
        }
        match &mut self.wire {
            Wire::Channels { senders, .. } => senders[dst]
                .send(msg)
                .map_err(|_| CommError::WorldTornDown { rank: self.rank }),
            Wire::Event { fabric } => fabric
                .deliver(dst, msg)
                .map_err(|()| CommError::WorldTornDown { rank: self.rank }),
            Wire::Driven { outbox } => {
                outbox.push((dst, msg));
                Ok(())
            }
        }
    }

    /// Blocking receive matching `(src, tag)`. `recv_buf_id` identifies the
    /// destination buffer for receiver-side registration.
    ///
    /// Panics on terminal errors ([`Comm::try_recv`] returns them as
    /// values), preserving the abort-all-ranks-together convention.
    pub fn recv(&mut self, src: usize, tag: u64, recv_buf_id: u64) -> Payload {
        match self.try_recv(src, tag, recv_buf_id) {
            Ok(p) => p,
            Err(e) => panic!("dlsr-mpi: rank {}: recv failed: {e}", self.rank),
        }
    }

    /// [`Comm::recv`], returning terminal failures instead of panicking.
    pub fn try_recv(
        &mut self,
        src: usize,
        tag: u64,
        recv_buf_id: u64,
    ) -> Result<Payload, CommError> {
        if src >= self.size {
            return Err(CommError::InvalidRank {
                rank: src,
                size: self.size,
            });
        }
        // check the out-of-order buffer first
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let m = self.pending.remove(pos).expect("position valid");
            return Ok(self.complete_recv(m, recv_buf_id));
        }
        let m = self.wire_recv_matching(src, tag)?;
        Ok(self.complete_recv(m, recv_buf_id))
    }

    /// Pull messages off the wire until one matches `(src, tag)`,
    /// buffering strays. Blocks — parking this rank on the event core —
    /// until the match exists.
    fn wire_recv_matching(&mut self, src: usize, tag: u64) -> Result<Message, CommError> {
        match &self.wire {
            Wire::Channels { .. } => self.channel_recv_matching(src, tag),
            Wire::Event { fabric } => {
                let fabric = Arc::clone(fabric);
                self.event_recv_matching(&fabric, src, tag)
            }
            Wire::Driven { .. } => panic!(
                "dlsr-mpi: rank {}: blocking recv on the driven core; event tasks must poll \
                 with try_recv_buffered",
                self.rank
            ),
        }
    }

    /// Threaded-core matching loop.
    #[cfg(not(feature = "verify"))]
    fn channel_recv_matching(&mut self, src: usize, tag: u64) -> Result<Message, CommError> {
        loop {
            let Wire::Channels { rx, .. } = &self.wire else {
                unreachable!("caller checked the wire variant")
            };
            let m = rx
                .recv()
                .map_err(|_| CommError::WorldTornDown { rank: self.rank })?;
            if m.src == src && m.tag == tag {
                return Ok(m);
            }
            self.pending.push_back(m);
        }
    }

    /// Threaded-core matching loop, verified build: identical matching
    /// semantics, but waits in short polls so this rank can (a) register
    /// itself as blocked in the wait-for graph, (b) run the deadlock cycle
    /// check, and (c) bail out promptly when another rank flags a
    /// violation.
    #[cfg(feature = "verify")]
    fn channel_recv_matching(&mut self, src: usize, tag: u64) -> Result<Message, CommError> {
        use crossbeam::channel::RecvTimeoutError;
        let ctx = self.verify.clone();
        let mut noted = false;
        loop {
            let Wire::Channels { rx, .. } = &self.wire else {
                unreachable!("caller checked the wire variant")
            };
            match rx.recv_timeout(crate::verify::POLL) {
                Ok(m) => {
                    if m.src == src && m.tag == tag {
                        if noted {
                            if let Some(c) = &ctx {
                                c.note_unblocked(self.rank);
                            }
                        }
                        return Ok(m);
                    }
                    self.pending.push_back(m);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(c) = &ctx {
                        c.note_blocked(self.rank, src, tag);
                        noted = true;
                        // Panics on a confirmed stable cycle, or when a
                        // violation was flagged elsewhere.
                        c.check_deadlock(self.rank);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::WorldTornDown { rank: self.rank });
                }
            }
        }
    }

    /// Event-core matching receive: park on the fabric until the exact
    /// message is delivered. With a verifier attached, parks in short
    /// polls and runs the same blocked/deadlock bookkeeping as the
    /// threaded core (token-less, so the checks never hold up peers).
    fn event_recv_matching(
        &mut self,
        fabric: &EventFabric,
        src: usize,
        tag: u64,
    ) -> Result<Message, CommError> {
        #[cfg(feature = "verify")]
        if let Some(ctx) = self.verify.clone() {
            let mut noted = false;
            loop {
                let got = fabric.recv_blocking(
                    self.rank,
                    src,
                    tag,
                    self.clock.now(),
                    Some(crate::verify::POLL),
                );
                match got {
                    Ok(Some(m)) => {
                        if noted {
                            ctx.note_unblocked(self.rank);
                        }
                        return Ok(m);
                    }
                    Ok(None) => {
                        ctx.note_blocked(self.rank, src, tag);
                        noted = true;
                        ctx.check_deadlock(self.rank);
                    }
                    Err(()) => return Err(CommError::WorldTornDown { rank: self.rank }),
                }
            }
        }
        fabric
            .recv_blocking(self.rank, src, tag, self.clock.now(), None)
            .map_err(|()| CommError::WorldTornDown { rank: self.rank })
            .map(|m| m.expect("poll-less fabric recv always returns a message"))
    }

    fn complete_recv(&mut self, m: Message, recv_buf_id: u64) -> Payload {
        if let Some(b) = &self.budget {
            b.release(&m);
        }
        let bytes = m.payload.size_bytes();
        // Receiver-side registration: for inter-node RDMA the receive buffer
        // must be pinned too.
        if bytes >= self.cfg.transport.eager_threshold
            && m.src / self.topo.gpus_per_node != self.my_node
        {
            self.charge_registration(TransportPath::IbRdma, recv_buf_id, bytes);
        }
        self.clock.merge(m.arrival);
        self.clock.advance(self.cfg.recv_overhead);
        self.stats.recvs += 1;
        m.payload
    }

    /// Concurrent send + receive (both directions in flight, as in ring
    /// collectives): the send is posted first and does not serialize with
    /// the receive.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u64,
        payload: Payload,
        send_buf_id: u64,
        src: usize,
        recv_tag: u64,
        recv_buf_id: u64,
    ) -> Payload {
        self.send(dst, send_tag, payload, send_buf_id);
        self.recv(src, recv_tag, recv_buf_id)
    }

    /// Nonblocking send (`MPI_Isend`). On the virtual-clock fabric
    /// [`Comm::send`] is already asynchronous — the sender pays only its
    /// local overheads and the wire carries the transfer cost to the
    /// receiver's clock — so `isend` completes immediately and needs no
    /// request handle. It exists so pipelined collectives read like their
    /// MPI counterparts.
    pub fn isend(&mut self, dst: usize, tag: u64, payload: Payload, buf_id: u64) {
        self.send(dst, tag, payload, buf_id);
    }

    /// Post a nonblocking receive (`MPI_Irecv`) matching `(src, tag)`.
    ///
    /// Posting costs nothing on the virtual clock: the returned
    /// [`RecvRequest`] only records the match criteria. All timing — merging
    /// the message's arrival stamp and the receive overhead — is charged at
    /// [`Comm::wait`], so local work issued between `irecv` and `wait`
    /// overlaps the transfer and only the *exposed* remainder of the wire
    /// time advances this rank's clock.
    pub fn irecv(&mut self, src: usize, tag: u64, recv_buf_id: u64) -> RecvRequest {
        RecvRequest {
            src,
            tag,
            recv_buf_id,
        }
    }

    /// Complete a posted receive (`MPI_Wait`), blocking the OS thread until
    /// the message exists and merging its arrival into the virtual clock.
    pub fn wait(&mut self, req: RecvRequest) -> Payload {
        self.recv(req.src, req.tag, req.recv_buf_id)
    }

    /// [`Comm::wait`], returning terminal failures instead of panicking.
    pub fn try_wait(&mut self, req: RecvRequest) -> Result<Payload, CommError> {
        self.try_recv(req.src, req.tag, req.recv_buf_id)
    }

    /// Charge the GPU reduce kernel for combining `elems` f32 elements
    /// (read two operands + write one ⇒ 12 bytes per element).
    pub fn charge_reduce(&mut self, elems: usize) {
        let t = (elems as f64 * 12.0) / self.cfg.reduce_bandwidth;
        self.clock.advance(t);
    }

    /// Fresh collective sequence number (all ranks call collectives in the
    /// same program order, so sequence numbers agree across ranks).
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.coll_seq += 1;
        self.coll_seq
    }

    /// Non-blocking receive: complete a queued `(src, tag)` match exactly
    /// like [`Comm::recv`] (clock merge, overheads, registration), or
    /// return `None` if no match has been delivered yet. Event tasks map
    /// `None` to [`Poll::Pending`](crate::executor::Poll::Pending).
    pub fn try_recv_buffered(&mut self, src: usize, tag: u64, recv_buf_id: u64) -> Option<Payload> {
        let rank = self.rank;
        loop {
            // Fast path: the match is at the front of the queue — true for
            // almost every receive outside fan-in hotspots (queues are
            // length ≤ 1 in ring steps), and `pop_front` avoids the O(n)
            // scan-and-shift of `remove`.
            if let Some(m) = self.pending.front() {
                if m.src == src && m.tag == tag {
                    let m = self.pending.pop_front().expect("front exists");
                    return Some(self.complete_recv(m, recv_buf_id));
                }
            }
            if let Some(pos) = self
                .pending
                .iter()
                .position(|m| m.src == src && m.tag == tag)
            {
                let m = self.pending.remove(pos).expect("position valid");
                return Some(self.complete_recv(m, recv_buf_id));
            }
            let pulled = match &mut self.wire {
                Wire::Channels { rx, .. } => {
                    let mut any = false;
                    while let Ok(m) = rx.try_recv() {
                        self.pending.push_back(m);
                        any = true;
                    }
                    any
                }
                Wire::Event { fabric } => {
                    if let Some(m) = fabric.try_take(rank, src, tag) {
                        self.pending.push_back(m);
                        true
                    } else {
                        false
                    }
                }
                // The engine routes straight into `pending`; nothing else
                // to pull from.
                Wire::Driven { .. } => false,
            };
            if !pulled {
                return None;
            }
        }
    }

    /// Block until a `(src, tag)` match is queued, leaving it in the
    /// out-of-order buffer for the task's next poll — the blocking half of
    /// [`drive_task`](crate::executor::drive_task) on the context cores.
    /// Panics on terminal errors, like [`Comm::recv`].
    pub(crate) fn block_until_match(&mut self, src: usize, tag: u64) {
        if self.pending.iter().any(|m| m.src == src && m.tag == tag) {
            return;
        }
        match self.wire_recv_matching(src, tag) {
            Ok(m) => self.pending.push_back(m),
            Err(e) => panic!("dlsr-mpi: rank {}: recv failed: {e}", self.rank),
        }
    }

    /// Swap the driven-core outbox with a caller-owned scratch buffer:
    /// the engine drains the scratch and swaps it back in next segment, so
    /// steady-state routing does no allocator work — capacities circulate
    /// instead of being freed. No-op on the other wires.
    pub(crate) fn swap_outbox(&mut self, buf: &mut Vec<(usize, Message)>) {
        if let Wire::Driven { outbox } = &mut self.wire {
            std::mem::swap(outbox, buf);
        }
    }

    /// Queue an inbound message (engine-side routing on the driven core).
    pub(crate) fn push_pending(&mut self, m: Message) {
        self.pending.push_back(m);
    }
}
