//! Runtime configuration — the knobs the paper turns.
//!
//! [`MpiConfig`] is `#[non_exhaustive]`: construct it through the presets
//! ([`MpiConfig::default_mpi`] / [`MpiConfig::mpi_reg`] /
//! [`MpiConfig::mpi_opt`]) or the validated [`MpiConfig::builder`], never
//! a struct literal — so every future knob (like this PR's fault plan and
//! retry policy) lands additively instead of breaking ten call sites.

use std::fmt;

use dlsr_net::{FatTree, TransportModel};

use crate::collectives::{AllreduceAlgorithm, WireFormat};

/// How each rank's device environment is set up (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceMode {
    /// `CUDA_VISIBLE_DEVICES=<local rank>`, no MPI-side mask: frameworks
    /// behave, but MPI cannot use CUDA IPC. **The broken default.**
    Pinned,
    /// `CUDA_VISIBLE_DEVICES=<local rank>` *and*
    /// `MV2_VISIBLE_DEVICES=0..gpus_per_node`: the paper's fix (Fig 7).
    PinnedWithMv2,
    /// No masks at all: IPC works but every process pays a CUDA context on
    /// every local device (Fig 6a's overhead kernels).
    Unpinned,
}

/// How the transport answers transient message loss/corruption: up to
/// `max_attempts` transmissions, waiting `timeout · backoff^(k−1)` virtual
/// seconds after the k-th failure before retrying. Exhausting the attempts
/// is terminal ([`crate::CommError::RetriesExhausted`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Transmission attempts per message (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Virtual seconds until the first failed attempt is detected
    /// (ack timeout / checksum round-trip).
    pub timeout: f64,
    /// Exponential backoff base between successive attempts (≥ 1.0).
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            timeout: 200.0e-6,
            backoff: 2.0,
        }
    }
}

/// Which execution core runs the world's rank programs (see
/// `docs/SIMCORE.md`). Results are bitwise-identical across cores — timing
/// flows only through message arrival stamps — so this knob trades wall
/// time, never fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimCore {
    /// The discrete-event core: at most `sim_workers` ranks run at once,
    /// blocked recvs park their rank, and run tokens are granted in
    /// deterministic `(virtual_time, rank)` order. The default.
    #[default]
    Event,
    /// The legacy thread-per-rank core: every rank gets an OS thread for
    /// the run's whole lifetime. Kept as the equivalence baseline.
    Threaded,
}

/// Communication-tuning knobs: the algorithm size bins, the pipelined
/// ring's chunking, and the wire-compression policy. Grouped in one
/// sub-struct so the online comm tuner (`dlsr-horovod`) and the CLI can
/// treat "the tunable comm surface" as a value, and so consistency rules
/// (e.g. `rd_threshold < pipeline_threshold`) validate in one place via
/// [`MpiConfigBuilder::try_build`].
///
/// The defaults reproduce the historical flat-field defaults exactly, so
/// a default `CommTuning` never changes an existing run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct CommTuning {
    /// Slice size in bytes of the pipelined ring allreduce: each ring step
    /// streams its block in `pipeline_chunk`-byte sub-chunks so only one
    /// sub-chunk reduction is ever on the critical path.
    pub pipeline_chunk: u64,
    /// Messages at or above this many bytes use the pipelined ring when
    /// the algorithm is selected by size.
    pub pipeline_threshold: u64,
    /// Messages at or below this many bytes use recursive doubling
    /// (latency-bound regime) when the algorithm is selected by size.
    pub rd_threshold: u64,
    /// Wire format for gradient payloads at or above `wire_threshold`
    /// bytes (below it, everything stays lossless f32 — small messages are
    /// latency-bound, so halving their bytes buys nothing).
    pub wire: WireFormat,
    /// Size floor in bytes for applying `wire` compression.
    pub wire_threshold: u64,
    /// Promote hierarchical (two-level) allreduce into the size-binned
    /// selection on multi-node worlds: intra-node flat reduce, inter-node
    /// ring among node leaders (pipelined + wire-compressed on the large
    /// bins), intra-node bcast. Off by default — the flat roster keeps its
    /// historical behavior.
    pub hierarchical: bool,
}

impl Default for CommTuning {
    fn default() -> Self {
        CommTuning {
            pipeline_chunk: 4 << 20,
            pipeline_threshold: 8 << 20,
            rd_threshold: 128 << 10,
            wire: WireFormat::F32,
            wire_threshold: 8 << 20,
            hierarchical: false,
        }
    }
}

impl CommTuning {
    /// Wire format for a message of `bytes`: the configured format at or
    /// above the wire threshold, lossless f32 below it.
    pub fn select_wire(&self, bytes: u64) -> WireFormat {
        if bytes >= self.wire_threshold {
            self.wire
        } else {
            WireFormat::F32
        }
    }

    /// Consistency rules shared by [`MpiConfigBuilder::try_build`].
    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if self.rd_threshold >= self.pipeline_threshold {
            return Err(ConfigError(format!(
                "rd_threshold ({}) must lie below pipeline_threshold ({})",
                self.rd_threshold, self.pipeline_threshold
            )));
        }
        if self.pipeline_chunk == 0 {
            return Err(ConfigError("pipeline_chunk must be positive".into()));
        }
        if let WireFormat::TopK { k_permille } = self.wire {
            if !(1..=1000).contains(&k_permille) {
                return Err(ConfigError(format!(
                    "top-k density ({k_permille}‰) must lie in 1..=1000"
                )));
            }
        }
        Ok(())
    }
}

/// The algorithm + wire-format pair a size-binned selection resolved to
/// (see [`MpiConfig::select_comm`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommChoice {
    /// Allreduce algorithm.
    pub algo: AllreduceAlgorithm,
    /// Gradient wire format.
    pub wire: WireFormat,
}

/// An [`MpiConfigBuilder`] rejected its knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub(crate) String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MpiConfig: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// MPI library configuration (the `MV2_*` environment of a job).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MpiConfig {
    /// Device-mask setup for every rank.
    pub device_mode: DeviceMode,
    /// Allreduce algorithm selection.
    pub allreduce: AllreduceAlgorithm,
    /// Enable the InfiniBand registration cache (§III-D).
    pub registration_cache: bool,
    /// Registration cache capacity in bytes (per rank).
    pub reg_cache_capacity: u64,
    /// Transport constants.
    pub transport: TransportModel,
    /// Inter-node switch topology (adds spine-crossing latency).
    pub fat_tree: FatTree,
    /// One-time cost of establishing a CUDA IPC mapping to a peer device
    /// (handle exchange + `cuIpcOpenMemHandle`), amortized across a run.
    pub ipc_setup_cost: f64,
    /// Sender-side CPU overhead per message.
    pub send_overhead: f64,
    /// Sender-side overhead per message under the NCCL-like policy
    /// (per-step kernel launches).
    pub nccl_send_overhead: f64,
    /// Receiver-side CPU overhead per message.
    pub recv_overhead: f64,
    /// Effective bytes/s of the GPU vector-reduce kernel used inside
    /// reduction collectives (bandwidth-bound: ~3 accesses/element).
    pub reduce_bandwidth: f64,
    /// Communication-tuning knobs: algorithm size bins, pipelined-ring
    /// chunking, wire compression, hierarchical promotion (see
    /// [`MpiConfig::select_comm`]). Adjusted online by the comm tuner.
    pub tuning: CommTuning,
    /// Retry/timeout/backoff policy answering transient transport faults.
    pub retry: RetryPolicy,
    /// Which execution core runs the world ([`SimCore::Event`] by default).
    pub sim_core: SimCore,
    /// Worker-pool size of the event core: how many ranks may run
    /// concurrently. 0 — the default — means "auto": the machine's
    /// available parallelism, capped at the world size. Never affects
    /// results, only wall time.
    pub sim_workers: usize,
    /// Host-byte budget for in-flight (sent, not yet received) messages
    /// across the whole world. Exceeding it is an explicit
    /// [`crate::CommError::MailboxBudget`] instead of unbounded queue
    /// growth. 0 disables the check.
    pub sim_mailbox_budget: u64,
    /// Scheduled faults for this job (shared by every rank). `None` — the
    /// default — injects nothing; without the `faults` feature the field
    /// does not exist and the injection hooks compile to nothing.
    #[cfg(feature = "faults")]
    pub fault_plan: Option<std::sync::Arc<dlsr_faults::FaultPlan>>,
}

impl MpiConfig {
    /// The paper's **MPI** baseline: pinned devices, no IPC, no reg cache.
    pub fn default_mpi() -> Self {
        MpiConfig {
            device_mode: DeviceMode::Pinned,
            allreduce: AllreduceAlgorithm::TwoLevel,
            registration_cache: false,
            reg_cache_capacity: 1 << 32,
            transport: TransportModel::lassen(),
            fat_tree: FatTree::lassen(),
            ipc_setup_cost: 100.0e-6,
            send_overhead: 2.0e-6,
            nccl_send_overhead: 8.0e-6,
            recv_overhead: 2.0e-6,
            reduce_bandwidth: 500.0e9,
            tuning: CommTuning::default(),
            retry: RetryPolicy::default(),
            sim_core: SimCore::Event,
            sim_workers: 0,
            sim_mailbox_budget: 1 << 30,
            #[cfg(feature = "faults")]
            fault_plan: None,
        }
    }

    /// Size-binned allreduce algorithm selection, mirroring the paper's
    /// message-size tuning: latency-bound small messages take recursive
    /// doubling (fewest rounds), huge messages take the chunked pipelined
    /// ring (bandwidth-optimal with sub-chunk overlap), and the middle band
    /// keeps the configured default. Deterministic in the buffer size only,
    /// so every rank — and the sequential and overlapped optimizer paths —
    /// pick the same algorithm for the same tensor.
    pub fn select_allreduce(&self, bytes: u64) -> AllreduceAlgorithm {
        if bytes <= self.tuning.rd_threshold {
            AllreduceAlgorithm::RecursiveDoubling
        } else if bytes >= self.tuning.pipeline_threshold {
            AllreduceAlgorithm::PipelinedRing
        } else {
            self.allreduce
        }
    }

    /// Full size-binned communication selection: the allreduce algorithm
    /// *and* the wire format for a `bytes`-sized message on a
    /// `nodes`-node world.
    ///
    /// Extends [`MpiConfig::select_allreduce`] with the wire-efficiency
    /// layer: when [`CommTuning::hierarchical`] is on and the world spans
    /// multiple nodes, buffers whose intra-node phases can ride the CUDA
    /// IPC/NVLink path (`bytes >= transport.ipc_large_threshold`) take the
    /// two-level hierarchy — whose inter-node leader ring is itself
    /// pipelined and wire-compressed — instead of the flat pipelined ring;
    /// inter-node links, not intra-node ones, are the scaling wall the
    /// paper measures. Below the IPC threshold the intra-node phases would
    /// stage through host memory at a fraction of NVLink bandwidth (and
    /// stay lossless f32 by design), so two-level's log-depth full-buffer
    /// phases lose to the flat chunked ring there and promotion stays out
    /// of the way of the size-binned selection. Deterministic in
    /// `(bytes, nodes)` and the config only.
    pub fn select_comm(&self, bytes: u64, nodes: usize) -> CommChoice {
        let mut algo = self.select_allreduce(bytes);
        if self.tuning.hierarchical
            && nodes > 1
            && bytes > self.tuning.rd_threshold
            && bytes >= self.transport.ipc_large_threshold
        {
            algo = AllreduceAlgorithm::TwoLevel;
        }
        CommChoice {
            algo,
            wire: self.tuning.select_wire(bytes),
        }
    }

    /// **MPI-Reg**: default + registration cache (Fig 11).
    pub fn mpi_reg() -> Self {
        MpiConfig {
            registration_cache: true,
            ..Self::default_mpi()
        }
    }

    /// **MPI-Opt**: registration cache + `MV2_VISIBLE_DEVICES` restoring
    /// CUDA IPC (Figs 12–14, Table I).
    pub fn mpi_opt() -> Self {
        MpiConfig {
            device_mode: DeviceMode::PinnedWithMv2,
            registration_cache: true,
            ..Self::default_mpi()
        }
    }

    /// Chainable, validated construction starting from
    /// [`MpiConfig::default_mpi`].
    pub fn builder() -> MpiConfigBuilder {
        MpiConfigBuilder {
            cfg: Self::default_mpi(),
        }
    }

    /// Reopen any config (usually a preset) for further tweaking.
    pub fn to_builder(self) -> MpiConfigBuilder {
        MpiConfigBuilder { cfg: self }
    }
}

/// Builder for [`MpiConfig`]: defaults-based, chainable, validated at
/// [`MpiConfigBuilder::try_build`].
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until built"]
pub struct MpiConfigBuilder {
    cfg: MpiConfig,
}

impl MpiConfigBuilder {
    /// Device-mask setup for every rank.
    pub fn device_mode(mut self, mode: DeviceMode) -> Self {
        self.cfg.device_mode = mode;
        self
    }

    /// Default allreduce algorithm for mid-sized messages.
    pub fn allreduce(mut self, algo: AllreduceAlgorithm) -> Self {
        self.cfg.allreduce = algo;
        self
    }

    /// Enable/disable the InfiniBand registration cache.
    pub fn registration_cache(mut self, on: bool) -> Self {
        self.cfg.registration_cache = on;
        self
    }

    /// Registration cache capacity in bytes.
    pub fn reg_cache_capacity(mut self, bytes: u64) -> Self {
        self.cfg.reg_cache_capacity = bytes;
        self
    }

    /// Transport constants.
    pub fn transport(mut self, t: TransportModel) -> Self {
        self.cfg.transport = t;
        self
    }

    /// Inter-node switch topology.
    pub fn fat_tree(mut self, ft: FatTree) -> Self {
        self.cfg.fat_tree = ft;
        self
    }

    /// One-time CUDA IPC mapping cost, seconds.
    pub fn ipc_setup_cost(mut self, s: f64) -> Self {
        self.cfg.ipc_setup_cost = s;
        self
    }

    /// Sender-side CPU overhead per message, seconds.
    pub fn send_overhead(mut self, s: f64) -> Self {
        self.cfg.send_overhead = s;
        self
    }

    /// NCCL-policy sender-side overhead per message, seconds.
    pub fn nccl_send_overhead(mut self, s: f64) -> Self {
        self.cfg.nccl_send_overhead = s;
        self
    }

    /// Receiver-side CPU overhead per message, seconds.
    pub fn recv_overhead(mut self, s: f64) -> Self {
        self.cfg.recv_overhead = s;
        self
    }

    /// GPU reduce-kernel bandwidth, bytes/s.
    pub fn reduce_bandwidth(mut self, bps: f64) -> Self {
        self.cfg.reduce_bandwidth = bps;
        self
    }

    /// Pipelined-ring sub-chunk size, bytes.
    pub fn pipeline_chunk(mut self, bytes: u64) -> Self {
        self.cfg.tuning.pipeline_chunk = bytes;
        self
    }

    /// Size floor for pipelined-ring selection, bytes.
    pub fn pipeline_threshold(mut self, bytes: u64) -> Self {
        self.cfg.tuning.pipeline_threshold = bytes;
        self
    }

    /// Size ceiling for recursive-doubling selection, bytes.
    pub fn rd_threshold(mut self, bytes: u64) -> Self {
        self.cfg.tuning.rd_threshold = bytes;
        self
    }

    /// Gradient wire format for messages at or above the wire threshold.
    pub fn wire(mut self, wire: WireFormat) -> Self {
        self.cfg.tuning.wire = wire;
        self
    }

    /// Size floor for wire compression, bytes (0 compresses everything).
    pub fn wire_threshold(mut self, bytes: u64) -> Self {
        self.cfg.tuning.wire_threshold = bytes;
        self
    }

    /// Promote hierarchical allreduce into size-binned selection.
    pub fn hierarchical(mut self, on: bool) -> Self {
        self.cfg.tuning.hierarchical = on;
        self
    }

    /// Replace the whole communication-tuning sub-struct (the comm tuner's
    /// entry point — individual knobs have their own methods above).
    pub fn tuning(mut self, tuning: CommTuning) -> Self {
        self.cfg.tuning = tuning;
        self
    }

    /// Retry/timeout/backoff policy for transient transport faults.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.retry = policy;
        self
    }

    /// Which execution core runs the world.
    pub fn sim_core(mut self, core: SimCore) -> Self {
        self.cfg.sim_core = core;
        self
    }

    /// Event-core worker-pool size (0 = auto).
    pub fn sim_workers(mut self, workers: usize) -> Self {
        self.cfg.sim_workers = workers;
        self
    }

    /// In-flight host-byte budget (0 = unlimited).
    pub fn sim_mailbox_budget(mut self, bytes: u64) -> Self {
        self.cfg.sim_mailbox_budget = bytes;
        self
    }

    /// Attach a fault plan (see `dlsr-faults`). Only exists with the
    /// `faults` feature; default builds carry no injection code at all.
    #[cfg(feature = "faults")]
    pub fn fault_plan(mut self, plan: Option<std::sync::Arc<dlsr_faults::FaultPlan>>) -> Self {
        self.cfg.fault_plan = plan;
        self
    }

    /// Validate and build.
    pub fn try_build(self) -> Result<MpiConfig, ConfigError> {
        let c = &self.cfg;
        c.tuning.validate()?;
        if !(c.reduce_bandwidth.is_finite() && c.reduce_bandwidth > 0.0) {
            return Err(ConfigError(format!(
                "reduce_bandwidth ({}) must be finite and positive",
                c.reduce_bandwidth
            )));
        }
        for (name, v) in [
            ("ipc_setup_cost", c.ipc_setup_cost),
            ("send_overhead", c.send_overhead),
            ("nccl_send_overhead", c.nccl_send_overhead),
            ("recv_overhead", c.recv_overhead),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(ConfigError(format!("{name} ({v}) must be finite and ≥ 0")));
            }
        }
        if c.retry.max_attempts == 0 {
            return Err(ConfigError(
                "retry.max_attempts must be ≥ 1 (1 means no retries)".into(),
            ));
        }
        if !(c.retry.timeout > 0.0 && c.retry.timeout.is_finite()) {
            return Err(ConfigError(format!(
                "retry.timeout ({}) must be a positive duration",
                c.retry.timeout
            )));
        }
        if !(c.retry.backoff >= 1.0 && c.retry.backoff.is_finite()) {
            return Err(ConfigError(format!(
                "retry.backoff ({}) must be ≥ 1",
                c.retry.backoff
            )));
        }
        Ok(self.cfg)
    }

    /// [`MpiConfigBuilder::try_build`], panicking on invalid knobs — for
    /// call sites whose configs are static.
    pub fn build(self) -> MpiConfig {
        self.try_build()
            .unwrap_or_else(|e| panic!("MpiConfigBuilder::build: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_knobs() {
        let mpi = MpiConfig::default_mpi();
        let reg = MpiConfig::mpi_reg();
        let opt = MpiConfig::mpi_opt();
        assert_eq!(mpi.device_mode, DeviceMode::Pinned);
        assert!(!mpi.registration_cache);
        assert_eq!(reg.device_mode, DeviceMode::Pinned);
        assert!(reg.registration_cache);
        assert_eq!(opt.device_mode, DeviceMode::PinnedWithMv2);
        assert!(opt.registration_cache);
    }

    #[test]
    fn size_binned_selection_matches_the_paper_regimes() {
        let cfg = MpiConfig::mpi_opt();
        assert_eq!(
            cfg.select_allreduce(1 << 10),
            AllreduceAlgorithm::RecursiveDoubling
        );
        assert_eq!(
            cfg.select_allreduce(cfg.tuning.rd_threshold),
            AllreduceAlgorithm::RecursiveDoubling
        );
        assert_eq!(cfg.select_allreduce(1 << 20), cfg.allreduce);
        assert_eq!(
            cfg.select_allreduce(cfg.tuning.pipeline_threshold),
            AllreduceAlgorithm::PipelinedRing
        );
        assert_eq!(
            cfg.select_allreduce(64 << 20),
            AllreduceAlgorithm::PipelinedRing
        );
    }

    #[test]
    fn select_comm_composes_hierarchy_and_wire_bins() {
        // Defaults: no hierarchy, no compression — identical to the flat
        // selection with f32 wire, at any node count.
        let flat = MpiConfig::mpi_opt();
        for bytes in [1 << 10, 1 << 20, 64 << 20] {
            let c = flat.select_comm(bytes, 8);
            assert_eq!(c.algo, flat.select_allreduce(bytes));
            assert_eq!(c.wire, WireFormat::F32);
        }
        let tuned = MpiConfig::mpi_opt()
            .to_builder()
            .hierarchical(true)
            .wire(WireFormat::Bf16)
            .build();
        // Small bin: still latency-bound RD, still uncompressed.
        let small = tuned.select_comm(1 << 10, 8);
        assert_eq!(small.algo, AllreduceAlgorithm::RecursiveDoubling);
        assert_eq!(small.wire, WireFormat::F32);
        // Large bin on multiple nodes: hierarchy + compression.
        let large = tuned.select_comm(64 << 20, 8);
        assert_eq!(large.algo, AllreduceAlgorithm::TwoLevel);
        assert_eq!(large.wire, WireFormat::Bf16);
        // Pipelined bin below the IPC threshold: promotion stays out of
        // the way — two-level's intra phases would host-stage in f32, so
        // the flat pipelined ring (compressed on every hop) wins there.
        let staged = tuned.select_comm(8 << 20, 8);
        assert_eq!(staged.algo, AllreduceAlgorithm::PipelinedRing);
        assert_eq!(staged.wire, WireFormat::Bf16);
        // Single node: hierarchy has nothing to exploit.
        let single = tuned.select_comm(64 << 20, 1);
        assert_eq!(single.algo, AllreduceAlgorithm::PipelinedRing);
        // wire_threshold 0 compresses even tiny messages.
        let eager = tuned.to_builder().wire_threshold(0).build();
        assert_eq!(eager.select_comm(64, 2).wire, WireFormat::Bf16);
    }

    #[test]
    fn builder_round_trips_presets_and_chains() {
        let cfg = MpiConfig::mpi_opt()
            .to_builder()
            .registration_cache(false)
            .send_overhead(5.0e-6)
            .retry(RetryPolicy {
                max_attempts: 3,
                timeout: 1.0e-4,
                backoff: 1.5,
            })
            .build();
        assert_eq!(cfg.device_mode, DeviceMode::PinnedWithMv2);
        assert!(!cfg.registration_cache);
        assert_eq!(cfg.retry.max_attempts, 3);
        let d = MpiConfig::builder().build();
        assert_eq!(d.device_mode, MpiConfig::default_mpi().device_mode);
    }

    #[test]
    fn builder_rejects_inconsistent_knobs() {
        assert!(MpiConfig::builder()
            .rd_threshold(16 << 20)
            .pipeline_threshold(8 << 20)
            .try_build()
            .is_err());
        assert!(MpiConfig::builder().pipeline_chunk(0).try_build().is_err());
        assert!(MpiConfig::builder()
            .wire(WireFormat::TopK { k_permille: 0 })
            .try_build()
            .is_err());
        assert!(MpiConfig::builder()
            .wire(WireFormat::TopK { k_permille: 1001 })
            .try_build()
            .is_err());
        assert!(MpiConfig::builder()
            .reduce_bandwidth(-1.0)
            .try_build()
            .is_err());
        assert!(MpiConfig::builder()
            .retry(RetryPolicy {
                max_attempts: 0,
                ..Default::default()
            })
            .try_build()
            .is_err());
        assert!(MpiConfig::builder()
            .retry(RetryPolicy {
                backoff: 0.5,
                ..Default::default()
            })
            .try_build()
            .is_err());
        assert!(MpiConfig::builder()
            .send_overhead(f64::NAN)
            .try_build()
            .is_err());
    }
}
