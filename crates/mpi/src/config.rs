//! Runtime configuration — the knobs the paper turns.

use dlsr_net::{FatTree, TransportModel};

use crate::collectives::AllreduceAlgorithm;

/// How each rank's device environment is set up (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceMode {
    /// `CUDA_VISIBLE_DEVICES=<local rank>`, no MPI-side mask: frameworks
    /// behave, but MPI cannot use CUDA IPC. **The broken default.**
    Pinned,
    /// `CUDA_VISIBLE_DEVICES=<local rank>` *and*
    /// `MV2_VISIBLE_DEVICES=0..gpus_per_node`: the paper's fix (Fig 7).
    PinnedWithMv2,
    /// No masks at all: IPC works but every process pays a CUDA context on
    /// every local device (Fig 6a's overhead kernels).
    Unpinned,
}

/// MPI library configuration (the `MV2_*` environment of a job).
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Device-mask setup for every rank.
    pub device_mode: DeviceMode,
    /// Allreduce algorithm selection.
    pub allreduce: AllreduceAlgorithm,
    /// Enable the InfiniBand registration cache (§III-D).
    pub registration_cache: bool,
    /// Registration cache capacity in bytes (per rank).
    pub reg_cache_capacity: u64,
    /// Transport constants.
    pub transport: TransportModel,
    /// Inter-node switch topology (adds spine-crossing latency).
    pub fat_tree: FatTree,
    /// One-time cost of establishing a CUDA IPC mapping to a peer device
    /// (handle exchange + `cuIpcOpenMemHandle`), amortized across a run.
    pub ipc_setup_cost: f64,
    /// Sender-side CPU overhead per message.
    pub send_overhead: f64,
    /// Sender-side overhead per message under the NCCL-like policy
    /// (per-step kernel launches).
    pub nccl_send_overhead: f64,
    /// Receiver-side CPU overhead per message.
    pub recv_overhead: f64,
    /// Effective bytes/s of the GPU vector-reduce kernel used inside
    /// reduction collectives (bandwidth-bound: ~3 accesses/element).
    pub reduce_bandwidth: f64,
    /// Slice size in bytes of the pipelined ring allreduce: each ring step
    /// streams its block in `pipeline_chunk`-byte sub-chunks so only one
    /// sub-chunk reduction is ever on the critical path.
    pub pipeline_chunk: u64,
    /// Messages at or above this many bytes use the pipelined ring when the
    /// algorithm is selected by size ([`MpiConfig::select_allreduce`]).
    pub pipeline_threshold: u64,
    /// Messages at or below this many bytes use recursive doubling (latency
    /// bound regime) when the algorithm is selected by size.
    pub rd_threshold: u64,
}

impl MpiConfig {
    /// The paper's **MPI** baseline: pinned devices, no IPC, no reg cache.
    pub fn default_mpi() -> Self {
        MpiConfig {
            device_mode: DeviceMode::Pinned,
            allreduce: AllreduceAlgorithm::TwoLevel,
            registration_cache: false,
            reg_cache_capacity: 1 << 32,
            transport: TransportModel::lassen(),
            fat_tree: FatTree::lassen(),
            ipc_setup_cost: 100.0e-6,
            send_overhead: 2.0e-6,
            nccl_send_overhead: 8.0e-6,
            recv_overhead: 2.0e-6,
            reduce_bandwidth: 500.0e9,
            pipeline_chunk: 4 << 20,
            pipeline_threshold: 8 << 20,
            rd_threshold: 128 << 10,
        }
    }

    /// Size-binned allreduce algorithm selection, mirroring the paper's
    /// message-size tuning: latency-bound small messages take recursive
    /// doubling (fewest rounds), huge messages take the chunked pipelined
    /// ring (bandwidth-optimal with sub-chunk overlap), and the middle band
    /// keeps the configured default. Deterministic in the buffer size only,
    /// so every rank — and the sequential and overlapped optimizer paths —
    /// pick the same algorithm for the same tensor.
    pub fn select_allreduce(&self, bytes: u64) -> AllreduceAlgorithm {
        if bytes <= self.rd_threshold {
            AllreduceAlgorithm::RecursiveDoubling
        } else if bytes >= self.pipeline_threshold {
            AllreduceAlgorithm::PipelinedRing
        } else {
            self.allreduce
        }
    }

    /// **MPI-Reg**: default + registration cache (Fig 11).
    pub fn mpi_reg() -> Self {
        MpiConfig {
            registration_cache: true,
            ..Self::default_mpi()
        }
    }

    /// **MPI-Opt**: registration cache + `MV2_VISIBLE_DEVICES` restoring
    /// CUDA IPC (Figs 12–14, Table I).
    pub fn mpi_opt() -> Self {
        MpiConfig {
            device_mode: DeviceMode::PinnedWithMv2,
            registration_cache: true,
            ..Self::default_mpi()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_right_knobs() {
        let mpi = MpiConfig::default_mpi();
        let reg = MpiConfig::mpi_reg();
        let opt = MpiConfig::mpi_opt();
        assert_eq!(mpi.device_mode, DeviceMode::Pinned);
        assert!(!mpi.registration_cache);
        assert_eq!(reg.device_mode, DeviceMode::Pinned);
        assert!(reg.registration_cache);
        assert_eq!(opt.device_mode, DeviceMode::PinnedWithMv2);
        assert!(opt.registration_cache);
    }

    #[test]
    fn size_binned_selection_matches_the_paper_regimes() {
        let cfg = MpiConfig::mpi_opt();
        assert_eq!(
            cfg.select_allreduce(1 << 10),
            AllreduceAlgorithm::RecursiveDoubling
        );
        assert_eq!(
            cfg.select_allreduce(cfg.rd_threshold),
            AllreduceAlgorithm::RecursiveDoubling
        );
        assert_eq!(cfg.select_allreduce(1 << 20), cfg.allreduce);
        assert_eq!(
            cfg.select_allreduce(cfg.pipeline_threshold),
            AllreduceAlgorithm::PipelinedRing
        );
        assert_eq!(
            cfg.select_allreduce(64 << 20),
            AllreduceAlgorithm::PipelinedRing
        );
    }
}
