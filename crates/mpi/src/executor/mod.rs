//! The sanctioned execution substrate for simulated ranks.
//!
//! Everything that turns rank *programs* into running *worlds* lives under
//! this module — and only here: a `dlsr-lint` rule (`thread-spawn`) rejects
//! `std::thread::spawn`/`JoinHandle` anywhere else in the rank-execution
//! crates, so the thread-per-rank model this module replaces cannot creep
//! back in through a side door.
//!
//! Three cores share one message fabric contract (exact `(src, tag)`
//! matching, per-sender FIFO, LogGP arrival stamps — see `docs/SIMCORE.md`
//! for the determinism argument):
//!
//! - `context::run_event` — the default. Per-rank closures run on OS
//!   threads used purely as *coroutine contexts*: at most `workers` run
//!   tokens exist, a blocked recv parks the rank and releases its token,
//!   and the `fabric::EventFabric` grants freed tokens to eligible ranks
//!   in deterministic `(virtual_time, rank)` order.
//! - `driven::run` — zero threads. Rank programs are resumable state
//!   machines ([`RankProgram`] yielding [`EventTask`]s) stepped by a
//!   single-threaded virtual-time event loop; this is the core that takes
//!   worlds to 512–4096 ranks.
//! - `context::run_threaded` — the legacy thread-per-rank core, kept as
//!   the bitwise-equivalence baseline until retirement.

pub(crate) mod budget;
pub(crate) mod context;
pub mod driven;
pub(crate) mod fabric;

pub use driven::{drive_program, drive_task, EventTask, Poll, RankProgram, Step, Task};
