//! The context cores: per-rank OS threads running unmodified rank
//! closures.
//!
//! [`run_threaded`] is the legacy thread-per-rank core — every rank's
//! thread is always runnable and the OS multiplexes them. [`run_event`]
//! keeps the same per-rank threads but uses them purely as *coroutine
//! contexts*: the [`EventFabric`](crate::executor::fabric::EventFabric)
//! caps concurrency at the configured worker count and a blocked recv
//! parks the rank instead of spinning a whole OS thread against the
//! scheduler. Both cores run the exact same `Fn(&mut Comm) -> R` closures
//! and produce bitwise-identical results (see `docs/SIMCORE.md`).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam::channel::unbounded;

use dlsr_gpu::IpcRegistry;
use dlsr_net::ClusterTopology;

use crate::comm::{Comm, Wire};
use crate::config::MpiConfig;
use crate::error::CommError;
use crate::executor::budget::FlightBudget;
use crate::executor::fabric::EventFabric;
use crate::message::Message;
use crate::world::WorldResult;

fn ipc_registries(topo: &ClusterTopology) -> Arc<Vec<IpcRegistry>> {
    Arc::new((0..topo.nodes).map(|_| IpcRegistry::new()).collect())
}

fn collect<R>(out: Vec<Option<(R, f64)>>) -> WorldResult<R> {
    let mut ranks = Vec::with_capacity(out.len());
    let mut clocks = Vec::with_capacity(out.len());
    for slot in out {
        let (r, c) = slot.expect("every rank reported");
        ranks.push(r);
        clocks.push(c);
    }
    WorldResult { ranks, clocks }
}

/// The legacy thread-per-rank core: one always-runnable OS thread per
/// rank, crossbeam channels as the wire. Kept as the equivalence baseline
/// ([`crate::config::SimCore::Threaded`]).
pub(crate) fn run_threaded<R, F>(topo: &ClusterTopology, cfg: MpiConfig, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    let size = topo.total_gpus();
    assert!(size > 0, "cannot launch an empty world");
    let cfg = Arc::new(cfg);
    let budget = FlightBudget::from_config(&cfg);
    let mut senders = Vec::with_capacity(size);
    let mut receivers = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded::<Message>();
        senders.push(tx);
        receivers.push(rx);
    }
    let registries = ipc_registries(topo);

    #[cfg(feature = "verify")]
    let verify_ctx = crate::verify::VerifyCtx::new(size);

    let mut out: Vec<Option<(R, f64)>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let cfg = Arc::clone(&cfg);
            let budget = budget.clone();
            let registries = Arc::clone(&registries);
            let topo = topo.clone();
            let f = &f;
            #[cfg(feature = "verify")]
            let verify_ctx = Arc::clone(&verify_ctx);
            handles.push(scope.spawn(move || {
                // Spans and counters recorded on this thread attribute
                // to this rank.
                dlsr_trace::set_thread_rank(rank);
                let mut comm = Comm::new(
                    rank,
                    topo,
                    cfg,
                    Wire::Channels { senders, rx },
                    budget,
                    registries,
                );
                #[cfg(feature = "verify")]
                comm.attach_verify(verify_ctx);
                let r = f(&mut comm);
                (rank, r, comm.now())
            }));
        }
        for h in handles {
            let (rank, r, clock) = h.join().expect("rank thread panicked");
            out[rank] = Some((r, clock));
        }
    });

    // All ranks completed: run the end-of-run cross-rank checks
    // (launch-order equality) and publish the verification summary.
    #[cfg(feature = "verify")]
    verify_ctx.final_check();
    collect(out)
}

/// The event context core: per-rank threads as coroutine contexts, at
/// most `sim_workers` holding a run token at once, scheduled by the
/// [`EventFabric`] in deterministic `(virtual_time, rank)` order. The
/// default core ([`crate::config::SimCore::Event`]).
pub(crate) fn run_event<R, F>(topo: &ClusterTopology, cfg: MpiConfig, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Send + Sync,
{
    let size = topo.total_gpus();
    assert!(size > 0, "cannot launch an empty world");
    let workers = if cfg.sim_workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        cfg.sim_workers
    };
    // The verify deadlock watcher reads "parked and token-less" as
    // "blocked on a peer", so a capped pool would turn token starvation
    // into false wait-for edges (a rank whose message arrived but is
    // still queued for a token keeps reporting itself blocked). Tokens
    // are a wall-time throttle, never a correctness device: verified
    // builds simply grant everyone one, restoring the exact semantics
    // the watcher was written against.
    #[cfg(feature = "verify")]
    let workers = size.max(workers);
    let cfg = Arc::new(cfg);
    let budget = FlightBudget::from_config(&cfg);
    let fabric = Arc::new(EventFabric::new(size, workers));
    let registries = ipc_registries(topo);

    #[cfg(feature = "verify")]
    let verify_ctx = crate::verify::VerifyCtx::new(size);

    let mut out: Vec<Option<(R, f64)>> = (0..size).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(size);
        for rank in 0..size {
            let cfg = Arc::clone(&cfg);
            let budget = budget.clone();
            let fabric = Arc::clone(&fabric);
            let registries = Arc::clone(&registries);
            let topo = topo.clone();
            let f = &f;
            #[cfg(feature = "verify")]
            let verify_ctx = Arc::clone(&verify_ctx);
            handles.push(scope.spawn(move || {
                dlsr_trace::set_thread_rank(rank);
                let mut comm = Comm::new(
                    rank,
                    topo,
                    cfg,
                    Wire::Event {
                        fabric: Arc::clone(&fabric),
                    },
                    budget,
                    registries,
                );
                #[cfg(feature = "verify")]
                comm.attach_verify(verify_ctx);
                // A panicking rank must wake parked peers (they observe
                // WorldTornDown) before its own panic reaches the join —
                // otherwise the world would hang instead of aborting
                // together.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if fabric.wait_for_token(rank).is_err() {
                        panic!(
                            "dlsr-mpi: rank {rank}: {}",
                            CommError::WorldTornDown { rank }
                        );
                    }
                    f(&mut comm)
                }));
                match result {
                    Ok(r) => {
                        let now = comm.now();
                        fabric.finish(rank);
                        (rank, r, now)
                    }
                    Err(p) => {
                        fabric.teardown();
                        resume_unwind(p);
                    }
                }
            }));
        }
        for h in handles {
            let (rank, r, clock) = h.join().expect("rank thread panicked");
            out[rank] = Some((r, clock));
        }
    });

    #[cfg(feature = "verify")]
    verify_ctx.final_check();
    collect(out)
}
