//! The driven core: a zero-thread discrete-event engine over resumable
//! rank programs.
//!
//! Where the context cores give every rank an OS thread to block on, this
//! engine runs N ranks on *one* thread: a rank is a [`RankProgram`] that
//! yields [`EventTask`]s, a task that cannot make progress returns
//! [`Poll::Pending`] naming the exact `(src, tag)` it needs, and the
//! engine parks the rank — a `Vec` slot, not a stack — until a routed
//! message matches. Runnable ranks are stepped in a deterministic
//! engine-chosen order; because message stamps are fixed at send time,
//! the order cannot change any simulated quantity (see the scheduling
//! comment in `run`). No locks, no syscalls, no context switches: this
//! is the core that takes worlds to 512–4096 ranks.
//!
//! The same [`EventTask`]s run unchanged on the context cores via
//! [`drive_task`] (poll, and on `Pending` block the OS thread until the
//! match arrives), so every collective has exactly one implementation —
//! its state machine — and core equivalence is structural rather than
//! maintained by hand.

use std::sync::Arc;

use dlsr_gpu::IpcRegistry;
use dlsr_net::ClusterTopology;
use dlsr_trace::TraceEvent;

use crate::comm::{Comm, Wire};
use crate::config::MpiConfig;
use crate::executor::budget::FlightBudget;
use crate::world::WorldResult;

/// One poll's outcome.
pub enum Poll {
    /// The task completed.
    Ready,
    /// The task needs a message matching exactly `(src, tag)` before it
    /// can make progress. The rank parks until one is delivered.
    Pending {
        /// Sending rank awaited.
        src: usize,
        /// Tag awaited.
        tag: u64,
    },
}

/// A resumable unit of rank work (one collective, one negotiation round).
///
/// `poll` must be written so that re-polling after `Pending` retries the
/// *same* blocked receive via [`Comm::try_recv_buffered`] — all state that
/// changed before the block (sends posted, clock advances) must be
/// recorded in the task so it is never redone.
pub trait EventTask {
    /// Advance until completion or the next blocking receive.
    fn poll(&mut self, comm: &mut Comm) -> Poll;
}

/// What a [`RankProgram`] wants next.
pub enum Step {
    /// Run this task to completion, then ask again.
    Task(Task),
    /// Drop trace events accumulated so far (warmup boundary).
    DiscardTrace,
    /// The program is finished; call [`RankProgram::finish`].
    Done,
}

/// A yielded task, built-in variants held inline. Programs yield these
/// every communication round, so the common collectives avoid a heap
/// allocation per yield (the engine profile showed the `Box` per task as
/// a measurable share of steady-state cost); anything else rides in
/// [`Task::Custom`].
pub enum Task {
    /// [`AllreduceElemsTask`](crate::collectives::tasks::AllreduceElemsTask).
    Allreduce(crate::collectives::tasks::AllreduceElemsTask),
    /// [`BarrierTask`](crate::collectives::tasks::BarrierTask).
    Barrier(crate::collectives::tasks::BarrierTask),
    /// Any other [`EventTask`] (e.g. tasks defined outside this crate).
    Custom(Box<dyn EventTask>),
}

impl Task {
    /// Wrap an arbitrary task (boxes it).
    pub fn custom<T: EventTask + 'static>(t: T) -> Task {
        Task::Custom(Box::new(t))
    }
}

impl From<crate::collectives::tasks::AllreduceElemsTask> for Task {
    fn from(t: crate::collectives::tasks::AllreduceElemsTask) -> Task {
        Task::Allreduce(t)
    }
}

impl From<crate::collectives::tasks::BarrierTask> for Task {
    fn from(t: crate::collectives::tasks::BarrierTask) -> Task {
        Task::Barrier(t)
    }
}

impl EventTask for Task {
    fn poll(&mut self, comm: &mut Comm) -> Poll {
        match self {
            Task::Allreduce(t) => t.poll(comm),
            Task::Barrier(t) => t.poll(comm),
            Task::Custom(t) => t.poll(comm),
        }
    }
}

/// A whole rank's run as a resumable state machine: the driven engine
/// alternates `next` (synchronous segment: compute, clock advances,
/// bookkeeping) with driving the yielded task (the communication that may
/// park the rank).
pub trait RankProgram {
    /// Per-rank result type.
    type Out;
    /// Run the next synchronous segment and say what follows it.
    fn next(&mut self, comm: &mut Comm) -> Step;
    /// Produce the rank's result. `trace` holds the rank's accumulated
    /// trace events (empty when tracing is off).
    fn finish(&mut self, comm: &mut Comm, trace: Vec<TraceEvent>) -> Self::Out;
}

/// Run one task to completion on a *blocking* communicator (the context
/// cores): poll, and on `Pending` block this rank until the match is
/// queued, then re-poll.
pub fn drive_task(comm: &mut Comm, task: &mut dyn EventTask) {
    loop {
        match task.poll(comm) {
            Poll::Ready => return,
            Poll::Pending { src, tag } => comm.block_until_match(src, tag),
        }
    }
}

/// Run a whole [`RankProgram`] to completion on a blocking communicator —
/// makes any program written for the driven engine runnable inside a
/// plain `MpiWorld::run` closure.
pub fn drive_program<P: RankProgram>(comm: &mut Comm, mut prog: P) -> P::Out {
    loop {
        match prog.next(comm) {
            Step::Task(mut t) => drive_task(comm, &mut t),
            Step::DiscardTrace => {
                let _ = dlsr_trace::take_thread_events();
            }
            Step::Done => {
                let trace = dlsr_trace::take_thread_events();
                return prog.finish(comm, trace);
            }
        }
    }
}

/// The engine: run `make(rank)` programs for every rank of `topo` on a
/// single thread, in a deterministic engine-chosen order (see the
/// scheduling comment on `runnable` below for why the order is free).
pub(crate) fn run<P, F>(topo: &ClusterTopology, cfg: MpiConfig, mut make: F) -> WorldResult<P::Out>
where
    P: RankProgram,
    F: FnMut(usize) -> P,
{
    let size = topo.total_gpus();
    assert!(size > 0, "cannot launch an empty world");
    let cfg = Arc::new(cfg);
    let budget = FlightBudget::from_config(&cfg);
    let ipc_registries = Arc::new(
        (0..topo.nodes)
            .map(|_| IpcRegistry::new())
            .collect::<Vec<_>>(),
    );
    let mut comms: Vec<Comm> = (0..size)
        .map(|r| {
            Comm::new(
                r,
                topo.clone(),
                Arc::clone(&cfg),
                Wire::Driven { outbox: Vec::new() },
                budget.clone(),
                Arc::clone(&ipc_registries),
            )
        })
        .collect();
    let mut progs: Vec<P> = (0..size).map(&mut make).collect();
    let mut tasks: Vec<Option<Task>> = (0..size).map(|_| None).collect();
    // `Some((src, tag))` while a rank's task is parked on that match.
    let mut waiting: Vec<Option<(usize, u64)>> = vec![None; size];
    // Per-rank trace accumulation: the engine thread's trace buffer is
    // drained into the running rank's slot at every segment boundary.
    let mut traces: Vec<Vec<TraceEvent>> = vec![Vec::new(); size];
    let mut out: Vec<Option<(P::Out, f64)>> = (0..size).map(|_| None).collect();
    // Runnable ranks, LIFO. Execution order cannot change any outcome:
    // arrival stamps are fixed at send time, payloads are data, and a
    // rank's clock evolves only from its own operations and the stamps it
    // merges — so *any* deterministic topological order (a rank runs only
    // once its awaited message exists) yields bitwise-identical results.
    // LIFO keeps the just-woken rank's state hot in cache and makes
    // scheduling O(1) per wake, which the engine profile showed beats a
    // (virtual_time, rank) priority queue by a measurable margin. A rank
    // is enqueued exactly once per park/wake cycle (`waiting[dst]` is
    // cleared on wake), so the stack never holds duplicates.
    let mut runnable: Vec<usize> = (0..size).rev().collect();
    let mut live = size;
    let tracing = dlsr_trace::is_on();
    // Routing scratch, swapped against each rank's outbox: capacities
    // circulate instead of being freed, so steady-state routing never
    // touches the allocator.
    let mut outbox: Vec<(usize, crate::message::Message)> = Vec::new();

    while let Some(r) = runnable.pop() {
        if tracing {
            dlsr_trace::set_thread_rank(r);
        }
        // Run rank r until it parks or completes.
        loop {
            if let Some(task) = tasks[r].as_mut() {
                match task.poll(&mut comms[r]) {
                    Poll::Ready => tasks[r] = None,
                    Poll::Pending { src, tag } => {
                        waiting[r] = Some((src, tag));
                        if tracing {
                            traces[r].extend(dlsr_trace::take_thread_events());
                        }
                        break;
                    }
                }
            } else {
                match progs[r].next(&mut comms[r]) {
                    Step::Task(t) => tasks[r] = Some(t),
                    Step::DiscardTrace => {
                        if tracing {
                            let _ = dlsr_trace::take_thread_events();
                            traces[r].clear();
                        }
                    }
                    Step::Done => {
                        if tracing {
                            traces[r].extend(dlsr_trace::take_thread_events());
                        }
                        let trace = std::mem::take(&mut traces[r]);
                        let o = progs[r].finish(&mut comms[r], trace);
                        let now = comms[r].now();
                        out[r] = Some((o, now));
                        live -= 1;
                        break;
                    }
                }
            }
        }
        // Route everything the segment sent; a rank parked on an exact
        // match becomes runnable at max(its clock, the arrival stamp).
        comms[r].swap_outbox(&mut outbox);
        for (dst, msg) in outbox.drain(..) {
            if waiting[dst] == Some((msg.src, msg.tag)) {
                waiting[dst] = None;
                runnable.push(dst);
            }
            comms[dst].push_pending(msg);
        }
    }

    if live > 0 {
        let stuck: Vec<String> = waiting
            .iter()
            .enumerate()
            .filter_map(|(rank, w)| {
                w.map(|(src, tag)| format!("rank {rank} waits for (src {src}, tag {tag:#x})"))
            })
            .collect();
        panic!(
            "dlsr-mpi: deadlock on the driven core: {live} ranks never completed; {}",
            stuck.join("; ")
        );
    }

    let mut ranks = Vec::with_capacity(size);
    let mut clocks = Vec::with_capacity(size);
    for slot in out {
        let (o, c) = slot.expect("every rank reported");
        ranks.push(o);
        clocks.push(c);
    }
    WorldResult { ranks, clocks }
}
