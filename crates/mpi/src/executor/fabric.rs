//! The event fabric: per-rank mailboxes plus the run-token scheduler of
//! the event context core.
//!
//! Ranks execute on OS threads used as coroutine contexts, but at most
//! `workers` of them hold a *run token* at any instant. A rank that blocks
//! on a recv with no matching message parks — releasing its token — and
//! the freed token is granted to the eligible rank with the smallest
//! `(virtual_time, rank)` key. Delivery of the awaited `(src, tag)` makes
//! a parked rank eligible again at `max(its clock, message arrival)`.
//!
//! Determinism does not *depend* on the grant order: cross-rank timing
//! flows exclusively through arrival stamps computed at send time, and
//! every receive names its exact `(src, tag)`, so results are identical
//! for any worker count (asserted by the equivalence suite). The ordered
//! grants exist so the schedule approximates a discrete-event sweep of
//! virtual time — the rank most behind runs first — instead of an
//! oversubscribed free-for-all.

use std::collections::BTreeSet;
use std::sync::{Condvar, MutexGuard, PoisonError};
use std::time::Duration;

// The vendored `parking_lot` stub wraps `std::sync::Mutex` and yields std
// guards, so `std::sync::Condvar` composes with it; its `lock()` already
// strips poisoning (a panicking rank must not cascade lock panics into
// peers that are busy observing the teardown).
use parking_lot::Mutex;

use crate::message::Message;

/// Condvar wait that survives a peer's panic-while-locked (deadlock abort
/// poisons the inner std mutex; waiters just take the guard back).
fn wait<'a>(cv: &Condvar, g: MutexGuard<'a, Sched>) -> MutexGuard<'a, Sched> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// Timed wait with the same poison-stripping; returns `(guard, timed_out)`.
fn wait_timeout<'a>(
    cv: &Condvar,
    g: MutexGuard<'a, Sched>,
    d: Duration,
) -> (MutexGuard<'a, Sched>, bool) {
    match cv.wait_timeout(g, d) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(p) => {
            let (g, t) = p.into_inner();
            (g, t.timed_out())
        }
    }
}

/// Where a rank stands with the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    /// Holds a run token; its thread is (or may be) on a CPU.
    Running,
    /// Eligible and queued for a token.
    TokenWait,
    /// Blocked on a recv for exactly `(src, tag)`; holds no token.
    /// `vtime` is the clock (as bits) at which it parked.
    Parked { src: usize, tag: u64, vtime: u64 },
    /// Rank closure returned.
    Done,
}

struct Sched {
    status: Vec<Status>,
    has_token: Vec<bool>,
    /// Per-rank mailboxes, in delivery order (per-sender FIFO follows from
    /// senders delivering in their own program order).
    mail: Vec<Vec<Message>>,
    /// Token queue: `(virtual_time.to_bits(), rank)` — the bit pattern of a
    /// non-negative finite f64 orders exactly like its value.
    eligible: BTreeSet<(u64, usize)>,
    running: usize,
    workers: usize,
    live: usize,
    torn_down: bool,
}

/// One world's shared fabric (event context core).
pub(crate) struct EventFabric {
    sched: Mutex<Sched>,
    cvs: Vec<Condvar>,
}

impl EventFabric {
    pub(crate) fn new(size: usize, workers: usize) -> EventFabric {
        let workers = workers.clamp(1, size);
        let eligible: BTreeSet<(u64, usize)> = (0..size).map(|r| (0u64, r)).collect();
        let fabric = EventFabric {
            sched: Mutex::new(Sched {
                status: vec![Status::TokenWait; size],
                has_token: vec![false; size],
                mail: vec![Vec::new(); size],
                eligible,
                running: 0,
                workers,
                live: size,
                torn_down: false,
            }),
            cvs: (0..size).map(|_| Condvar::new()).collect(),
        };
        let mut st = fabric.sched.lock();
        fabric.pump(&mut st);
        drop(st);
        fabric
    }

    /// Grant free tokens to eligible ranks in `(virtual_time, rank)` order.
    fn pump(&self, st: &mut Sched) {
        while st.running < st.workers {
            let Some(&key) = st.eligible.iter().next() else {
                break;
            };
            st.eligible.remove(&key);
            let rank = key.1;
            st.status[rank] = Status::Running;
            st.has_token[rank] = true;
            st.running += 1;
            self.cvs[rank].notify_all();
        }
    }

    /// Start-of-world gate: block until this rank holds a run token.
    pub(crate) fn wait_for_token(&self, rank: usize) -> Result<(), ()> {
        let mut st = self.sched.lock();
        loop {
            if st.torn_down {
                return Err(());
            }
            if st.has_token[rank] {
                return Ok(());
            }
            st = wait(&self.cvs[rank], st);
        }
    }

    /// Deliver a message into `dst`'s mailbox, waking it if it parked on
    /// exactly this `(src, tag)`.
    pub(crate) fn deliver(&self, dst: usize, msg: Message) -> Result<(), ()> {
        let mut st = self.sched.lock();
        if st.torn_down {
            return Err(());
        }
        let wake_key = match st.status[dst] {
            Status::Parked { src, tag, vtime } if src == msg.src && tag == msg.tag => {
                // The rank resumes at the later of its parked clock and the
                // message's arrival stamp — the discrete-event wake time.
                Some((f64::max(f64::from_bits(vtime), msg.arrival).to_bits(), dst))
            }
            _ => None,
        };
        st.mail[dst].push(msg);
        if let Some(key) = wake_key {
            st.status[dst] = Status::TokenWait;
            st.eligible.insert(key);
            self.pump(&mut st);
        }
        Ok(())
    }

    /// Non-blocking exact-match take from this rank's mailbox.
    pub(crate) fn try_take(&self, rank: usize, src: usize, tag: u64) -> Option<Message> {
        let mut st = self.sched.lock();
        let i = st.mail[rank]
            .iter()
            .position(|m| m.src == src && m.tag == tag)?;
        Some(st.mail[rank].remove(i))
    }

    /// Blocking exact-match receive. Parks the rank (releasing its token)
    /// until the message is delivered and a token is granted back.
    ///
    /// With `poll` set (the verify watcher), returns `Ok(None)` after that
    /// long with no match, leaving the rank parked — the caller runs its
    /// deadlock bookkeeping token-less and calls again. Returns `Err` on
    /// world teardown.
    pub(crate) fn recv_blocking(
        &self,
        rank: usize,
        src: usize,
        tag: u64,
        vtime: f64,
        poll: Option<Duration>,
    ) -> Result<Option<Message>, ()> {
        let mut st = self.sched.lock();
        loop {
            if st.torn_down {
                return Err(());
            }
            if st.has_token[rank] {
                if let Some(i) = st.mail[rank]
                    .iter()
                    .position(|m| m.src == src && m.tag == tag)
                {
                    return Ok(Some(st.mail[rank].remove(i)));
                }
                // Nothing to do at this virtual time: park, hand the token
                // to the next eligible rank.
                st.has_token[rank] = false;
                st.running -= 1;
                st.status[rank] = Status::Parked {
                    src,
                    tag,
                    vtime: vtime.to_bits(),
                };
                self.pump(&mut st);
                if poll.is_none() {
                    // Without the verify watcher the fabric itself aborts a
                    // fully-parked world instead of hanging forever.
                    self.abort_if_deadlocked(&mut st, rank, src, tag);
                }
            }
            match poll {
                None => st = wait(&self.cvs[rank], st),
                Some(d) => {
                    let (g, timed_out) = wait_timeout(&self.cvs[rank], st, d);
                    st = g;
                    if timed_out && !st.has_token[rank] && !st.torn_down {
                        return Ok(None);
                    }
                }
            }
        }
    }

    /// Every live rank parked, no token granted, none eligible ⇒ no
    /// message can ever arrive again. Tear the world down with a
    /// diagnostic instead of hanging.
    fn abort_if_deadlocked(&self, st: &mut Sched, rank: usize, src: usize, tag: u64) {
        if st.running == 0 && st.eligible.is_empty() && st.live > 0 {
            st.torn_down = true;
            for cv in &self.cvs {
                cv.notify_all();
            }
            panic!(
                "dlsr-mpi: deadlock: all {} live ranks parked on recv with no matching message \
                 in flight; rank {rank} waits for (src {src}, tag {tag:#x})",
                st.live
            );
        }
    }

    /// Rank closure returned: release its token and let the world drain.
    pub(crate) fn finish(&self, rank: usize) {
        let mut st = self.sched.lock();
        st.status[rank] = Status::Done;
        if st.has_token[rank] {
            st.has_token[rank] = false;
            st.running -= 1;
        }
        st.live -= 1;
        self.pump(&mut st);
    }

    /// A rank panicked: wake everyone so blocked peers observe
    /// [`crate::CommError::WorldTornDown`] and the world aborts together.
    pub(crate) fn teardown(&self) {
        let mut st = self.sched.lock();
        st.torn_down = true;
        for cv in &self.cvs {
            cv.notify_all();
        }
    }
}
