//! In-flight message accounting: the bounded-mailbox guarantee.
//!
//! Large worlds can hold hundreds of thousands of undelivered messages; an
//! unbounded fabric turns a planning bug (a world whose fusion plan floods
//! the wires faster than receivers drain them) into a silent host OOM. The
//! [`FlightBudget`] charges every message's *host* footprint when it enters
//! the fabric and releases it when the receiver completes the matching
//! recv, so exceeding the configured budget is an explicit
//! [`crate::CommError::MailboxBudget`] instead of a hang or a kill.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::MpiConfig;
use crate::message::Message;

/// Bookkeeping overhead charged per in-flight message on top of its host
/// payload bytes (header fields, queue slot, allocator slack).
const MSG_OVERHEAD: u64 = 96;

/// Shared in-flight byte counter for one world. Cheap enough for the send
/// hot path: two relaxed atomic ops per message lifetime.
#[derive(Debug)]
pub(crate) struct FlightBudget {
    limit: u64,
    used: AtomicU64,
}

impl FlightBudget {
    /// The world's budget, or `None` when `sim_mailbox_budget` is 0
    /// (unlimited — the legacy behaviour).
    pub(crate) fn from_config(cfg: &MpiConfig) -> Option<Arc<FlightBudget>> {
        (cfg.sim_mailbox_budget > 0).then(|| {
            Arc::new(FlightBudget {
                limit: cfg.sim_mailbox_budget,
                used: AtomicU64::new(0),
            })
        })
    }

    fn cost(msg: &Message) -> u64 {
        msg.payload.host_bytes() + MSG_OVERHEAD
    }

    /// Charge a message entering the fabric. On overflow the charge is
    /// rolled back and the would-be total is returned for the error.
    pub(crate) fn charge(&self, msg: &Message) -> Result<(), u64> {
        let cost = Self::cost(msg);
        let total = self.used.fetch_add(cost, Ordering::Relaxed) + cost;
        if total > self.limit {
            self.used.fetch_sub(cost, Ordering::Relaxed);
            Err(total)
        } else {
            Ok(())
        }
    }

    /// Release a message the receiver has consumed.
    pub(crate) fn release(&self, msg: &Message) {
        self.used.fetch_sub(Self::cost(msg), Ordering::Relaxed);
    }

    pub(crate) fn limit(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;

    fn msg(bytes: usize) -> Message {
        Message {
            src: 0,
            tag: 0,
            payload: Payload::Bytes(vec![0; bytes]),
            arrival: 0.0,
        }
    }

    #[test]
    fn charge_and_release_balance() {
        let b = FlightBudget {
            limit: 1000,
            used: AtomicU64::new(0),
        };
        let m = msg(100);
        assert!(b.charge(&m).is_ok());
        assert_eq!(b.used.load(Ordering::Relaxed), 100 + MSG_OVERHEAD);
        b.release(&m);
        assert_eq!(b.used.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn overflow_rolls_back_and_reports_the_total() {
        let b = FlightBudget {
            limit: 150,
            used: AtomicU64::new(0),
        };
        let m = msg(100);
        let e = b.charge(&m).unwrap_err();
        assert_eq!(e, 100 + MSG_OVERHEAD);
        assert_eq!(
            b.used.load(Ordering::Relaxed),
            0,
            "failed charge rolled back"
        );
    }

    #[test]
    fn synthetic_payloads_cost_only_overhead() {
        // A 512-rank world moves tens of GB of *simulated* gradient bytes;
        // only the per-message bookkeeping may count against the budget.
        let m = Message {
            src: 0,
            tag: 0,
            payload: Payload::Synthetic { bytes: 1 << 30 },
            arrival: 0.0,
        };
        assert_eq!(FlightBudget::cost(&m), MSG_OVERHEAD);
    }
}
