//! Job launcher: runs a closure (or a resumable [`RankProgram`]) on every
//! rank of a simulated world and collects results — the simulated
//! `mpirun`. The actual execution cores live in [`crate::executor`]; this
//! module only dispatches on [`SimCore`].

use dlsr_net::ClusterTopology;

use crate::comm::Comm;
use crate::config::{MpiConfig, SimCore};
use crate::executor::{context, driven, RankProgram};

/// The simulated MPI world.
pub struct MpiWorld;

/// Result of a world run: per-rank return values and final virtual clocks.
pub struct WorldResult<R> {
    /// Per-rank results, indexed by rank.
    pub ranks: Vec<R>,
    /// Per-rank final virtual times in seconds.
    pub clocks: Vec<f64>,
}

impl<R> WorldResult<R> {
    /// The job's virtual makespan (slowest rank).
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }
}

impl MpiWorld {
    /// Launch `topo.total_gpus()` ranks, run `f` on each, join, and return
    /// per-rank results plus final clocks.
    ///
    /// `f` must be deterministic in rank order of collective calls (normal
    /// SPMD discipline); payloads flow through real message queues so
    /// results are exact. Which core executes the ranks is chosen by
    /// [`MpiConfig::sim_core`] — results are bitwise-identical either way.
    pub fn run<R, F>(topo: &ClusterTopology, cfg: MpiConfig, f: F) -> WorldResult<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        match cfg.sim_core {
            SimCore::Event => context::run_event(topo, cfg, f),
            SimCore::Threaded => context::run_threaded(topo, cfg, f),
        }
    }

    /// [`MpiWorld::run`] forced onto the legacy thread-per-rank core
    /// (ignores `cfg.sim_core`) — the equivalence baseline.
    pub fn run_threaded<R, F>(topo: &ClusterTopology, cfg: MpiConfig, f: F) -> WorldResult<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        context::run_threaded(topo, cfg, f)
    }

    /// [`MpiWorld::run`] forced onto the event context core (ignores
    /// `cfg.sim_core`).
    pub fn run_event<R, F>(topo: &ClusterTopology, cfg: MpiConfig, f: F) -> WorldResult<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        context::run_event(topo, cfg, f)
    }

    /// Run rank *programs* on the zero-thread driven engine: `make(rank)`
    /// builds each rank's [`RankProgram`], and a single-threaded
    /// discrete-event loop steps all of them in a deterministic
    /// engine-chosen order. Same clock/payload semantics as
    /// [`MpiWorld::run`], minus threads — this is the entry point for
    /// 512–4096-rank worlds. The cross-rank `verify` checker is not
    /// attached here (its rendezvous assumes concurrent ranks); use a
    /// context core to verify a program, which the equivalence suite makes
    /// meaningful by pinning this engine bitwise to those cores.
    pub fn run_driven<P, F>(topo: &ClusterTopology, cfg: MpiConfig, make: F) -> WorldResult<P::Out>
    where
        P: RankProgram,
        F: FnMut(usize) -> P,
    {
        driven::run(topo, cfg, make)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;

    fn topo(nodes: usize) -> ClusterTopology {
        ClusterTopology::lassen(nodes)
    }

    #[test]
    fn ping_pong_transfers_data_and_time() {
        let res = MpiWorld::run(&topo(1), MpiConfig::default_mpi(), |c| {
            if c.rank() == 0 {
                c.send(1, 7, Payload::F32(vec![1.0, 2.0]), 100);
                c.recv(1, 8, 101).into_f32()
            } else if c.rank() == 1 {
                let v = c.recv(0, 7, 102).into_f32();
                let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
                c.send(0, 8, Payload::F32(doubled.clone()), 103);
                doubled
            } else {
                Vec::new()
            }
        });
        assert_eq!(res.ranks[0], vec![2.0, 4.0]);
        assert!(res.clocks[0] > 0.0, "time must pass");
        // rank 0 waited for a round trip; its clock must dominate rank 1's
        // send time.
        assert!(res.clocks[0] >= res.clocks[1] * 0.5);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let res = MpiWorld::run(&topo(1), MpiConfig::default_mpi(), |c| {
            if c.rank() == 0 {
                c.send(1, 1, Payload::F32(vec![1.0]), 0);
                c.send(1, 2, Payload::F32(vec![2.0]), 0);
                0.0
            } else if c.rank() == 1 {
                // receive in reverse order
                let b = c.recv(0, 2, 0).into_f32()[0];
                let a = c.recv(0, 1, 0).into_f32()[0];
                a * 10.0 + b
            } else {
                0.0
            }
        });
        assert_eq!(res.ranks[1], 12.0);
    }

    #[test]
    fn virtual_time_is_causal() {
        // A chain 0→1→2→3 must have monotonically increasing clocks.
        let res = MpiWorld::run(&topo(1), MpiConfig::default_mpi(), |c| {
            let r = c.rank();
            if r > 0 {
                let _ = c.recv(r - 1, 42, 0);
            }
            c.advance(1.0e-3); // local compute
            if r + 1 < c.size() {
                c.send(r + 1, 42, Payload::F32(vec![0.0; 1024]), 0);
            }
            c.now()
        });
        for r in 1..4 {
            assert!(
                res.ranks[r] > res.ranks[r - 1],
                "clock at rank {r} ({}) not after rank {} ({})",
                res.ranks[r],
                r - 1,
                res.ranks[r - 1]
            );
        }
    }

    #[test]
    fn large_intra_node_message_uses_nvlink_only_with_mv2() {
        let big = vec![0.0f32; 8 << 20]; // 32 MB
        for (cfg, expect_nvlink) in [
            (MpiConfig::default_mpi(), false),
            (MpiConfig::mpi_opt(), true),
        ] {
            let big = big.clone();
            let res = MpiWorld::run(&topo(1), cfg, move |c| {
                if c.rank() == 0 {
                    c.send(1, 1, Payload::F32(big.clone()), 5);
                }
                if c.rank() == 1 {
                    let _ = c.recv(0, 1, 6);
                }
                (c.stats().nvlink_bytes, c.stats().staged_bytes)
            });
            let (nv, st) = res.ranks[0];
            if expect_nvlink {
                assert!(
                    nv > 0 && st == 0,
                    "expected NVLink path: nv={nv} staged={st}"
                );
            } else {
                assert!(
                    nv == 0 && st > 0,
                    "expected staged path: nv={nv} staged={st}"
                );
            }
        }
    }

    #[test]
    fn inter_node_large_sends_pin_and_cache() {
        let cfg = MpiConfig::mpi_reg();
        let res = MpiWorld::run(&topo(2), cfg, |c| {
            // rank 0 (node 0) sends the same buffer twice to rank 4 (node 1)
            if c.rank() == 0 {
                for i in 0..2 {
                    c.send(4, 10 + i, Payload::F32(vec![0.0; 1 << 20]), 77);
                }
            }
            if c.rank() == 4 {
                for i in 0..2 {
                    let _ = c.recv(0, 10 + i, 88);
                }
            }
            (c.regcache_stats(), c.stats().pin_count)
        });
        let (stats0, pins0) = res.ranks[0];
        assert_eq!(stats0.misses, 1, "first send pins");
        assert_eq!(stats0.hits, 1, "second send hits the cache");
        assert_eq!(pins0, 1);
        let (stats4, _) = res.ranks[4];
        assert_eq!(stats4.hits, 1, "receiver cache also reused");
    }

    #[test]
    fn disabled_regcache_pins_every_time() {
        let res = MpiWorld::run(&topo(2), MpiConfig::default_mpi(), |c| {
            if c.rank() == 0 {
                for i in 0..3 {
                    c.send(4, i, Payload::F32(vec![0.0; 1 << 20]), 77);
                }
            }
            if c.rank() == 4 {
                for i in 0..3 {
                    let _ = c.recv(0, i, 88);
                }
            }
            c.stats().pin_count
        });
        assert_eq!(res.ranks[0], 3);
    }
}
