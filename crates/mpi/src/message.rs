//! Wire messages between rank threads.

/// Message payload: numeric tensors (the common case) or opaque bytes
//  (coordinator control traffic).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A dense f32 buffer (gradients, parameters).
    F32(Vec<f32>),
    /// A dense half-precision buffer (bf16 or IEEE fp16 bit patterns) —
    /// gradients compressed by a lossy [`WireFormat`] before the send;
    /// the receiver decodes back to f32 and accumulates in f32.
    ///
    /// [`WireFormat`]: crate::collectives::WireFormat
    Half {
        /// 16-bit encodings, in element order.
        bits: Vec<u16>,
        /// `true` for IEEE fp16, `false` for bf16.
        fp16: bool,
    },
    /// A sparse gradient fragment: a top-k round's selected coordinates as
    /// parallel (index, value) arrays. Values stay f32 — top-k compresses
    /// by dropping coordinates, not precision.
    Sparse {
        /// Ascending element indices.
        idx: Vec<u32>,
        /// Values at those indices.
        val: Vec<f32>,
    },
    /// Serialized control data.
    Bytes(Vec<u8>),
    /// A costs-only payload: carries a size but no data. Used by the
    /// scaling harnesses (up to 512 simulated ranks) where shuttling real
    /// gradient buffers through host memory would be prohibitive; all
    /// timing, path-selection and registration accounting is identical to
    /// a real payload of the same size.
    Synthetic {
        /// Simulated payload size.
        bytes: u64,
    },
}

impl Payload {
    /// Payload size in bytes on the wire.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Payload::F32(v) => (v.len() * 4) as u64,
            Payload::Half { bits, .. } => (bits.len() * 2) as u64,
            Payload::Sparse { idx, .. } => (idx.len() * 8) as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::Synthetic { bytes } => *bytes,
        }
    }

    /// Bytes this payload actually occupies in *host* memory while queued
    /// (mailbox-budget accounting). Synthetic payloads carry a size but no
    /// data, so they cost nothing here no matter how many simulated bytes
    /// they represent.
    pub fn host_bytes(&self) -> u64 {
        match self {
            Payload::F32(v) => (v.len() * 4) as u64,
            Payload::Half { bits, .. } => (bits.len() * 2) as u64,
            Payload::Sparse { idx, .. } => (idx.len() * 8) as u64,
            Payload::Bytes(b) => b.len() as u64,
            Payload::Synthetic { .. } => 0,
        }
    }

    /// Short variant name for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::F32(_) => "F32",
            Payload::Half { fp16: false, .. } => "Half(bf16)",
            Payload::Half { fp16: true, .. } => "Half(fp16)",
            Payload::Sparse { .. } => "Sparse",
            Payload::Bytes(_) => "Bytes",
            Payload::Synthetic { .. } => "Synthetic",
        }
    }

    /// Unwrap an f32 payload.
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("expected F32 payload, got {other:?}"),
        }
    }

    /// Unwrap a sparse payload's (indices, values) pair.
    pub fn into_sparse(self) -> (Vec<u32>, Vec<f32>) {
        match self {
            Payload::Sparse { idx, val } => (idx, val),
            other => panic!("expected Sparse payload, got {other:?}"),
        }
    }

    /// Unwrap a byte payload.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(b) => b,
            other => panic!("expected Bytes payload, got {other:?}"),
        }
    }

    /// Unwrap a synthetic payload's size.
    pub fn into_synthetic(self) -> u64 {
        match self {
            Payload::Synthetic { bytes } => bytes,
            other => panic!("expected Synthetic payload, got {other:?}"),
        }
    }
}

/// One message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Application tag (collectives use reserved high bits).
    pub tag: u64,
    /// Data.
    pub payload: Payload,
    /// Earliest virtual time the receiver may observe this message
    /// (sender clock at send + transport time).
    pub arrival: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::F32(vec![0.0; 3]).size_bytes(), 12);
        assert_eq!(Payload::Bytes(vec![0u8; 5]).size_bytes(), 5);
        let half = Payload::Half {
            bits: vec![0; 6],
            fp16: false,
        };
        assert_eq!(half.size_bytes(), 12);
        assert_eq!(half.host_bytes(), 12);
        let sparse = Payload::Sparse {
            idx: vec![0, 4, 9],
            val: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(sparse.size_bytes(), 24);
        assert_eq!(sparse.host_bytes(), 24);
    }

    #[test]
    fn unwrap_round_trip() {
        assert_eq!(Payload::F32(vec![1.0]).into_f32(), vec![1.0]);
        assert_eq!(Payload::Bytes(vec![7]).into_bytes(), vec![7]);
        assert_eq!(
            Payload::Sparse {
                idx: vec![2],
                val: vec![5.0]
            }
            .into_sparse(),
            (vec![2], vec![5.0])
        );
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn wrong_unwrap_panics() {
        let _ = Payload::Bytes(vec![]).into_f32();
    }
}
