//! `dlsr-mpi` — a CUDA-aware MPI library (MVAPICH2-GDR-like) over the
//! simulated cluster.
//!
//! Every rank carries a **virtual clock**; messages carry real payloads
//! (gradient `f32` buffers) through the execution core's fabric (see
//! [`executor`] — discrete-event by default, with a zero-thread driven
//! engine for 512–4096-rank worlds), so collective *results* are bit-exact
//! and testable, while message *timing* follows the `dlsr-net` transport
//! models. The clock protocol is
//! LogGP-style: a message sent at sender-time `t` with transfer cost `c`
//! cannot be received before `t + c`; receiving advances the receiver's
//! clock to at least that point, so causality — and therefore collective
//! critical paths — are simulated exactly.
//!
//! The CUDA-awareness pieces the paper manipulates are all here:
//! - per-rank [`dlsr_gpu::DeviceEnv`] masks decide whether the library can
//!   open CUDA IPC mappings to peer GPUs (§III-C, `MV2_VISIBLE_DEVICES`),
//! - a per-rank [`dlsr_net::RegistrationCache`] charges page-pinning costs
//!   on InfiniBand sends unless the buffer is cached (§III-D),
//! - large intra-node messages ride NVLink only when IPC is available and
//!   the message exceeds the IPC rendezvous threshold, else they stage
//!   through the host.

//! # Example
//!
//! ```
//! use dlsr_mpi::{Allreduce, MpiConfig, MpiWorld};
//! use dlsr_net::ClusterTopology;
//!
//! // 1 node × 4 GPUs, the paper's optimized configuration
//! let topo = ClusterTopology::lassen(1);
//! let result = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |comm| {
//!     let mut grads = vec![comm.rank() as f32; 8];
//!     Allreduce::new(&mut grads).buf_id(1).run(comm);
//!     grads[0] // Σ ranks = 0+1+2+3
//! });
//! assert!(result.ranks.iter().all(|&v| v == 6.0));
//! assert!(result.makespan() > 0.0); // virtual time passed
//! ```

#![forbid(unsafe_code)]
pub mod clock;
pub mod collectives;
pub mod comm;
pub mod config;
pub mod error;
pub mod executor;
pub mod message;
pub mod verify;
pub mod world;

pub use clock::VClock;
pub use collectives::{Allreduce, AllreduceAlgorithm, CollectiveBuf, WireFormat};
pub use comm::{Comm, CommStats, PathPolicy, RecvRequest};
pub use config::{
    CommChoice, CommTuning, ConfigError, MpiConfig, MpiConfigBuilder, RetryPolicy, SimCore,
};
pub use error::CommError;
pub use executor::{drive_program, drive_task, EventTask, Poll, RankProgram, Step, Task};
pub use message::{Message, Payload};
pub use world::{MpiWorld, WorldResult};
