//! Debug-mode collective-matching verifier.
//!
//! With the `verify` cargo feature on, every rank records a signature per
//! collective — operation, reduce op, dtype, element count, collective
//! sequence number (the tag base), selected algorithm bin and fusion group
//! id — and a cross-rank checker validates that the signatures agree
//! *before* any payload moves. Three families of divergence are caught:
//!
//! - **Collective mismatch**: rank 1 calling `allreduce` with a different
//!   element count, algorithm or sequence (tag) than rank 0, or calling a
//!   different collective altogether. Detected synchronously at a
//!   rendezvous on collective entry, so the world panics with a precise
//!   report instead of hanging on a tag that will never match.
//! - **Launch-order divergence**: the overlapped optimizer in
//!   `dlsr-horovod` derives its fusion-group launch order analytically
//!   (model shape only). Each observed launch is checked against that
//!   schedule (group 0 first, then strictly `previous + 1` within a
//!   backward), and the full per-rank launch sequences are compared across
//!   ranks at the end of the run.
//! - **Nonblocking p2p deadlock**: a wait-for graph over blocked receives
//!   (`isend`/`irecv`/`wait` and plain `recv`). When a rank times out
//!   waiting, it records the edge `rank → src`; a cycle that stays stable
//!   across a re-check (no message arrived, no epoch advanced) is a real
//!   deadlock — crossed `irecv`s, for example — and is reported instead of
//!   hanging the test suite.
//!
//! Violations are pushed to a process-global list before the world panics,
//! so tests can `catch_unwind` around [`crate::MpiWorld::run`] and inspect
//! [`take_violations`].
//!
//! # Cost when disabled
//!
//! Same pattern as `dlsr-trace`: without the `verify` feature, [`COMPILED`]
//! is a literal `false`, the `Comm` verify hooks are empty `#[inline]`
//! functions, `Comm` carries no extra field, and the blocking-receive path
//! is byte-identical to the unverified build — zero overhead on the
//! `overlap` criterion bench.

use std::sync::Mutex;

/// Whether the verifier was compiled in (`verify` cargo feature).
pub const COMPILED: bool = cfg!(feature = "verify");

/// What kind of invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Per-collective signatures disagreed across ranks.
    CollectiveMismatch,
    /// Observed fusion-group launches diverged from the analytic schedule
    /// (or between ranks).
    LaunchOrder,
    /// A stable wait-for cycle over blocked receives.
    Deadlock,
    /// A rank stopped arriving at collective rendezvous (schedule drift
    /// that never produced a comparable signature).
    Desync,
}

/// One detected violation, recorded before the world panics.
#[derive(Debug, Clone)]
pub struct Violation {
    pub kind: ViolationKind,
    /// Rank that detected the violation.
    pub rank: usize,
    pub detail: String,
}

/// Summary of a verified run, stored by the final cross-rank check.
#[derive(Debug, Clone, Default)]
pub struct VerifySummary {
    pub ranks: usize,
    /// Collective rendezvous rounds whose signatures were cross-checked.
    pub collectives_checked: u64,
    /// Fusion-group launches checked against the analytic order (rank 0).
    pub launches_checked: u64,
}

static VIOLATIONS: Mutex<Vec<Violation>> = Mutex::new(Vec::new());
static SUMMARY: Mutex<Option<VerifySummary>> = Mutex::new(None);

/// Drain the globally recorded violations (tests call this after catching
/// the world's panic). Empty when the feature is off or nothing fired.
pub fn take_violations() -> Vec<Violation> {
    std::mem::take(&mut VIOLATIONS.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Summary of the last successfully verified world run, if any.
pub fn last_summary() -> Option<VerifySummary> {
    SUMMARY.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Per-collective signature. Every field must agree across ranks at every
/// collective call, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollSig {
    /// Collective kind: "allreduce", "bcast", "barrier", "checkpoint", ...
    pub kind: &'static str,
    /// Reduction operator ("sum"/"max"/"min") or "-".
    pub op: &'static str,
    /// Payload dtype: "f32" for real buffers, "synth" for costs-only.
    pub dtype: &'static str,
    /// Element count (or the checkpoint marker for "checkpoint" records).
    pub elems: usize,
    /// Collective sequence counter at entry — the tag base all of this
    /// collective's messages will carry.
    pub seq: u64,
    /// Selected algorithm bin ("ring", "rd", "two-level", "pipelined-ring")
    /// or a checkpoint label.
    pub algo: &'static str,
    /// Fusion group id for overlapped gradient allreduces.
    pub group: Option<usize>,
    /// Root rank for rooted collectives; 0 otherwise.
    pub root: usize,
}

impl std::fmt::Display for CollSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}(op={}, dtype={}, elems={}, seq={}, algo={}, group={:?}, root={})",
            self.kind, self.op, self.dtype, self.elems, self.seq, self.algo, self.group, self.root
        )
    }
}

#[cfg(feature = "verify")]
pub use imp::VerifyCtx;
#[cfg(feature = "verify")]
pub(crate) use imp::POLL;

#[cfg(feature = "verify")]
mod imp {
    use super::{CollSig, VerifySummary, Violation, ViolationKind, SUMMARY, VIOLATIONS};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::Duration;

    /// How often blocked waiters poll for progress / failure.
    pub(crate) const POLL: Duration = Duration::from_millis(25);
    /// A confirmed wait-for cycle must survive this pause to count as a
    /// deadlock (a matching message already in flight is drained within
    /// one `POLL`, bumping the blocked rank's epoch).
    const STABILITY: Duration = Duration::from_millis(80);
    /// How long a rank waits at a collective rendezvous for its peers
    /// before declaring schedule desync.
    const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(30);

    struct State {
        /// Per-rank collective signatures, in program order.
        sigs: Vec<Vec<CollSig>>,
        /// Per-rank fusion-group launch order.
        launches: Vec<Vec<usize>>,
        /// Per-rank blocked receive: `(src, tag)` while waiting.
        blocked: Vec<Option<(usize, u64)>>,
        /// Bumped on every block/unblock transition; lets the deadlock
        /// check confirm a cycle did not move between two observations.
        epoch: Vec<u64>,
        /// Set on the first violation; every poller panics once it is set
        /// so the whole world tears down instead of hanging.
        failed: bool,
        /// Collective rounds fully cross-checked (counted once by rank 0).
        checked: u64,
    }

    /// Shared cross-rank verifier state for one world run.
    pub struct VerifyCtx {
        size: usize,
        state: Mutex<State>,
        cv: Condvar,
    }

    impl VerifyCtx {
        pub fn new(size: usize) -> Arc<Self> {
            Arc::new(VerifyCtx {
                size,
                state: Mutex::new(State {
                    sigs: vec![Vec::new(); size],
                    launches: vec![Vec::new(); size],
                    blocked: vec![None; size],
                    epoch: vec![0; size],
                    failed: false,
                    checked: 0,
                }),
                cv: Condvar::new(),
            })
        }

        fn lock(&self) -> MutexGuard<'_, State> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Record the violation, mark the run failed, wake every waiter,
        /// and panic this rank. Only the first failure is recorded; later
        /// ranks panic with a generic abort so the report stays precise.
        fn fail(&self, mut st: MutexGuard<'_, State>, v: Violation) -> ! {
            let first = !st.failed;
            st.failed = true;
            drop(st);
            if first {
                VIOLATIONS
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(v.clone());
            }
            self.cv.notify_all();
            panic!(
                "dlsr-mpi verify: {:?} detected by rank {}: {}",
                v.kind, v.rank, v.detail
            );
        }

        fn abort_secondary(&self, st: MutexGuard<'_, State>, rank: usize) -> ! {
            drop(st);
            panic!("dlsr-mpi verify: rank {rank} aborting after a violation on another rank");
        }

        /// Rendezvous + cross-check one collective signature. Blocks until
        /// every rank has recorded a signature for this round, then checks
        /// all of them for equality. Panics the whole world on mismatch —
        /// *before* any of the collective's messages move.
        pub fn record_collective(&self, rank: usize, sig: CollSig) {
            let mut st = self.lock();
            if st.failed {
                self.abort_secondary(st, rank);
            }
            st.sigs[rank].push(sig);
            let idx = st.sigs[rank].len() - 1;
            self.cv.notify_all();

            let mut waited = Duration::ZERO;
            loop {
                if st.failed {
                    self.abort_secondary(st, rank);
                }
                if (0..self.size).all(|r| st.sigs[r].len() > idx) {
                    break;
                }
                let (guard, res) = self
                    .cv
                    .wait_timeout(st, POLL)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
                if res.timed_out() {
                    waited += POLL;
                    if waited >= RENDEZVOUS_TIMEOUT {
                        let missing: Vec<usize> = (0..self.size)
                            .filter(|&r| st.sigs[r].len() <= idx)
                            .collect();
                        let mine = st.sigs[rank][idx].clone();
                        self.fail(
                            st,
                            Violation {
                                kind: ViolationKind::Desync,
                                rank,
                                detail: format!(
                                    "collective round {idx}: ranks {missing:?} never arrived \
                                     (rank {rank} is at {mine})"
                                ),
                            },
                        );
                    }
                }
            }

            let base = st.sigs[0][idx].clone();
            for r in 1..self.size {
                let s = &st.sigs[r][idx];
                if *s != base {
                    let s = s.clone();
                    self.fail(
                        st,
                        Violation {
                            kind: ViolationKind::CollectiveMismatch,
                            rank,
                            detail: format!(
                                "collective round {idx}: rank 0 recorded {base} but rank {r} \
                                 recorded {s}"
                            ),
                        },
                    );
                }
            }
            if rank == 0 {
                st.checked += 1;
            }
        }

        /// Record one fusion-group launch and check it against the analytic
        /// schedule: group 0 opens a backward pass, and within a pass each
        /// launch must be exactly `previous + 1`.
        pub fn record_launch(&self, rank: usize, group: usize) {
            let mut st = self.lock();
            if st.failed {
                self.abort_secondary(st, rank);
            }
            let prev = st.launches[rank].last().copied();
            let in_order = group == 0 || prev == Some(group - 1);
            if !in_order {
                self.fail(
                    st,
                    Violation {
                        kind: ViolationKind::LaunchOrder,
                        rank,
                        detail: format!(
                            "rank {rank} launched fusion group {group} after {prev:?}; the \
                             analytic schedule launches groups in ascending order from 0"
                        ),
                    },
                );
            }
            st.launches[rank].push(group);
        }

        /// Note that `rank` is blocked receiving `(src, tag)`. Epoch bumps
        /// only on transitions so a stable block keeps a stable epoch.
        pub fn note_blocked(&self, rank: usize, src: usize, tag: u64) {
            let mut st = self.lock();
            if st.failed {
                self.abort_secondary(st, rank);
            }
            if st.blocked[rank] != Some((src, tag)) {
                st.blocked[rank] = Some((src, tag));
                st.epoch[rank] += 1;
            }
        }

        /// Note that `rank`'s blocked receive completed.
        pub fn note_unblocked(&self, rank: usize) {
            let mut st = self.lock();
            if st.blocked[rank].is_some() {
                st.blocked[rank] = None;
                st.epoch[rank] += 1;
            }
        }

        /// Look for a wait-for cycle reachable from `rank`. If one exists,
        /// re-observe it after a pause; a cycle whose members are all still
        /// blocked at the same epochs is a confirmed deadlock.
        pub fn check_deadlock(&self, rank: usize) {
            let path = {
                let st = self.lock();
                if st.failed {
                    self.abort_secondary(st, rank);
                }
                let Some(path) = walk_cycle(&st, self.size, rank) else {
                    return;
                };
                path
            };
            std::thread::sleep(STABILITY);
            let st = self.lock();
            if st.failed {
                self.abort_secondary(st, rank);
            }
            let stable = path
                .iter()
                .all(|&(r, e)| st.blocked[r].is_some() && st.epoch[r] == e);
            if stable {
                let chain: Vec<String> = path
                    .iter()
                    .map(|&(r, _)| {
                        let (src, tag) = st.blocked[r].expect("member still blocked");
                        format!("rank {r} waits for (src {src}, tag {tag:#x})")
                    })
                    .collect();
                self.fail(
                    st,
                    Violation {
                        kind: ViolationKind::Deadlock,
                        rank,
                        detail: format!("stable wait-for cycle: {}", chain.join(" -> ")),
                    },
                );
            }
        }

        /// Whether a violation has been flagged (pollers panic on it).
        pub fn failed(&self) -> bool {
            self.lock().failed
        }

        /// End-of-run cross-rank checks (launch sequences and signature
        /// counts must be identical) plus the summary for reporting. Called
        /// from the world's main thread after all ranks joined cleanly.
        pub fn final_check(&self) {
            let st = self.lock();
            for r in 1..self.size {
                if st.launches[r] != st.launches[0] {
                    let detail = format!(
                        "fusion launch order diverged: rank 0 launched {:?}, rank {r} \
                         launched {:?}",
                        st.launches[0], st.launches[r]
                    );
                    self.fail(
                        st,
                        Violation {
                            kind: ViolationKind::LaunchOrder,
                            rank: r,
                            detail,
                        },
                    );
                }
            }
            *SUMMARY.lock().unwrap_or_else(|e| e.into_inner()) = Some(VerifySummary {
                ranks: self.size,
                collectives_checked: st.checked,
                launches_checked: st.launches[0].len() as u64,
            });
        }
    }

    /// Follow blocked-on edges from `rank`. Returns the `(rank, epoch)`
    /// path up to and including the first repeated node — i.e. evidence of
    /// a cycle reachable from `rank` — or `None` if the walk reaches an
    /// unblocked rank. A rank blocked *on* a cycle is deadlocked too, so
    /// the cycle need not pass through `rank` itself.
    fn walk_cycle(st: &State, size: usize, rank: usize) -> Option<Vec<(usize, u64)>> {
        let mut seen = vec![false; size];
        let mut path = Vec::new();
        let mut cur = rank;
        loop {
            let (src, _tag) = st.blocked[cur]?;
            seen[cur] = true;
            path.push((cur, st.epoch[cur]));
            if seen[src] {
                return Some(path);
            }
            cur = src;
        }
    }
}

/// Names for the algorithm bin recorded in signatures.
pub(crate) fn algo_name(algo: crate::collectives::AllreduceAlgorithm) -> &'static str {
    use crate::collectives::AllreduceAlgorithm as A;
    match algo {
        A::Ring => "ring",
        A::RecursiveDoubling => "rd",
        A::TwoLevel => "two-level",
        A::PipelinedRing => "pipelined-ring",
    }
}

/// Names for the reduce operator recorded in signatures.
pub(crate) fn op_name(op: crate::collectives::ReduceOp) -> &'static str {
    use crate::collectives::ReduceOp as O;
    match op {
        O::Sum => "sum",
        O::Max => "max",
        O::Min => "min",
    }
}
