//! End-to-end bounded-mailbox behavior: a sender that outruns its
//! receiver by more than `sim_mailbox_budget` host bytes gets an explicit
//! [`CommError::MailboxBudget`] from `try_send` — never a hang, never an
//! OOM — and the error is identical on every core, because the charge
//! happens in the shared communicator beneath the executors.

use dlsr_mpi::{Comm, CommError, MpiConfig, MpiWorld, Payload, RankProgram, Step};
use dlsr_net::ClusterTopology;

fn topo() -> ClusterTopology {
    ClusterTopology {
        name: "budget2".into(),
        nodes: 1,
        gpus_per_node: 2,
    }
}

/// A budget that admits a handful of 1 KiB messages, then trips.
fn tight_budget() -> MpiConfig {
    MpiConfig::mpi_opt()
        .to_builder()
        .sim_mailbox_budget(16 * 1024)
        .build()
}

/// Rank 0 floods rank 1, which never receives; returns how many sends
/// were admitted before the budget refused one.
fn flood(comm: &mut Comm) -> Result<usize, CommError> {
    if comm.rank() != 0 {
        return Ok(0);
    }
    for i in 0..10_000u64 {
        comm.try_send(1, 0x42, Payload::Bytes(vec![0u8; 1024]), i)?;
    }
    panic!("10k unreceived sends never tripped a 16 KiB mailbox budget");
}

fn assert_tripped(sent: &Result<usize, CommError>) {
    match sent {
        Err(CommError::MailboxBudget {
            rank,
            in_flight,
            budget,
        }) => {
            assert_eq!(*rank, 0, "the sender is the rank that sees the error");
            assert_eq!(*budget, 16 * 1024);
            assert!(
                *in_flight > *budget,
                "refused charge must exceed the budget: {in_flight} vs {budget}"
            );
        }
        other => panic!("expected MailboxBudget, got {other:?}"),
    }
}

#[test]
fn overflow_is_an_explicit_error_on_the_context_cores() {
    for run in [
        MpiWorld::run_event::<Result<usize, CommError>, _>,
        MpiWorld::run_threaded::<Result<usize, CommError>, _>,
    ] {
        let res = run(&topo(), tight_budget(), flood);
        assert_tripped(&res.ranks[0]);
        assert!(res.ranks[1].is_ok());
    }
}

/// The driven engine charges the same budget at the same point: a rank
/// program whose synchronous segment floods trips identically.
struct FloodProg {
    sent: Option<Result<usize, CommError>>,
}

impl RankProgram for FloodProg {
    type Out = Result<usize, CommError>;
    fn next(&mut self, comm: &mut Comm) -> Step {
        if self.sent.is_none() {
            self.sent = Some(flood(comm));
        }
        Step::Done
    }
    fn finish(&mut self, _comm: &mut Comm, _trace: Vec<dlsr_trace::TraceEvent>) -> Self::Out {
        self.sent.take().expect("next ran before finish")
    }
}

#[test]
fn overflow_is_an_explicit_error_on_the_driven_engine() {
    let res = MpiWorld::run_driven(&topo(), tight_budget(), |_rank| FloodProg { sent: None });
    assert_tripped(&res.ranks[0]);
    assert!(res.ranks[1].is_ok());
}

/// A receiver that keeps up releases budget as it drains: far more than
/// `sim_mailbox_budget` total bytes succeed when the sender waits for an
/// ack every window, proving the budget tracks *in-flight* bytes, not
/// total traffic. (The window — 8 KiB + one ack — stays under the 16 KiB
/// budget by construction; without the acks this is exactly the flood
/// case above.)
#[test]
fn draining_receiver_releases_budget() {
    let res = MpiWorld::run_event(&topo(), tight_budget(), |comm: &mut Comm| {
        for window in 0..25u64 {
            for i in 0..8u64 {
                let id = window * 8 + i;
                if comm.rank() == 0 {
                    comm.try_send(1, 0x42, Payload::Bytes(vec![0u8; 1024]), id)?;
                } else {
                    let _ = comm.recv(0, 0x42, id);
                }
            }
            if comm.rank() == 0 {
                let _ = comm.recv(1, 0x43, window);
            } else {
                comm.try_send(0, 0x43, Payload::Bytes(vec![1]), window)?;
            }
        }
        Ok::<(), CommError>(())
    });
    for r in res.ranks {
        r.expect("windowed traffic fits the budget: 200 KiB moved through 16 KiB");
    }
}
