//! Property-based tests for the MPI layer: collective correctness over
//! random worlds, buffer sizes and configurations.

use proptest::prelude::*;

use dlsr_mpi::collectives::{allgather, barrier, bcast, Allreduce, AllreduceAlgorithm, ReduceOp};
use dlsr_mpi::{MpiConfig, MpiWorld, Payload};
use dlsr_net::ClusterTopology;

fn topo(nodes: usize, gpn: usize) -> ClusterTopology {
    ClusterTopology {
        name: format!("t{nodes}x{gpn}"),
        nodes,
        gpus_per_node: gpn,
    }
}

proptest! {
    // world launches are threads; keep case counts moderate
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Allreduce equals the sequential sum for every algorithm, any world
    /// shape and any (small) buffer length — including lengths smaller
    /// than, equal to, and larger than the world.
    #[test]
    fn allreduce_equals_sequential_sum(
        nodes in 1usize..4,
        gpn in 1usize..5,
        len in 0usize..70,
        algo_idx in 0usize..3,
        opt in proptest::bool::ANY,
    ) {
        let algo = [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
        ][algo_idx];
        let t = topo(nodes, gpn);
        let p = t.total_gpus();
        let cfg = if opt { MpiConfig::mpi_opt() } else { MpiConfig::default_mpi() };
        let res = MpiWorld::run(&t, cfg, move |c| {
            let mut buf: Vec<f32> =
                (0..len).map(|i| ((c.rank() * 13 + i * 7) % 23) as f32).collect();
            Allreduce::new(&mut buf).buf_id(1).algo(algo).run(c);
            buf
        });
        let want: Vec<f32> = (0..len)
            .map(|i| (0..p).map(|r| ((r * 13 + i * 7) % 23) as f32).sum())
            .collect();
        for (rank, got) in res.ranks.iter().enumerate() {
            prop_assert_eq!(got, &want, "algo {:?} rank {} world {}x{}", algo, rank, nodes, gpn);
        }
    }

    /// Bcast delivers the root's exact buffer to every rank, for any root.
    #[test]
    fn bcast_delivers_everywhere(
        nodes in 1usize..3,
        gpn in 1usize..5,
        len in 1usize..40,
        root_pick in 0usize..64,
    ) {
        let t = topo(nodes, gpn);
        let root = root_pick % t.total_gpus();
        let res = MpiWorld::run(&t, MpiConfig::mpi_opt(), move |c| {
            let mut buf = if c.rank() == root {
                (0..len).map(|i| (i * i) as f32).collect()
            } else {
                vec![-1.0; len]
            };
            bcast(c, &mut buf, root, 1);
            buf
        });
        let want: Vec<f32> = (0..len).map(|i| (i * i) as f32).collect();
        for got in &res.ranks {
            prop_assert_eq!(got, &want);
        }
    }

    /// Allgather returns every rank's contribution, in rank order, even
    /// with heterogeneous lengths.
    #[test]
    fn allgather_collects_in_order(nodes in 1usize..3, gpn in 1usize..4) {
        let t = topo(nodes, gpn);
        let res = MpiWorld::run(&t, MpiConfig::default_mpi(), |c| {
            let mine = vec![c.rank() as f32; (c.rank() % 3) + 1];
            allgather(c, mine, 1)
        });
        for gathered in &res.ranks {
            for (src, block) in gathered.iter().enumerate() {
                prop_assert_eq!(block.len(), (src % 3) + 1);
                prop_assert!(block.iter().all(|&v| v == src as f32));
            }
        }
    }

    /// Clocks never decrease across a sequence of collectives, and a
    /// barrier bounds every rank's clock from below by every other rank's
    /// pre-barrier time.
    #[test]
    fn clocks_are_monotone_and_barrier_synchronizes(
        gpn in 2usize..5,
        work_rank_pick in 0usize..8,
        work_ms in 1u32..50,
    ) {
        let t = topo(1, gpn);
        let slow = work_rank_pick % gpn;
        let work = work_ms as f64 * 1e-3;
        let res = MpiWorld::run(&t, MpiConfig::default_mpi(), move |c| {
            let t0 = c.now();
            if c.rank() == slow {
                c.advance(work);
            }
            barrier(c);
            let t1 = c.now();
            let mut buf = vec![1.0f32; 64];
            Allreduce::new(&mut buf).buf_id(1).algo(AllreduceAlgorithm::Ring).run(c);
            let t2 = c.now();
            (t0, t1, t2)
        });
        for &(t0, t1, t2) in &res.ranks {
            prop_assert!(t0 <= t1 && t1 <= t2);
            prop_assert!(t1 >= work, "barrier must wait for the slow rank");
        }
    }

    /// Synthetic collectives cost exactly what the real ones cost.
    #[test]
    fn synthetic_equals_real_time(
        nodes in 1usize..3,
        elems in 1usize..200_000,
        algo_idx in 0usize..3,
    ) {
        let algo = [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
        ][algo_idx];
        let t = topo(nodes, 4);
        let real = MpiWorld::run(&t, MpiConfig::mpi_opt(), move |c| {
            let mut buf = vec![1.0f32; elems];
            Allreduce::new(&mut buf).buf_id(1).algo(algo).run(c);
            c.now()
        })
        .makespan();
        let synth = MpiWorld::run(&t, MpiConfig::mpi_opt(), move |c| {
            dlsr_mpi::collectives::synthetic::allreduce_elems(c, elems, 1, algo);
            c.now()
        })
        .makespan();
        prop_assert!(((real - synth) / real).abs() < 1e-9, "{real} vs {synth}");
    }

    /// Max/Min allreduce compute the true elementwise extremum across
    /// ranks for every algorithm.
    #[test]
    fn allreduce_extrema_ops(
        nodes in 1usize..3,
        len in 1usize..40,
        algo_idx in 0usize..3,
        use_max in proptest::bool::ANY,
    ) {
        let algo = [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
        ][algo_idx];
        let op = if use_max { ReduceOp::Max } else { ReduceOp::Min };
        let t = topo(nodes, 4);
        let p = t.total_gpus();
        let res = MpiWorld::run(&t, MpiConfig::mpi_opt(), move |c| {
            let mut buf: Vec<f32> =
                (0..len).map(|i| ((c.rank() * 31 + i * 11) % 29) as f32 - 14.0).collect();
            Allreduce::new(&mut buf).buf_id(1).algo(algo).op(op).run(c);
            buf
        });
        let want: Vec<f32> = (0..len)
            .map(|i| {
                let vals = (0..p).map(|r| ((r * 31 + i * 11) % 29) as f32 - 14.0);
                if use_max {
                    vals.fold(f32::NEG_INFINITY, f32::max)
                } else {
                    vals.fold(f32::INFINITY, f32::min)
                }
            })
            .collect();
        for got in &res.ranks {
            prop_assert_eq!(got, &want);
        }
    }

    /// Point-to-point messages preserve payloads exactly.
    #[test]
    fn p2p_payload_integrity(data in proptest::collection::vec(-1e6f32..1e6, 0..64)) {
        let t = topo(1, 2);
        let expected = data.clone();
        let res = MpiWorld::run(&t, MpiConfig::default_mpi(), move |c| {
            if c.rank() == 0 {
                c.send(1, 5, Payload::F32(data.clone()), 1);
                Vec::new()
            } else {
                c.recv(0, 5, 2).into_f32()
            }
        });
        prop_assert_eq!(&res.ranks[1], &expected);
    }
}
