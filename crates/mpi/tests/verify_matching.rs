//! Tests for the debug-mode collective-matching verifier (the `verify`
//! feature — this target only builds with it, see Cargo.toml).
//!
//! The injected-failure tests prove the checker actually fires: a skewed
//! collective on rank 1 (wrong count / wrong tag via an extra collective /
//! wrong algorithm bin) and a crossed `irecv` deadlock must each abort the
//! world with a recorded violation, instead of hanging on a tag that never
//! matches.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use dlsr_mpi::collectives::{barrier, Allreduce, AllreduceAlgorithm, WireFormat};
use dlsr_mpi::verify::{self, ViolationKind};
use dlsr_mpi::{MpiConfig, MpiWorld};
use dlsr_net::ClusterTopology;

/// The violation list and summary are process-global; serialize the tests
/// so one test's wreckage never leaks into another's assertions.
static WORLD_LOCK: Mutex<()> = Mutex::new(());

fn topo() -> ClusterTopology {
    ClusterTopology::lassen(1) // 1 node × 4 GPUs
}

/// Run `f` expecting the world to panic, with the default panic printer
/// silenced (every rank of a failed world panics by design — the test log
/// should not look like a crime scene). Returns the recorded violations.
fn run_expecting_abort<F>(f: F) -> Vec<verify::Violation>
where
    F: Fn(&mut dlsr_mpi::Comm) -> usize + Send + Sync,
{
    let _ = verify::take_violations();
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| {
        MpiWorld::run(&topo(), MpiConfig::mpi_opt(), f)
    }));
    std::panic::set_hook(prev);
    assert!(result.is_err(), "the skewed world must abort");
    verify::take_violations()
}

#[test]
fn clean_world_passes_and_reports_a_summary() {
    let _g = WORLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = verify::take_violations();
    let res = MpiWorld::run(&topo(), MpiConfig::mpi_opt(), |c| {
        let mut grads = vec![c.rank() as f32; 64];
        Allreduce::new(&mut grads).buf_id(1).run(c);
        barrier(c);
        c.verify_checkpoint("negotiate", 1);
        let mut more = vec![1.0f32; 8];
        Allreduce::new(&mut more)
            .buf_id(2)
            .algo(AllreduceAlgorithm::Ring)
            .run(c);
        grads[0]
    });
    assert!(res.ranks.iter().all(|&v| v == 6.0));
    assert!(verify::take_violations().is_empty());
    let summary = verify::last_summary().expect("verified run stores a summary");
    assert_eq!(summary.ranks, 4);
    assert!(
        summary.collectives_checked >= 4,
        "allreduce + barrier + checkpoint + allreduce: {summary:?}"
    );
}

#[test]
fn skewed_element_count_on_rank_1_is_detected() {
    let _g = WORLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let violations = run_expecting_abort(|c| {
        // Rank 1 contributes 9 elements where everyone else sends 8.
        let elems = if c.rank() == 1 { 9 } else { 8 };
        let mut grads = vec![1.0f32; elems];
        Allreduce::new(&mut grads).buf_id(1).run(c);
        grads.len()
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::CollectiveMismatch);
    assert!(
        violations[0].detail.contains("elems=8") && violations[0].detail.contains("elems=9"),
        "detail names both counts: {}",
        violations[0].detail
    );
}

#[test]
fn skewed_tag_via_extra_collective_is_detected() {
    let _g = WORLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let violations = run_expecting_abort(|c| {
        // Rank 1 sneaks in an extra barrier, so its next collective runs
        // one sequence number (= tag base) ahead of everyone else's.
        if c.rank() == 1 {
            barrier(c);
        }
        let mut grads = vec![1.0f32; 16];
        Allreduce::new(&mut grads).buf_id(1).run(c);
        barrier(c);
        0
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::CollectiveMismatch);
}

#[test]
fn skewed_algorithm_bin_is_detected() {
    let _g = WORLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let violations = run_expecting_abort(|c| {
        let algo = if c.rank() == 1 {
            AllreduceAlgorithm::RecursiveDoubling
        } else {
            AllreduceAlgorithm::Ring
        };
        let mut grads = vec![1.0f32; 32];
        Allreduce::new(&mut grads).buf_id(1).algo(algo).run(c);
        0
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::CollectiveMismatch);
    assert!(
        violations[0].detail.contains("ring") && violations[0].detail.contains("rd"),
        "detail names both algorithm bins: {}",
        violations[0].detail
    );
}

#[test]
fn skewed_wire_format_is_detected() {
    let _g = WORLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let violations = run_expecting_abort(|c| {
        // Rank 1 compresses to bf16 while everyone else sends f32: the
        // dtype slot of the collective signature must catch this at the
        // rendezvous — never a hang or a payload decode panic.
        let wf = if c.rank() == 1 {
            WireFormat::Bf16
        } else {
            WireFormat::F32
        };
        let mut grads = vec![1.0f32; 32];
        Allreduce::new(&mut grads)
            .buf_id(1)
            .algo(AllreduceAlgorithm::Ring)
            .wire(wf)
            .run(c);
        0
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::CollectiveMismatch);
    assert!(
        violations[0].detail.contains("dtype=f32") && violations[0].detail.contains("dtype=bf16"),
        "detail names both wire formats: {}",
        violations[0].detail
    );
}

#[test]
fn crossed_irecv_deadlock_is_detected() {
    let _g = WORLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let violations = run_expecting_abort(|c| {
        // Ranks 0 and 1 each post an irecv for a tag the other never
        // sends, then block in wait: a classic crossed nonblocking pair.
        match c.rank() {
            0 => {
                let req = c.irecv(1, 0xA, 1);
                let _ = c.wait(req);
            }
            1 => {
                let req = c.irecv(0, 0xB, 2);
                let _ = c.wait(req);
            }
            _ => {}
        }
        0
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::Deadlock);
    assert!(
        violations[0].detail.contains("wait-for cycle"),
        "detail describes the cycle: {}",
        violations[0].detail
    );
}

#[test]
fn out_of_order_fusion_launch_is_detected() {
    let _g = WORLD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let violations = run_expecting_abort(|c| {
        // The analytic schedule launches groups 0, 1, 2, ...; jumping
        // straight to group 2 after group 0 breaks it.
        c.verify_launch(0);
        c.verify_launch(2);
        0
    });
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].kind, ViolationKind::LaunchOrder);
}
