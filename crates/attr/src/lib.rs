//! Marker attributes consumed by `dlsr-lint`.
//!
//! The attributes expand to exactly their input — they change nothing about
//! the compiled code. Their only purpose is to be visible in the source text
//! so the lint pass (which scans tokens, not the expanded AST) can attach
//! rules to the annotated items.
//!
//! Use sites alias this crate so the annotation reads as a dlsr-domain
//! marker rather than a crate name:
//!
//! ```ignore
//! use dlsr_attr as dlsr;
//!
//! #[dlsr::hot]
//! fn microkernel(...) { ... }
//! ```
//!
//! Three markers exist:
//!
//! - `#[dlsr::hot]` marks a function as steady-state hot: `dlsr-lint`
//!   rejects any allocating call (`Vec::new`, `vec!`, `to_vec`, `collect`,
//!   `clone`, `Box::new`, `with_capacity`, `format!`, `to_string`,
//!   `to_owned`) inside its body *and everything its body transitively
//!   calls*. The GEMM microkernel and im2col/col2im loops carry it;
//!   scratch must come in from the caller (see the scratch pool in
//!   `dlsr-tensor`).
//! - `#[dlsr::wall]` marks a function as a wall-clock domain boundary:
//!   real `Instant`/`SystemTime` reads are legitimate inside it and below
//!   it (trace epoch anchoring, bench harness timing, self-measurement).
//!   Everything *not* reachable under a `wall` fn must use virtual time.
//! - `#[dlsr::deterministic]` marks a function as a rank-determinism root:
//!   `dlsr-lint` verifies no nondeterminism source (`HashMap` iteration,
//!   `thread_rng`, `thread::current`, unordered rayon combinators) is
//!   reachable from it, and extracts its collective-call protocol skeleton
//!   for rank-divergence checking.

// This crate is the one place in the workspace that cannot carry
// `#![forbid(unsafe_code)]` *conditionally*: proc-macro crates run at
// compile time only and contain no unsafe either way.
#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Marks a function as allocation-free steady-state hot code.
///
/// Expands to the unmodified item. Enforced by the `hot-alloc` rule in
/// `dlsr-lint`, not by the compiler.
#[proc_macro_attribute]
pub fn hot(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Marks a function as a wall-clock domain boundary: wall-time reads are
/// allowed inside it and in everything it (transitively) calls.
///
/// Expands to the unmodified item. Enforced by the transitive `wall-clock`
/// rule in `dlsr-lint`, not by the compiler.
#[proc_macro_attribute]
pub fn wall(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}

/// Marks a function as a rank-determinism root: its call closure must be
/// free of nondeterminism sources and its collective-call sequence is
/// checked for rank divergence.
///
/// Expands to the unmodified item. Enforced by the `determinism-taint` and
/// `collective-order` rules in `dlsr-lint`, not by the compiler.
#[proc_macro_attribute]
pub fn deterministic(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
