//! `dlsr-horovod` — a Horovod-like data-parallel middleware (§II-D) sitting
//! between the DL framework (`dlsr-nn` models) and a communication backend
//! (`dlsr-mpi` / `dlsr-nccl`), exactly as in the paper's stack diagram
//! (Fig 3).
//!
//! Implements the pieces the paper's optimization story depends on:
//!
//! - **parameter broadcast** at startup (guideline 2 of §III-A),
//! - the **coordinator protocol**: every cycle, workers report ready
//!   tensors to rank 0, which broadcasts the agreed reduction order —
//!   real control messages through the simulated cluster, so the
//!   coordinator's O(world) cost appears in the timing like it does at
//!   scale in real Horovod,
//! - **Tensor Fusion** (steps 1–6 of §II-D): ready tensors are packed into
//!   a persistent fusion buffer of `HOROVOD_FUSION_THRESHOLD` bytes, one
//!   allreduce per fused group, then unpacked,
//! - the **DistributedOptimizer** wrapper (guideline 3) with learning-rate
//!   scaling (guideline 4),
//! - an opt-in **online comm tuner** ([`tuner`]) automating the paper's
//!   per-scale `HOROVOD_FUSION_THRESHOLD` / `HOROVOD_CYCLE_TIME` sweep
//!   deterministically inside the run (see `docs/WIRE.md`),
//! - per-collective, per-message-size profiling via `dlsr-hvprof`.

//! # Example
//!
//! ```
//! use dlsr_horovod::{broadcast_parameters, DistributedOptimizer, HorovodConfig};
//! use dlsr_hvprof::Hvprof;
//! use dlsr_mpi::{MpiConfig, MpiWorld};
//! use dlsr_net::ClusterTopology;
//! use dlsr_nn::layers::Linear;
//! use dlsr_nn::module::{Module, ModuleExt};
//! use dlsr_nn::optim::Sgd;
//!
//! let topo = ClusterTopology::lassen(1); // 4 ranks
//! let result = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |comm| {
//!     // differently-seeded models are aligned by the startup broadcast
//!     let mut model = Linear::new("fc", 4, 2, comm.rank() as u64);
//!     let mut prof = Hvprof::new();
//!     broadcast_parameters(&mut model, comm, 0, &mut prof);
//!     let mut opt = DistributedOptimizer::new(
//!         Sgd::new(0.01), &mut model, HorovodConfig::default(), comm.size());
//!     // ... forward / loss / backward would go here ...
//!     opt.step(&mut model, comm); // fused allreduce + local update
//!     model.flatten_params()
//! });
//! assert_eq!(result.ranks[0], result.ranks[3]); // ranks stay in sync
//! ```

#![forbid(unsafe_code)]
pub mod config;
pub mod coordinator;
pub mod fusion;
pub mod optimizer;
pub mod tuner;

pub use config::{Backend, ConfigError, HorovodConfig, HorovodConfigBuilder};
pub use coordinator::{negotiate, negotiate_with_cost, NegotiateTask};
pub use fusion::{
    plan_dynamic, plan_fusion, readiness_from_elems, reconcile_readiness, FusionGroup,
    ReadinessReconciliation, ScheduledGroup, TensorSpec,
};
pub use optimizer::{broadcast_parameters, DistributedOptimizer, GradientSynchronizer};
pub use tuner::{CommTuneEntry, CommTuner};
