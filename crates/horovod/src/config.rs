//! Horovod runtime knobs.

/// Communication backend selection (paper compares MVAPICH2-GDR and NCCL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// CUDA-aware MPI (MVAPICH2-GDR-like) — honours `MpiConfig` presets.
    Mpi,
    /// NCCL-like ring collectives.
    Nccl,
}

/// Horovod configuration (§II-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorovodConfig {
    /// `HOROVOD_FUSION_THRESHOLD`: fusion buffer capacity in bytes
    /// (default 64 MB).
    pub fusion_threshold: u64,
    /// `HOROVOD_CYCLE_TIME`: coordinator cycle period in seconds
    /// (default 3.5 ms).
    pub cycle_time: f64,
    /// Communication backend.
    pub backend: Backend,
}

impl Default for HorovodConfig {
    fn default() -> Self {
        HorovodConfig {
            fusion_threshold: 64 << 20,
            cycle_time: 3.5e-3,
            backend: Backend::Mpi,
        }
    }
}

impl HorovodConfig {
    /// Tuned configuration per the paper (§II-D: "HOROVOD_FUSION_THRESHOLD
    /// and HOROVOD_CYCLE_TIME are carefully tuned at each scale"): larger
    /// worlds prefer a shorter cycle (less added latency per reduction
    /// round) — the fusion threshold stays at the 64 MB default because
    /// EDSR's gradient set fits in few groups either way.
    pub fn tuned_for(world: usize) -> Self {
        let cycle_time = if world >= 64 { 1.0e-3 } else { 3.5e-3 };
        HorovodConfig {
            cycle_time,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_horovod_documentation() {
        let c = HorovodConfig::default();
        assert_eq!(c.fusion_threshold, 64 << 20);
        assert!((c.cycle_time - 3.5e-3).abs() < 1e-12);
    }

    #[test]
    fn tuning_shortens_cycle_at_scale() {
        assert!(HorovodConfig::tuned_for(512).cycle_time < HorovodConfig::tuned_for(4).cycle_time);
    }
}
