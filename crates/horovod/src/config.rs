//! Horovod runtime knobs.
//!
//! [`HorovodConfig`] is `#[non_exhaustive]`: construct it through
//! [`HorovodConfig::default`] / [`HorovodConfig::tuned_for`] or the
//! validated [`HorovodConfig::builder`], never a struct literal, so new
//! knobs land additively.

use std::fmt;

/// Communication backend selection (paper compares MVAPICH2-GDR and NCCL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// CUDA-aware MPI (MVAPICH2-GDR-like) — honours `MpiConfig` presets.
    Mpi,
    /// NCCL-like ring collectives.
    Nccl,
}

/// A [`HorovodConfigBuilder`] rejected its knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid HorovodConfig: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Horovod configuration (§II-D).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct HorovodConfig {
    /// `HOROVOD_FUSION_THRESHOLD`: fusion buffer capacity in bytes
    /// (default 64 MB).
    pub fusion_threshold: u64,
    /// `HOROVOD_CYCLE_TIME`: coordinator cycle period in seconds
    /// (default 3.5 ms).
    pub cycle_time: f64,
    /// Communication backend.
    pub backend: Backend,
    /// Enable the online communication tuner (see [`crate::tuner`]): the
    /// first few steps each measure one candidate knob set, then the
    /// argmin freezes for the rest of the run. Off by default — the tuned
    /// knobs change step timing, so runs that must match a committed
    /// baseline leave this off or pre-warm the `DLSR_COMM_TUNE` cache.
    pub tune_comm: bool,
}

impl Default for HorovodConfig {
    fn default() -> Self {
        HorovodConfig {
            fusion_threshold: 64 << 20,
            cycle_time: 3.5e-3,
            backend: Backend::Mpi,
            tune_comm: false,
        }
    }
}

impl HorovodConfig {
    /// Tuned configuration per the paper (§II-D: "HOROVOD_FUSION_THRESHOLD
    /// and HOROVOD_CYCLE_TIME are carefully tuned at each scale"): larger
    /// worlds prefer a shorter cycle (less added latency per reduction
    /// round) — the fusion threshold stays at the 64 MB default because
    /// EDSR's gradient set fits in few groups either way.
    pub fn tuned_for(world: usize) -> Self {
        let cycle_time = if world >= 64 { 1.0e-3 } else { 3.5e-3 };
        HorovodConfig {
            cycle_time,
            ..Default::default()
        }
    }

    /// Chainable, validated construction starting from the defaults.
    pub fn builder() -> HorovodConfigBuilder {
        HorovodConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Reopen any config for further tweaking.
    pub fn to_builder(self) -> HorovodConfigBuilder {
        HorovodConfigBuilder { cfg: self }
    }
}

/// Builder for [`HorovodConfig`]: defaults-based, chainable, validated at
/// [`HorovodConfigBuilder::try_build`].
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until built"]
pub struct HorovodConfigBuilder {
    cfg: HorovodConfig,
}

impl HorovodConfigBuilder {
    /// Fusion buffer capacity in bytes.
    pub fn fusion_threshold(mut self, bytes: u64) -> Self {
        self.cfg.fusion_threshold = bytes;
        self
    }

    /// Coordinator cycle period in seconds.
    pub fn cycle_time(mut self, seconds: f64) -> Self {
        self.cfg.cycle_time = seconds;
        self
    }

    /// Communication backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Enable the online communication tuner.
    pub fn tune_comm(mut self, on: bool) -> Self {
        self.cfg.tune_comm = on;
        self
    }

    /// Validate and build.
    pub fn try_build(self) -> Result<HorovodConfig, ConfigError> {
        let c = &self.cfg;
        if c.fusion_threshold == 0 {
            return Err(ConfigError(
                "fusion_threshold must be positive (a zero-capacity fusion buffer \
                 cannot carry any gradient)"
                    .into(),
            ));
        }
        if !(c.cycle_time > 0.0 && c.cycle_time.is_finite()) {
            return Err(ConfigError(format!(
                "cycle_time ({}) must be a positive duration",
                c.cycle_time
            )));
        }
        Ok(self.cfg)
    }

    /// [`HorovodConfigBuilder::try_build`], panicking on invalid knobs.
    pub fn build(self) -> HorovodConfig {
        self.try_build()
            .unwrap_or_else(|e| panic!("HorovodConfigBuilder::build: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_horovod_documentation() {
        let c = HorovodConfig::default();
        assert_eq!(c.fusion_threshold, 64 << 20);
        assert!((c.cycle_time - 3.5e-3).abs() < 1e-12);
    }

    #[test]
    fn tuning_shortens_cycle_at_scale() {
        assert!(HorovodConfig::tuned_for(512).cycle_time < HorovodConfig::tuned_for(4).cycle_time);
    }

    #[test]
    fn builder_chains_and_round_trips() {
        let c = HorovodConfig::tuned_for(128)
            .to_builder()
            .fusion_threshold(32 << 20)
            .backend(Backend::Nccl)
            .tune_comm(true)
            .build();
        assert_eq!(c.fusion_threshold, 32 << 20);
        assert_eq!(c.backend, Backend::Nccl);
        assert!(c.tune_comm, "tune_comm knob must round-trip");
        assert!(!HorovodConfig::default().tune_comm, "tuner is opt-in");
        assert!((c.cycle_time - 1.0e-3).abs() < 1e-12);
        assert_eq!(HorovodConfig::builder().build(), HorovodConfig::default());
    }

    #[test]
    fn builder_rejects_degenerate_knobs() {
        assert!(HorovodConfig::builder()
            .fusion_threshold(0)
            .try_build()
            .is_err());
        assert!(HorovodConfig::builder()
            .cycle_time(0.0)
            .try_build()
            .is_err());
        assert!(HorovodConfig::builder()
            .cycle_time(f64::NAN)
            .try_build()
            .is_err());
    }
}
