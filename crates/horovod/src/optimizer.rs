//! The `DistributedOptimizer` wrapper and parameter broadcast — the two
//! code changes that "Horovod-ize" a single-GPU model (§III-A).

use dlsr_attr as dlsr;
use dlsr_hvprof::{Collective, Hvprof};
use dlsr_mpi::collectives::{bcast, synthetic, wire, Allreduce, AllreduceAlgorithm, ReduceOp};
use dlsr_mpi::{Comm, CommChoice, PathPolicy, WireFormat};
use dlsr_nccl::Nccl;
use dlsr_nn::module::{Module, ModuleExt};
use dlsr_nn::optim::Optimizer;
use dlsr_tensor::{Result, Tensor};

use crate::config::{Backend, HorovodConfig};
use crate::coordinator::negotiate;
use crate::fusion::{
    plan_fusion, readiness_from_elems, reconcile_readiness, FusionGroup, ReadinessReconciliation,
    TensorSpec,
};
use crate::tuner::{CommTuneEntry, CommTuner};

/// Stable buffer-id namespace for the persistent fusion buffers (reused
/// every step → registration-cache hits, the §III-D effect).
const FUSION_BUF_ID_BASE: u64 = 0x4655_5300; // "FUS"

/// Buffer id of the tuner's 1-element step-duration agreement allreduce.
const TUNE_BUF_ID: u64 = 0x54_554E; // "TUN"

/// Algorithm + wire selection for one fused group: the comm config's
/// size-binned [`select_comm`](dlsr_mpi::MpiConfig::select_comm), with the
/// tuner's `rd`/`pipeline` thresholds substituted when a tuned entry is
/// active. A pure function of `(bytes, tuned, config)`, so the sequential
/// and overlapped paths — and every rank — pick identically.
fn comm_choice(comm: &Comm, bytes: u64, tuned: Option<CommTuneEntry>) -> CommChoice {
    let nodes = comm.topology().nodes;
    match tuned {
        Some(e) => {
            let mut cfg = comm.config().clone();
            cfg.tuning.rd_threshold = e.rd_threshold;
            cfg.tuning.pipeline_threshold = e.pipeline_threshold;
            cfg.select_comm(bytes, nodes)
        }
        None => comm.config().select_comm(bytes, nodes),
    }
}

/// Top-k error feedback (EF-SGD): fold the residual of the previous step
/// into the gradient before compression, then stash everything the top-k
/// selection will drop. `topk_indices` is a pure function of the values,
/// so this recomputes exactly the set the collective transmits.
fn topk_error_feedback(buf: &mut [f32], residual: &mut [f32], k_permille: u16) {
    for (b, r) in buf.iter_mut().zip(residual.iter()) {
        *b += *r;
    }
    let k = wire::topk_count(buf.len(), k_permille);
    let idx = wire::topk_indices(buf, k);
    for (r, &b) in residual.iter_mut().zip(buf.iter()) {
        *r = b;
    }
    for &i in &idx {
        residual[i as usize] = 0.0;
    }
}

/// Fusion-buffer counters for the step report: group count, bytes actually
/// packed, and the capacity each group occupies (a group can exceed the
/// threshold when a single tensor is larger than it, so capacity is the
/// max of the two — utilization stays ≤ 100%).
fn record_group_counters(group: &FusionGroup, fusion_threshold: u64) {
    use dlsr_trace::report::keys;
    dlsr_trace::counter_add(keys::FUSION_GROUPS, 1.0);
    dlsr_trace::counter_add(keys::FUSION_PACKED_BYTES, group.bytes as f64);
    dlsr_trace::counter_add(
        keys::FUSION_CAPACITY_BYTES,
        group.bytes.max(fusion_threshold) as f64,
    );
}

/// Broadcast model parameters from `root` so all ranks start identical
/// (§III-A guideline 2). Records the bcast in `prof`.
pub fn broadcast_parameters(
    model: &mut dyn Module,
    comm: &mut Comm,
    root: usize,
    prof: &mut Hvprof,
) {
    let mut flat = model.flatten_params();
    let t0 = comm.now();
    bcast(comm, &mut flat, root, FUSION_BUF_ID_BASE - 1);
    prof.record(Collective::Bcast, (flat.len() * 4) as u64, comm.now() - t0);
    model.load_flat_params(&flat);
}

/// Horovod's distributed optimizer: wraps a local optimizer, averaging
/// gradients across ranks (tensor-fusion allreduce) before every step.
pub struct DistributedOptimizer<O: Optimizer> {
    inner: O,
    cfg: HorovodConfig,
    tensors: Vec<TensorSpec>,
    groups: Vec<FusionGroup>,
    prof: Hvprof,
    cycle: u64,
    /// d2d pack/unpack bandwidth (fusion-buffer copies), bytes/s.
    pack_bandwidth: f64,
    /// Offset of each tensor (reduction order) in the reduction-order flat
    /// gradient buffer; groups tile this buffer contiguously.
    rev_offsets: Vec<usize>,
    /// Total gradient element count.
    total_elems: usize,
    /// Persistent double-buffered fusion buffers for the overlapped path:
    /// group k packs into buffer k % 2 while group k−1 is on the wire.
    /// Capacity persists across steps → registration-cache hits.
    fuse_bufs: [Vec<f32>; 2],
    /// Averaged gradients staged in reduction order until backward returns
    /// (frees the parity buffer for group k+2 before write-back).
    avg_flat: Vec<f32>,
    /// Wall-clock readiness offsets (seconds from backward start) measured
    /// during the last overlapped backward, one per tensor in reduction
    /// order.
    measured_readiness: Vec<f64>,
    /// Analytic-vs-measured readiness comparison from the last overlapped
    /// backward.
    reconciliation: Option<ReadinessReconciliation>,
    /// Online comm tuner (lazily created on the first tuned step when
    /// `cfg.tune_comm`).
    tuner: Option<CommTuner>,
    /// The knob set the current step runs with (`None` ⇒ untuned config).
    applied: Option<CommTuneEntry>,
    /// The fusion threshold `self.groups` was planned with (re-planning is
    /// only paid when the tuner actually moves this knob).
    applied_fusion: u64,
    /// Top-k error-feedback residuals, one per gradient element in
    /// reduction order; empty until a top-k wire format is first chosen.
    residual: Vec<f32>,
    /// Virtual-clock start of the current tuned step.
    step_t0: f64,
}

impl<O: Optimizer> DistributedOptimizer<O> {
    /// Wrap `inner`, planning fusion for `model`'s parameter set.
    ///
    /// Also applies the learning-rate scaling of §III-A guideline 4:
    /// `lr ← lr · world_size` to counteract the effectively larger global
    /// batch.
    pub fn new(mut inner: O, model: &mut dyn Module, cfg: HorovodConfig, world: usize) -> Self {
        // Gradients become ready in reverse layer order during backward;
        // Horovod fuses them in readiness order.
        let mut tensors: Vec<TensorSpec> = Vec::new();
        model.visit_params(&mut |p| {
            tensors.push(TensorSpec {
                name: p.name.clone(),
                elems: p.numel(),
            })
        });
        tensors.reverse();
        let groups = plan_fusion(&tensors, cfg.fusion_threshold);
        inner.set_lr(inner.lr() * world as f32);
        let mut rev_offsets = Vec::with_capacity(tensors.len());
        let mut off = 0usize;
        for t in &tensors {
            rev_offsets.push(off);
            off += t.elems;
        }
        DistributedOptimizer {
            inner,
            cfg,
            tensors,
            groups,
            prof: Hvprof::new(),
            cycle: 0,
            pack_bandwidth: 700.0e9,
            rev_offsets,
            total_elems: off,
            fuse_bufs: [Vec::new(), Vec::new()],
            avg_flat: Vec::new(),
            measured_readiness: Vec::new(),
            reconciliation: None,
            tuner: None,
            applied: None,
            applied_fusion: cfg.fusion_threshold,
            residual: Vec::new(),
            step_t0: 0.0,
        }
    }

    /// The planned fusion groups.
    pub fn fusion_groups(&self) -> &[FusionGroup] {
        &self.groups
    }

    /// The tensor list in reduction order.
    pub fn tensors(&self) -> &[TensorSpec] {
        &self.tensors
    }

    /// The accumulated communication profile.
    pub fn profiler(&self) -> &Hvprof {
        &self.prof
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped optimizer (checkpoint restore loads
    /// optimizer state back through this).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Set the wrapped optimizer's learning rate directly (LR schedules
    /// drive the already-world-scaled rate through this).
    pub fn set_inner_lr(&mut self, lr: f32) {
        self.inner.set_lr(lr);
    }

    /// Wall-clock readiness offsets measured during the last overlapped
    /// backward (empty until [`DistributedOptimizer::backward_and_step`]
    /// has run), one per tensor in reduction order.
    pub fn measured_readiness(&self) -> &[f64] {
        &self.measured_readiness
    }

    /// Analytic-vs-measured readiness comparison from the last overlapped
    /// backward.
    pub fn readiness_reconciliation(&self) -> Option<&ReadinessReconciliation> {
        self.reconciliation.as_ref()
    }

    /// The comm tuner's frozen decision, if tuning ran and converged.
    pub fn comm_tune_decision(&self) -> Option<CommTuneEntry> {
        self.tuner.as_ref().and_then(|t| t.frozen())
    }

    /// The cycle period in effect this step (tuned or configured).
    fn cycle_time(&self) -> f64 {
        self.applied.map_or(self.cfg.cycle_time, |e| e.cycle_time())
    }

    /// The fusion threshold in effect this step (tuned or configured).
    fn fusion_threshold(&self) -> u64 {
        self.applied
            .map_or(self.cfg.fusion_threshold, |e| e.fusion_threshold)
    }

    /// Apply the tuner's knob set for the coming step: re-plan fusion when
    /// the threshold moved, adopt the candidate's cycle time and selection
    /// thresholds, and stamp the step start. No-op unless `cfg.tune_comm`
    /// on a multi-rank world.
    #[dlsr::deterministic]
    fn tune_begin(&mut self, comm: &mut Comm) {
        if !self.cfg.tune_comm || comm.size() <= 1 {
            return;
        }
        if self.tuner.is_none() {
            let base = CommTuneEntry {
                fusion_threshold: self.cfg.fusion_threshold,
                cycle_time_ns: (self.cfg.cycle_time * 1e9).round() as u64,
                rd_threshold: comm.config().tuning.rd_threshold,
                pipeline_threshold: comm.config().tuning.pipeline_threshold,
            };
            self.tuner = Some(CommTuner::new(
                comm.size(),
                self.total_elems as u64 * 4,
                base,
            ));
        }
        let entry = self.tuner.as_ref().unwrap().current();
        if entry.fusion_threshold != self.applied_fusion {
            self.groups = plan_fusion(&self.tensors, entry.fusion_threshold);
            self.applied_fusion = entry.fusion_threshold;
        }
        self.applied = Some(entry);
        self.step_t0 = comm.now();
    }

    /// Close a tuned step: agree on its virtual duration with a 1-element
    /// Max-allreduce (every rank must act on the same measurement) and
    /// feed the tuner. The agreement runs only while candidates are still
    /// being explored — a frozen tuner costs nothing per step.
    #[dlsr::deterministic]
    fn tune_end(&mut self, comm: &mut Comm) {
        let Some(t) = self.tuner.as_mut() else {
            return;
        };
        if !t.exploring() {
            return;
        }
        let mut d = vec![(comm.now() - self.step_t0) as f32];
        Allreduce::new(&mut d)
            .buf_id(TUNE_BUF_ID)
            .op(ReduceOp::Max)
            .wire(WireFormat::F32)
            .run(comm);
        t.observe(d[0] as f64, comm.rank() == 0);
    }

    /// Overlapped backward + distributed step — the cycle-driven engine.
    ///
    /// Runs `model`'s backward with a gradient-readiness hook; the moment
    /// the last tensor of a fusion group has its final gradient, that
    /// group is packed and its allreduce launched *while backward is still
    /// producing gradients for earlier layers*. Two persistent parity
    /// buffers double-buffer the packing: group k+1 packs into buffer
    /// `(k+1) % 2` while group k's buffer is on the wire (groups launch
    /// strictly in plan order, so at most one group is ever partially
    /// packed).
    ///
    /// `bwd_virtual` is the virtual-clock duration of the whole backward
    /// pass. Group launch times inside it follow the *analytical*
    /// readiness schedule ([`readiness_from_elems`] plus the engine's
    /// `cycle_time / 2` expected phase lag) — a pure function of the model
    /// shape, so every rank launches the same groups in the same order at
    /// the same virtual times. Wall-clock readiness is recorded per tensor
    /// for [`DistributedOptimizer::readiness_reconciliation`].
    ///
    /// Gradients, parameter updates and the returned input-gradient are
    /// bitwise identical to `model.backward(grad_out)` followed by
    /// [`DistributedOptimizer::step`]: the hook observes final gradient
    /// values, groups pack the same byte ranges, the same size-binned
    /// algorithm reduces them in the same order, and averaging uses the
    /// same `/ world` division.
    #[dlsr::deterministic]
    pub fn backward_and_step(
        &mut self,
        model: &mut dyn Module,
        grad_out: &Tensor,
        comm: &mut Comm,
        bwd_virtual: f64,
    ) -> Result<Tensor> {
        self.tune_begin(comm);
        let world = comm.size();
        let world_f = world as f32;
        let n = self.tensors.len();
        let readiness = readiness_from_elems(&self.tensors, bwd_virtual);
        let bwd_start_v = comm.now();
        // dlsr-lint: allow(wall-clock) -- measured readiness is wall-domain
        // by design: it is diagnostic only (reconcile_readiness), never fed
        // into launch order, tags or any rank-visible decision.
        let wall0 = std::time::Instant::now();
        if world > 1 {
            self.cycle += 1;
        }
        let cycle = self.cycle;
        self.measured_readiness.clear();
        self.avg_flat.resize(self.total_elems, 0.0);

        // Split borrows: the hook drives comm and the profiler while the
        // model is exclusively inside backward_with_hook.
        let tuned = self.applied;
        let fusion_threshold = self.fusion_threshold();
        let cycle_half = self.cycle_time() * 0.5;
        let total_elems = self.total_elems;
        let groups = &self.groups;
        let tensors = &self.tensors;
        let cfg = &self.cfg;
        let pack_bandwidth = self.pack_bandwidth;
        let prof = &mut self.prof;
        let fuse_bufs = &mut self.fuse_bufs;
        let avg_flat = &mut self.avg_flat;
        let measured = &mut self.measured_readiness;
        let residual = &mut self.residual;

        let mut next_tensor = 0usize;
        let mut cur_group = 0usize;
        let mut filled = 0usize; // elems packed into the current group
        let mut group_off = 0usize; // start of cur_group in reduction order

        let g_in = model.backward_with_hook(grad_out, &mut |p| {
            measured.push(wall0.elapsed().as_secs_f64());
            debug_assert_eq!(
                p.name, tensors[next_tensor].name,
                "hook order diverged from the fusion plan"
            );
            next_tensor += 1;
            if world <= 1 {
                return; // nothing to reduce — readiness capture only
            }
            let group = &groups[cur_group];
            let buf = &mut fuse_bufs[cur_group % 2];
            if filled == 0 {
                buf.clear(); // capacity persists across steps and groups
            }
            buf.extend_from_slice(p.grad.data());
            filled += p.numel();
            if filled < group.elems {
                return;
            }
            // Group complete: launch its allreduce now, while backward
            // continues on the remaining layers.
            let gi = cur_group;
            let last = *group.indices.last().unwrap();
            comm.advance_to(bwd_start_v + readiness[last] + cycle_half);
            if gi == 0 {
                negotiate(comm, tensors.len(), cycle);
            }
            record_group_counters(group, fusion_threshold);
            let t_pack = comm.now();
            comm.advance(group.bytes as f64 / pack_bandwidth);
            dlsr_trace::record_span(
                || format!("pack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_pack,
                comm.now(),
            );
            let w0 = dlsr_trace::now_wall_s();
            let t0 = comm.now();
            comm.verify_launch(gi);
            match cfg.backend {
                Backend::Mpi => {
                    let choice = comm_choice(comm, group.bytes, tuned);
                    if let WireFormat::TopK { k_permille } = choice.wire {
                        if residual.len() != total_elems {
                            residual.resize(total_elems, 0.0);
                        }
                        topk_error_feedback(
                            buf,
                            &mut residual[group_off..group_off + group.elems],
                            k_permille,
                        );
                    }
                    Allreduce::new(&mut *buf)
                        .buf_id(FUSION_BUF_ID_BASE + gi as u64)
                        .algo(choice.algo)
                        .wire(choice.wire)
                        .group(gi)
                        .run(comm);
                }
                Backend::Nccl => Nccl::all_reduce(comm, buf, FUSION_BUF_ID_BASE + gi as u64),
            }
            prof.record(Collective::Allreduce, group.bytes, comm.now() - t0);
            dlsr_trace::record_span(
                || format!("allreduce[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::ALLREDUCE,
                t0,
                comm.now(),
            );
            // Wall-clock marker proving the launch happened mid-backward;
            // the cost is carried by the virtual spans above.
            dlsr_trace::record_wall_span(
                || format!("allreduce.launch[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::AR_LAUNCH,
                comm.rank(),
                w0,
                dlsr_trace::now_wall_s(),
            );
            // Average into the staging buffer; the parity buffer frees for
            // group gi + 2.
            let t_unpack = comm.now();
            for (dst, src) in avg_flat[group_off..group_off + group.elems]
                .iter_mut()
                .zip(buf.iter())
            {
                *dst = *src / world_f;
            }
            comm.advance(group.bytes as f64 / pack_bandwidth);
            dlsr_trace::record_span(
                || format!("unpack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_unpack,
                comm.now(),
            );
            group_off += group.elems;
            filled = 0;
            cur_group += 1;
        })?;

        assert_eq!(next_tensor, n, "backward did not fire every parameter hook");
        if world > 1 {
            assert_eq!(cur_group, groups.len(), "not every fusion group launched");
        }
        // Backward compute ends `bwd_virtual` after it started; if some
        // group's reduction ran past that, the clock is already later.
        comm.advance_to(bwd_start_v + bwd_virtual);
        dlsr_trace::record_span(
            || format!("bwd {n}t"),
            dlsr_trace::cat::COMPUTE,
            bwd_start_v,
            bwd_start_v + bwd_virtual,
        );
        self.reconciliation = Some(reconcile_readiness(&readiness, &self.measured_readiness));
        if world > 1 {
            // Write the averaged gradients back in visit order.
            let rev_offsets = &self.rev_offsets;
            let avg_flat = &self.avg_flat;
            let mut v = 0usize;
            model.visit_params(&mut |p| {
                let ti = n - 1 - v;
                let off = rev_offsets[ti];
                let nel = p.numel();
                p.grad.data_mut().copy_from_slice(&avg_flat[off..off + nel]);
                v += 1;
            });
        }
        self.inner.step(model);
        self.tune_end(comm);
        Ok(g_in)
    }

    /// One distributed training step: negotiate, fuse, allreduce, average,
    /// then apply the wrapped optimizer. Call after `model.backward(...)`.
    #[dlsr::deterministic]
    pub fn step(&mut self, model: &mut dyn Module, comm: &mut Comm) {
        if comm.size() > 1 {
            self.tune_begin(comm);
            self.cycle += 1;
            // Coordinator cycle: cost of waiting for the tick + negotiation.
            comm.advance(self.cycle_time());
            negotiate(comm, self.tensors.len(), self.cycle);
            self.allreduce_gradients(model, comm);
            self.inner.step(model);
            self.tune_end(comm);
            return;
        }
        self.inner.step(model);
    }

    /// Fuse + allreduce + average the gradients of `model` in place.
    #[dlsr::deterministic]
    fn allreduce_gradients(&mut self, model: &mut dyn Module, comm: &mut Comm) {
        let world = comm.size() as f32;
        // flatten in visit order, then address per-tensor slices through
        // the reversed order used by the fusion plan
        let mut flat = model.flatten_grads();
        // visit order offsets
        let mut offsets = Vec::with_capacity(self.tensors.len());
        {
            let mut off = 0usize;
            let mut sizes: Vec<usize> = Vec::new();
            model.visit_params(&mut |p| sizes.push(p.numel()));
            for s in &sizes {
                offsets.push(off);
                off += s;
            }
            // reversed to match self.tensors order
            offsets.reverse();
            let _ = off;
        }
        let fusion_threshold = self.fusion_threshold();
        let mut group_off = 0usize; // start of the group in reduction order
        for (gi, group) in self.groups.iter().enumerate() {
            record_group_counters(group, fusion_threshold);
            // pack
            let t_pack = comm.now();
            let mut fused = Vec::with_capacity(group.elems);
            for &ti in &group.indices {
                let off = offsets[ti];
                let n = self.tensors[ti].elems;
                fused.extend_from_slice(&flat[off..off + n]);
            }
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("pack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_pack,
                comm.now(),
            );
            // reduce
            let buf_id = FUSION_BUF_ID_BASE + gi as u64;
            let t0 = comm.now();
            match self.cfg.backend {
                // Size-binned algorithm + wire selection — the same pure
                // function of the group's byte count as the overlapped
                // path, so both paths reduce in bitwise-identical order.
                Backend::Mpi => {
                    let choice = comm_choice(comm, group.bytes, self.applied);
                    if let WireFormat::TopK { k_permille } = choice.wire {
                        if self.residual.len() != self.total_elems {
                            self.residual.resize(self.total_elems, 0.0);
                        }
                        topk_error_feedback(
                            &mut fused,
                            &mut self.residual[group_off..group_off + group.elems],
                            k_permille,
                        );
                    }
                    Allreduce::new(&mut fused)
                        .buf_id(buf_id)
                        .algo(choice.algo)
                        .wire(choice.wire)
                        .group(gi)
                        .run(comm);
                }
                Backend::Nccl => Nccl::all_reduce(comm, &mut fused, buf_id),
            }
            self.prof
                .record(Collective::Allreduce, group.bytes, comm.now() - t0);
            dlsr_trace::record_span(
                || format!("allreduce[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::ALLREDUCE,
                t0,
                comm.now(),
            );
            // average + unpack
            let t_unpack = comm.now();
            let mut cursor = 0usize;
            for &ti in &group.indices {
                let off = offsets[ti];
                let n = self.tensors[ti].elems;
                for (dst, src) in flat[off..off + n]
                    .iter_mut()
                    .zip(&fused[cursor..cursor + n])
                {
                    *dst = *src / world;
                }
                cursor += n;
            }
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("unpack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_unpack,
                comm.now(),
            );
            group_off += group.elems;
        }
        model.load_flat_grads(&flat);
    }
}

/// Costs-only gradient synchronization for the at-scale harnesses: same
/// negotiation, fusion plan, cycle and allreduce schedule as
/// [`DistributedOptimizer::step`], but payloads are synthetic.
pub struct GradientSynchronizer {
    cfg: HorovodConfig,
    groups: Vec<FusionGroup>,
    n_tensors: usize,
    prof: Hvprof,
    cycle: u64,
    pack_bandwidth: f64,
}

impl GradientSynchronizer {
    /// Plan fusion for a gradient set described by `tensors`.
    pub fn new(cfg: HorovodConfig, tensors: &[TensorSpec]) -> Self {
        let groups = plan_fusion(tensors, cfg.fusion_threshold);
        GradientSynchronizer {
            cfg,
            groups,
            n_tensors: tensors.len(),
            prof: Hvprof::new(),
            cycle: 0,
            pack_bandwidth: 700.0e9,
        }
    }

    /// The fusion plan.
    pub fn groups(&self) -> &[FusionGroup] {
        &self.groups
    }

    /// Accumulated profile.
    pub fn profiler(&self) -> &Hvprof {
        &self.prof
    }

    /// Synchronize one step's gradients (costs only).
    pub fn synchronize(&mut self, comm: &mut Comm) {
        if comm.size() <= 1 {
            return;
        }
        self.cycle += 1;
        comm.advance(self.cfg.cycle_time);
        negotiate(comm, self.n_tensors, self.cycle);
        let algo = comm.config().allreduce;
        for (gi, group) in self.groups.iter().enumerate() {
            record_group_counters(group, self.cfg.fusion_threshold);
            let t_pack = comm.now();
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("pack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_pack,
                comm.now(),
            );
            let buf_id = FUSION_BUF_ID_BASE + gi as u64;
            let t0 = comm.now();
            match self.cfg.backend {
                Backend::Mpi => {
                    // Same wire selection as the real optimizer; the
                    // configured default algorithm is kept (the at-scale
                    // harnesses sweep algorithms through `MpiConfig`).
                    let wf = comm.config().tuning.select_wire(group.bytes);
                    synthetic::allreduce_elems_wire(comm, group.elems, buf_id, algo, wf);
                }
                Backend::Nccl => {
                    comm.set_path_policy(PathPolicy::NcclLike);
                    synthetic::allreduce_elems(comm, group.elems, buf_id, AllreduceAlgorithm::Ring);
                    comm.set_path_policy(PathPolicy::Mpi);
                }
            }
            self.prof
                .record(Collective::Allreduce, group.bytes, comm.now() - t0);
            dlsr_trace::record_span(
                || format!("allreduce[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::ALLREDUCE,
                t0,
                comm.now(),
            );
            let t_unpack = comm.now();
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("unpack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_unpack,
                comm.now(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_mpi::{MpiConfig, MpiWorld};
    use dlsr_net::ClusterTopology;
    use dlsr_nn::layers::Conv2d;
    use dlsr_nn::optim::Sgd;

    fn make_model(seed: u64) -> Conv2d {
        Conv2d::new("c", 2, 4, 3, dlsr_tensor::conv::Conv2dParams::same(3), seed)
    }

    #[test]
    fn broadcast_parameters_makes_all_ranks_identical() {
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut model = make_model(c.rank() as u64 + 1); // all different
            let mut prof = Hvprof::new();
            broadcast_parameters(&mut model, c, 0, &mut prof);
            model.flatten_params()
        });
        for r in 1..4 {
            assert_eq!(res.ranks[r], res.ranks[0], "rank {r} differs after bcast");
        }
    }

    #[test]
    fn distributed_gradients_equal_the_global_average() {
        // Each rank accumulates a rank-dependent gradient; after step() the
        // *parameter update* must reflect the average across ranks.
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut model = make_model(1); // identical params
                                           // install rank-dependent gradients: grad = rank + 1 everywhere
            let g = (c.rank() + 1) as f32;
            model.visit_params(&mut |p| {
                let shape = p.value.shape().clone();
                p.accumulate_grad(&dlsr_tensor::Tensor::full(shape, g));
            });
            // lr chosen so update = avg(grad) exactly; world scaling undone
            let mut opt = DistributedOptimizer::new(
                Sgd::new(1.0 / 4.0),
                &mut model,
                HorovodConfig::default(),
                4,
            );
            // DistributedOptimizer scaled lr to 1.0; avg grad = (1+2+3+4)/4 = 2.5
            opt.step(&mut model, c);
            model.flatten_params()
        });
        let mut reference = make_model(1);
        let before = reference.flatten_params();
        for r in 0..4 {
            for (i, (&after, &b)) in res.ranks[r].iter().zip(before.iter()).enumerate() {
                let delta = b - after;
                assert!(
                    (delta - 2.5).abs() < 1e-4,
                    "rank {r} param {i}: update {delta} != 2.5"
                );
            }
        }
    }

    #[test]
    fn lr_is_scaled_by_world_size() {
        let mut model = make_model(1);
        let opt =
            DistributedOptimizer::new(Sgd::new(0.01), &mut model, HorovodConfig::default(), 8);
        assert!((opt.inner().lr() - 0.08).abs() < 1e-7);
    }

    #[test]
    fn fusion_plan_covers_all_parameters() {
        let mut model = make_model(1);
        let opt = DistributedOptimizer::new(
            Sgd::new(0.01),
            &mut model,
            HorovodConfig::builder().fusion_threshold(64).build(),
            1,
        );
        let total: usize = opt.fusion_groups().iter().map(|g| g.elems).sum();
        assert_eq!(total, model.num_params());
        assert!(opt.fusion_groups().len() > 1, "tiny threshold must split");
    }

    #[test]
    fn profiler_records_allreduce_per_group() {
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut model = make_model(1);
            let mut opt =
                DistributedOptimizer::new(Sgd::new(0.01), &mut model, HorovodConfig::default(), 4);
            let g = dlsr_tensor::Tensor::full([4, 2, 3, 3], 1.0);
            model.visit_params(&mut |p| {
                if p.value.shape().rank() == 4 {
                    p.accumulate_grad(&g.clone());
                }
            });
            opt.step(&mut model, c);
            opt.profiler().total_seconds(Collective::Allreduce)
        });
        assert!(res.ranks.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn overlapped_step_is_bitwise_identical_to_sequential() {
        use dlsr_nn::module::Sequential;
        use dlsr_tensor::init;
        // Small threshold → two fusion groups from a two-conv model,
        // so the double-buffered launch path is actually exercised.
        let cfg = HorovodConfig::builder()
            .fusion_threshold(256)
            .cycle_time(1e-4)
            .build();
        let build = || {
            let p = dlsr_tensor::conv::Conv2dParams::same(3);
            Sequential::new()
                .push(Conv2d::new("a", 2, 3, 3, p, 7))
                .push(Conv2d::new("b", 3, 2, 3, p, 8))
        };
        for topo in [
            ClusterTopology {
                name: "w1".into(),
                nodes: 1,
                gpus_per_node: 1,
            },
            ClusterTopology {
                name: "w2".into(),
                nodes: 1,
                gpus_per_node: 2,
            },
            ClusterTopology::lassen(1), // 4 ranks
        ] {
            let world = topo.total_gpus();
            let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
                // rank-dependent data → rank-dependent local gradients
                let x = init::uniform([1, 2, 6, 6], -1.0, 1.0, 100 + c.rank() as u64);
                // sequential reference: backward, then step
                let mut m1 = build();
                let y = m1.forward(&x).unwrap();
                let gy = dlsr_tensor::Tensor::ones(y.shape().clone());
                let mut o1 = DistributedOptimizer::new(Sgd::new(0.05), &mut m1, cfg, c.size());
                let g1 = m1.backward(&gy).unwrap();
                o1.step(&mut m1, c);
                // overlapped: hooks launch groups mid-backward
                let mut m2 = build();
                m2.forward(&x).unwrap();
                let mut o2 = DistributedOptimizer::new(Sgd::new(0.05), &mut m2, cfg, c.size());
                let g2 = o2.backward_and_step(&mut m2, &gy, c, 2e-3).unwrap();
                assert!(o2.fusion_groups().len() > 1, "want multiple groups");
                // readiness was measured for every tensor, monotonically
                let meas = o2.measured_readiness();
                assert_eq!(meas.len(), o2.tensors().len());
                assert!(meas.windows(2).all(|w| w[0] <= w[1]));
                let rec = o2.readiness_reconciliation().unwrap();
                assert!(rec.measured_monotone);
                (
                    m1.flatten_params(),
                    m2.flatten_params(),
                    g1.data().to_vec(),
                    g2.data().to_vec(),
                )
            });
            for r in 0..world {
                let (seq, ovl, g1, g2) = &res.ranks[r];
                assert_eq!(seq, ovl, "world {world} rank {r}: params diverged");
                assert_eq!(g1, g2, "world {world} rank {r}: input grads diverged");
            }
        }
    }

    #[test]
    fn overlap_hides_communication_inside_backward() {
        use dlsr_nn::module::Sequential;
        use dlsr_tensor::init;
        let cfg = HorovodConfig::builder()
            .fusion_threshold(256)
            .cycle_time(1e-4)
            .build();
        let build = || {
            let p = dlsr_tensor::conv::Conv2dParams::same(3);
            Sequential::new()
                .push(Conv2d::new("a", 2, 3, 3, p, 7))
                .push(Conv2d::new("b", 3, 2, 3, p, 8))
        };
        let bwd = 50e-3; // long backward: every group but the last hides
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
            let x = init::uniform([1, 2, 6, 6], -1.0, 1.0, 3);
            let gy_of = |m: &mut Sequential, x: &dlsr_tensor::Tensor| {
                let y = m.forward(x).unwrap();
                dlsr_tensor::Tensor::ones(y.shape().clone())
            };
            // sequential: backward compute, then comm strictly after
            let mut m1 = build();
            let gy = gy_of(&mut m1, &x);
            let mut o1 = DistributedOptimizer::new(Sgd::new(0.05), &mut m1, cfg, c.size());
            let t0 = c.now();
            m1.backward(&gy).unwrap();
            c.advance(bwd);
            o1.step(&mut m1, c);
            let seq_elapsed = c.now() - t0;
            // overlapped: launches ride inside the backward window
            let mut m2 = build();
            let gy = gy_of(&mut m2, &x);
            let mut o2 = DistributedOptimizer::new(Sgd::new(0.05), &mut m2, cfg, c.size());
            let t1 = c.now();
            o2.backward_and_step(&mut m2, &gy, c, bwd).unwrap();
            let ovl_elapsed = c.now() - t1;
            (seq_elapsed, ovl_elapsed)
        });
        for (r, &(seq, ovl)) in res.ranks.iter().enumerate() {
            assert!(
                ovl < seq,
                "rank {r}: overlapped step {ovl}s not faster than sequential {seq}s"
            );
        }
    }

    #[test]
    fn comm_tuner_explores_then_freezes_and_ranks_stay_in_sync() {
        // 16 steps > two steps (settle + measure) per candidate, so the
        // tuner must freeze; the per-step agreement allreduce keeps every
        // rank on the same knob set, so parameters stay bitwise identical
        // throughout.
        let topo = ClusterTopology::lassen(1); // 4 ranks
        let cfg = HorovodConfig::builder().tune_comm(true).build();
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
            let mut model = make_model(1);
            let mut opt = DistributedOptimizer::new(Sgd::new(0.01), &mut model, cfg, c.size());
            for s in 0..16u32 {
                let g = (c.rank() as u32 + 1 + s) as f32;
                model.visit_params(&mut |p| {
                    let shape = p.value.shape().clone();
                    p.accumulate_grad(&dlsr_tensor::Tensor::full(shape, g));
                });
                opt.step(&mut model, c);
            }
            (model.flatten_params(), opt.comm_tune_decision())
        });
        let (params0, decision0) = &res.ranks[0];
        assert!(decision0.is_some(), "tuner never froze in 16 steps");
        for (r, (params, decision)) in res.ranks.iter().enumerate() {
            assert_eq!(params, params0, "rank {r} params diverged under tuning");
            assert_eq!(decision, decision0, "rank {r} froze a different entry");
        }
    }

    #[test]
    fn untuned_config_never_creates_a_tuner() {
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut model = make_model(1);
            let mut opt =
                DistributedOptimizer::new(Sgd::new(0.01), &mut model, HorovodConfig::default(), 4);
            model.visit_params(&mut |p| {
                let shape = p.value.shape().clone();
                p.accumulate_grad(&dlsr_tensor::Tensor::full(shape, 1.0));
            });
            opt.step(&mut model, c);
            opt.comm_tune_decision().is_none() && opt.tuner.is_none()
        });
        assert!(res.ranks.iter().all(|&ok| ok));
    }

    #[test]
    fn topk_wire_applies_error_feedback_and_keeps_ranks_identical() {
        // A top-k wire drops gradient mass into the per-rank residual;
        // ranks still agree bitwise because the reduced values are, and
        // training still moves the parameters.
        let topo = ClusterTopology::lassen(1);
        let mcfg = MpiConfig::mpi_opt()
            .to_builder()
            .wire(WireFormat::TopK { k_permille: 200 })
            .wire_threshold(0)
            .build();
        let res = MpiWorld::run(&topo, mcfg, |c| {
            let mut model = make_model(1);
            let mut opt =
                DistributedOptimizer::new(Sgd::new(0.05), &mut model, HorovodConfig::default(), 4);
            for s in 0..3u32 {
                // element- and rank-dependent gradients so the top-k
                // selection genuinely drops values
                model.visit_params(&mut |p| {
                    let shape = p.value.shape().clone();
                    let n = p.numel();
                    let data: Vec<f32> = (0..n)
                        .map(|i| ((i as u32 * (c.rank() as u32 + 1) + s) % 7) as f32 - 3.0)
                        .collect();
                    p.accumulate_grad(&dlsr_tensor::Tensor::from_vec(shape, data).unwrap());
                });
                opt.step(&mut model, c);
            }
            let dropped = opt.residual.iter().filter(|&&r| r != 0.0).count();
            (model.flatten_params(), dropped)
        });
        let before = make_model(1).flatten_params();
        let (params0, dropped0) = &res.ranks[0];
        assert_ne!(params0, &before, "top-k steps must still train");
        assert!(*dropped0 > 0, "k=200‰ left no residual — EF path not hit");
        for (r, (params, _)) in res.ranks.iter().enumerate() {
            assert_eq!(params, params0, "rank {r} params diverged under top-k");
        }
    }

    #[test]
    fn synthetic_synchronizer_matches_real_optimizer_timing_shape() {
        // Same model size, same config → same fusion plan and comparable
        // allreduce time (the real path adds only pack-time differences).
        let tensors = vec![
            TensorSpec {
                name: "a".into(),
                elems: 100_000,
            },
            TensorSpec {
                name: "b".into(),
                elems: 200_000,
            },
        ];
        let topo = ClusterTopology::lassen(1);
        let t_synth = MpiWorld::run(&topo, MpiConfig::mpi_opt(), {
            let tensors = tensors.clone();
            move |c| {
                let mut sync = GradientSynchronizer::new(HorovodConfig::default(), &tensors);
                sync.synchronize(c);
                c.now()
            }
        })
        .makespan();
        assert!(t_synth > 0.0);
    }
}
