//! The `DistributedOptimizer` wrapper and parameter broadcast — the two
//! code changes that "Horovod-ize" a single-GPU model (§III-A).

use dlsr_hvprof::{Collective, Hvprof};
use dlsr_mpi::collectives::{allreduce, bcast, synthetic, AllreduceAlgorithm};
use dlsr_mpi::{Comm, PathPolicy};
use dlsr_nccl::Nccl;
use dlsr_nn::module::{Module, ModuleExt};
use dlsr_nn::optim::Optimizer;

use crate::config::{Backend, HorovodConfig};
use crate::coordinator::negotiate;
use crate::fusion::{plan_fusion, FusionGroup, TensorSpec};

/// Stable buffer-id namespace for the persistent fusion buffers (reused
/// every step → registration-cache hits, the §III-D effect).
const FUSION_BUF_ID_BASE: u64 = 0x4655_5300; // "FUS"

/// Fusion-buffer counters for the step report: group count, bytes actually
/// packed, and the capacity each group occupies (a group can exceed the
/// threshold when a single tensor is larger than it, so capacity is the
/// max of the two — utilization stays ≤ 100%).
fn record_group_counters(group: &FusionGroup, fusion_threshold: u64) {
    use dlsr_trace::report::keys;
    dlsr_trace::counter_add(keys::FUSION_GROUPS, 1.0);
    dlsr_trace::counter_add(keys::FUSION_PACKED_BYTES, group.bytes as f64);
    dlsr_trace::counter_add(
        keys::FUSION_CAPACITY_BYTES,
        group.bytes.max(fusion_threshold) as f64,
    );
}

/// Broadcast model parameters from `root` so all ranks start identical
/// (§III-A guideline 2). Records the bcast in `prof`.
pub fn broadcast_parameters(
    model: &mut dyn Module,
    comm: &mut Comm,
    root: usize,
    prof: &mut Hvprof,
) {
    let mut flat = model.flatten_params();
    let t0 = comm.now();
    bcast(comm, &mut flat, root, FUSION_BUF_ID_BASE - 1);
    prof.record(Collective::Bcast, (flat.len() * 4) as u64, comm.now() - t0);
    model.load_flat_params(&flat);
}

/// Horovod's distributed optimizer: wraps a local optimizer, averaging
/// gradients across ranks (tensor-fusion allreduce) before every step.
pub struct DistributedOptimizer<O: Optimizer> {
    inner: O,
    cfg: HorovodConfig,
    tensors: Vec<TensorSpec>,
    groups: Vec<FusionGroup>,
    prof: Hvprof,
    cycle: u64,
    /// d2d pack/unpack bandwidth (fusion-buffer copies), bytes/s.
    pack_bandwidth: f64,
}

impl<O: Optimizer> DistributedOptimizer<O> {
    /// Wrap `inner`, planning fusion for `model`'s parameter set.
    ///
    /// Also applies the learning-rate scaling of §III-A guideline 4:
    /// `lr ← lr · world_size` to counteract the effectively larger global
    /// batch.
    pub fn new(mut inner: O, model: &mut dyn Module, cfg: HorovodConfig, world: usize) -> Self {
        // Gradients become ready in reverse layer order during backward;
        // Horovod fuses them in readiness order.
        let mut tensors: Vec<TensorSpec> = Vec::new();
        model.visit_params(&mut |p| {
            tensors.push(TensorSpec {
                name: p.name.clone(),
                elems: p.numel(),
            })
        });
        tensors.reverse();
        let groups = plan_fusion(&tensors, cfg.fusion_threshold);
        inner.set_lr(inner.lr() * world as f32);
        DistributedOptimizer {
            inner,
            cfg,
            tensors,
            groups,
            prof: Hvprof::new(),
            cycle: 0,
            pack_bandwidth: 700.0e9,
        }
    }

    /// The planned fusion groups.
    pub fn fusion_groups(&self) -> &[FusionGroup] {
        &self.groups
    }

    /// The tensor list in reduction order.
    pub fn tensors(&self) -> &[TensorSpec] {
        &self.tensors
    }

    /// The accumulated communication profile.
    pub fn profiler(&self) -> &Hvprof {
        &self.prof
    }

    /// The wrapped optimizer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Set the wrapped optimizer's learning rate directly (LR schedules
    /// drive the already-world-scaled rate through this).
    pub fn set_inner_lr(&mut self, lr: f32) {
        self.inner.set_lr(lr);
    }

    /// One distributed training step: negotiate, fuse, allreduce, average,
    /// then apply the wrapped optimizer. Call after `model.backward(...)`.
    pub fn step(&mut self, model: &mut dyn Module, comm: &mut Comm) {
        if comm.size() > 1 {
            self.cycle += 1;
            // Coordinator cycle: cost of waiting for the tick + negotiation.
            comm.advance(self.cfg.cycle_time);
            negotiate(comm, self.tensors.len(), self.cycle);
            self.allreduce_gradients(model, comm);
        }
        self.inner.step(model);
    }

    /// Fuse + allreduce + average the gradients of `model` in place.
    fn allreduce_gradients(&mut self, model: &mut dyn Module, comm: &mut Comm) {
        let world = comm.size() as f32;
        // flatten in visit order, then address per-tensor slices through
        // the reversed order used by the fusion plan
        let mut flat = model.flatten_grads();
        // visit order offsets
        let mut offsets = Vec::with_capacity(self.tensors.len());
        {
            let mut off = 0usize;
            let mut sizes: Vec<usize> = Vec::new();
            model.visit_params(&mut |p| sizes.push(p.numel()));
            for s in &sizes {
                offsets.push(off);
                off += s;
            }
            // reversed to match self.tensors order
            offsets.reverse();
            let _ = off;
        }
        for (gi, group) in self.groups.iter().enumerate() {
            record_group_counters(group, self.cfg.fusion_threshold);
            // pack
            let t_pack = comm.now();
            let mut fused = Vec::with_capacity(group.elems);
            for &ti in &group.indices {
                let off = offsets[ti];
                let n = self.tensors[ti].elems;
                fused.extend_from_slice(&flat[off..off + n]);
            }
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("pack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_pack,
                comm.now(),
            );
            // reduce
            let buf_id = FUSION_BUF_ID_BASE + gi as u64;
            let t0 = comm.now();
            match self.cfg.backend {
                Backend::Mpi => allreduce(comm, &mut fused, buf_id),
                Backend::Nccl => Nccl::all_reduce(comm, &mut fused, buf_id),
            }
            self.prof
                .record(Collective::Allreduce, group.bytes, comm.now() - t0);
            dlsr_trace::record_span(
                || format!("allreduce[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::ALLREDUCE,
                t0,
                comm.now(),
            );
            // average + unpack
            let t_unpack = comm.now();
            let mut cursor = 0usize;
            for &ti in &group.indices {
                let off = offsets[ti];
                let n = self.tensors[ti].elems;
                for (dst, src) in flat[off..off + n]
                    .iter_mut()
                    .zip(&fused[cursor..cursor + n])
                {
                    *dst = *src / world;
                }
                cursor += n;
            }
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("unpack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_unpack,
                comm.now(),
            );
        }
        model.load_flat_grads(&flat);
    }
}

/// Costs-only gradient synchronization for the at-scale harnesses: same
/// negotiation, fusion plan, cycle and allreduce schedule as
/// [`DistributedOptimizer::step`], but payloads are synthetic.
pub struct GradientSynchronizer {
    cfg: HorovodConfig,
    groups: Vec<FusionGroup>,
    n_tensors: usize,
    prof: Hvprof,
    cycle: u64,
    pack_bandwidth: f64,
}

impl GradientSynchronizer {
    /// Plan fusion for a gradient set described by `tensors`.
    pub fn new(cfg: HorovodConfig, tensors: &[TensorSpec]) -> Self {
        let groups = plan_fusion(tensors, cfg.fusion_threshold);
        GradientSynchronizer {
            cfg,
            groups,
            n_tensors: tensors.len(),
            prof: Hvprof::new(),
            cycle: 0,
            pack_bandwidth: 700.0e9,
        }
    }

    /// The fusion plan.
    pub fn groups(&self) -> &[FusionGroup] {
        &self.groups
    }

    /// Accumulated profile.
    pub fn profiler(&self) -> &Hvprof {
        &self.prof
    }

    /// Synchronize one step's gradients (costs only).
    pub fn synchronize(&mut self, comm: &mut Comm) {
        if comm.size() <= 1 {
            return;
        }
        self.cycle += 1;
        comm.advance(self.cfg.cycle_time);
        negotiate(comm, self.n_tensors, self.cycle);
        let algo = comm.config().allreduce;
        for (gi, group) in self.groups.iter().enumerate() {
            record_group_counters(group, self.cfg.fusion_threshold);
            let t_pack = comm.now();
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("pack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_pack,
                comm.now(),
            );
            let buf_id = FUSION_BUF_ID_BASE + gi as u64;
            let t0 = comm.now();
            match self.cfg.backend {
                Backend::Mpi => synthetic::allreduce_elems(comm, group.elems, buf_id, algo),
                Backend::Nccl => {
                    comm.set_path_policy(PathPolicy::NcclLike);
                    synthetic::allreduce_elems(comm, group.elems, buf_id, AllreduceAlgorithm::Ring);
                    comm.set_path_policy(PathPolicy::Mpi);
                }
            }
            self.prof
                .record(Collective::Allreduce, group.bytes, comm.now() - t0);
            dlsr_trace::record_span(
                || format!("allreduce[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::ALLREDUCE,
                t0,
                comm.now(),
            );
            let t_unpack = comm.now();
            comm.advance(group.bytes as f64 / self.pack_bandwidth);
            dlsr_trace::record_span(
                || format!("unpack[g{gi}] {}B", group.bytes),
                dlsr_trace::cat::FUSION,
                t_unpack,
                comm.now(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_mpi::{MpiConfig, MpiWorld};
    use dlsr_net::ClusterTopology;
    use dlsr_nn::layers::Conv2d;
    use dlsr_nn::optim::Sgd;

    fn make_model(seed: u64) -> Conv2d {
        Conv2d::new("c", 2, 4, 3, dlsr_tensor::conv::Conv2dParams::same(3), seed)
    }

    #[test]
    fn broadcast_parameters_makes_all_ranks_identical() {
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut model = make_model(c.rank() as u64 + 1); // all different
            let mut prof = Hvprof::new();
            broadcast_parameters(&mut model, c, 0, &mut prof);
            model.flatten_params()
        });
        for r in 1..4 {
            assert_eq!(res.ranks[r], res.ranks[0], "rank {r} differs after bcast");
        }
    }

    #[test]
    fn distributed_gradients_equal_the_global_average() {
        // Each rank accumulates a rank-dependent gradient; after step() the
        // *parameter update* must reflect the average across ranks.
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut model = make_model(1); // identical params
                                           // install rank-dependent gradients: grad = rank + 1 everywhere
            let g = (c.rank() + 1) as f32;
            model.visit_params(&mut |p| {
                let shape = p.value.shape().clone();
                p.accumulate_grad(&dlsr_tensor::Tensor::full(shape, g));
            });
            // lr chosen so update = avg(grad) exactly; world scaling undone
            let mut opt = DistributedOptimizer::new(
                Sgd::new(1.0 / 4.0),
                &mut model,
                HorovodConfig::default(),
                4,
            );
            // DistributedOptimizer scaled lr to 1.0; avg grad = (1+2+3+4)/4 = 2.5
            opt.step(&mut model, c);
            model.flatten_params()
        });
        let mut reference = make_model(1);
        let before = reference.flatten_params();
        for r in 0..4 {
            for (i, (&after, &b)) in res.ranks[r].iter().zip(before.iter()).enumerate() {
                let delta = b - after;
                assert!(
                    (delta - 2.5).abs() < 1e-4,
                    "rank {r} param {i}: update {delta} != 2.5"
                );
            }
        }
    }

    #[test]
    fn lr_is_scaled_by_world_size() {
        let mut model = make_model(1);
        let opt =
            DistributedOptimizer::new(Sgd::new(0.01), &mut model, HorovodConfig::default(), 8);
        assert!((opt.inner().lr() - 0.08).abs() < 1e-7);
    }

    #[test]
    fn fusion_plan_covers_all_parameters() {
        let mut model = make_model(1);
        let opt = DistributedOptimizer::new(
            Sgd::new(0.01),
            &mut model,
            HorovodConfig {
                fusion_threshold: 64,
                ..Default::default()
            },
            1,
        );
        let total: usize = opt.fusion_groups().iter().map(|g| g.elems).sum();
        assert_eq!(total, model.num_params());
        assert!(opt.fusion_groups().len() > 1, "tiny threshold must split");
    }

    #[test]
    fn profiler_records_allreduce_per_group() {
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut model = make_model(1);
            let mut opt =
                DistributedOptimizer::new(Sgd::new(0.01), &mut model, HorovodConfig::default(), 4);
            let g = dlsr_tensor::Tensor::full([4, 2, 3, 3], 1.0);
            model.visit_params(&mut |p| {
                if p.value.shape().rank() == 4 {
                    p.accumulate_grad(&g.clone());
                }
            });
            opt.step(&mut model, c);
            opt.profiler().total_seconds(Collective::Allreduce)
        });
        assert!(res.ranks.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn synthetic_synchronizer_matches_real_optimizer_timing_shape() {
        // Same model size, same config → same fusion plan and comparable
        // allreduce time (the real path adds only pack-time differences).
        let tensors = vec![
            TensorSpec {
                name: "a".into(),
                elems: 100_000,
            },
            TensorSpec {
                name: "b".into(),
                elems: 200_000,
            },
        ];
        let topo = ClusterTopology::lassen(1);
        let t_synth = MpiWorld::run(&topo, MpiConfig::mpi_opt(), {
            let tensors = tensors.clone();
            move |c| {
                let mut sync = GradientSynchronizer::new(HorovodConfig::default(), &tensors);
                sync.synchronize(c);
                c.now()
            }
        })
        .makespan();
        assert!(t_synth > 0.0);
    }
}
