//! Online communication autotuning: a deterministic coordinate-descent
//! tuner over the Horovod/MPI knobs that dominate exposed communication
//! time, plus the persistent comm-tune cache.
//!
//! The paper tunes `HOROVOD_FUSION_THRESHOLD` and `HOROVOD_CYCLE_TIME` "at
//! each scale" by hand (§II-D); this module automates that sweep *inside*
//! the simulated run. The tuner gives each candidate knob set two
//! consecutive training steps — a *settle* step whose duration is
//! discarded, then a *measure* step that scores the candidate — and, once
//! every candidate has been measured, freezes on the argmin for the rest
//! of the run. The settle step matters: switching knobs re-plans the
//! fusion groups and faults fresh buffers through the registration cache,
//! and those one-shot transition costs would otherwise be billed to the
//! candidate (most unfairly to candidate 0, whose "transition" is the
//! run's own start-up), letting a steady-state-worse knob set win.
//!
//! # Determinism
//!
//! Everything the tuner does is a pure function of agreed values:
//!
//! - the candidate list is derived from the base config alone,
//! - the per-step measurement is the *virtual* step duration, agreed
//!   across ranks with a 1-element Max-allreduce (so no rank can act on a
//!   locally divergent clock), and the virtual clock itself is
//!   deterministic for a given seed and config,
//! - ties in the argmin break toward the lowest candidate index.
//!
//! The cache file (`DLSR_COMM_TUNE=<path>`) short-circuits exploration:
//! a cached `(world, grad_bytes)` key freezes the tuner at step 0, so
//! *same binary + same comm-tune cache + same seed ⇒ same digest* — the
//! same contract the GEMM tune cache (`dlsr-tensor::tune`) provides, and
//! the contract `cluster/tests/comm_tune_determinism.rs` enforces across
//! simulator cores and thread counts. `cycle_time` is carried as integer
//! nanoseconds so the file round-trips bitwise.

use std::collections::BTreeMap;
use std::io::Write as _;

use parking_lot::Mutex;

/// One knob set the tuner can run a step with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommTuneEntry {
    /// Fusion buffer capacity in bytes (`HOROVOD_FUSION_THRESHOLD`).
    pub fusion_threshold: u64,
    /// Coordinator cycle period in integer nanoseconds
    /// (`HOROVOD_CYCLE_TIME`; integer so the cache file round-trips
    /// bitwise).
    pub cycle_time_ns: u64,
    /// Recursive-doubling upper size bin, bytes (see `CommTuning`).
    pub rd_threshold: u64,
    /// Pipelined-ring lower size bin, bytes (see `CommTuning`).
    pub pipeline_threshold: u64,
}

impl CommTuneEntry {
    /// The cycle period in seconds.
    pub fn cycle_time(&self) -> f64 {
        self.cycle_time_ns as f64 * 1e-9
    }

    /// Render as one cache-line body (without the key).
    fn render(&self) -> String {
        format!(
            "{} {} {} {}",
            self.fusion_threshold, self.cycle_time_ns, self.rd_threshold, self.pipeline_threshold
        )
    }

    /// Clamp a (possibly file-sourced) entry to knobs the builders would
    /// accept: positive fusion and cycle, and `rd < pipeline`. The fusion
    /// floor is deliberately low (1 KiB): the candidate sweep starts from
    /// the *configured* base, and clamping it away would leave the tuner
    /// unable to even reproduce the untuned baseline.
    fn sanitized(mut self) -> CommTuneEntry {
        self.fusion_threshold = self.fusion_threshold.max(1 << 10);
        self.cycle_time_ns = self.cycle_time_ns.max(1_000); // ≥ 1 µs
        self.pipeline_threshold = self.pipeline_threshold.max(1 << 17);
        self.rd_threshold = self.rd_threshold.clamp(1, self.pipeline_threshold / 2);
        self
    }
}

/// The deterministic candidate sweep around `base`: the base itself, then
/// one move per knob axis (coordinate descent, single round). Clamping can
/// make moves collide; duplicates are dropped so every measured step is
/// informative.
pub fn candidates(base: CommTuneEntry) -> Vec<CommTuneEntry> {
    let base = base.sanitized();
    let moves = [
        base,
        CommTuneEntry {
            fusion_threshold: base.fusion_threshold / 4,
            ..base
        },
        CommTuneEntry {
            fusion_threshold: base.fusion_threshold.saturating_mul(4),
            ..base
        },
        CommTuneEntry {
            cycle_time_ns: base.cycle_time_ns / 2,
            ..base
        },
        CommTuneEntry {
            cycle_time_ns: base.cycle_time_ns / 8,
            ..base
        },
        CommTuneEntry {
            rd_threshold: base.rd_threshold.saturating_mul(4),
            ..base
        },
        CommTuneEntry {
            pipeline_threshold: base.pipeline_threshold / 2,
            ..base
        },
        // Deep pipeline move: pulls MB-scale fused groups into the
        // chunked-ring bin, where every hop is wire-compressed — the
        // decisive knob when the defaults mis-bin a workload's dominant
        // message size.
        CommTuneEntry {
            pipeline_threshold: base.pipeline_threshold / 8,
            ..base
        },
    ];
    let mut out: Vec<CommTuneEntry> = Vec::with_capacity(moves.len());
    for m in moves {
        let m = m.sanitized();
        if !out.contains(&m) {
            out.push(m);
        }
    }
    out
}

/// Per-run tuner state: explore each candidate for two steps (settle +
/// measure), then freeze on the argmin over the measure steps.
/// Construction consults the comm-tune cache; a hit freezes immediately
/// (no exploration steps, digest-stable from step 0).
#[derive(Debug)]
pub struct CommTuner {
    key: (usize, u64),
    candidates: Vec<CommTuneEntry>,
    /// Exploration steps observed so far; candidate `observed / 2` runs
    /// the next step, and only odd-numbered observations (each
    /// candidate's second step) count as measurements.
    observed: usize,
    measured: Vec<f64>,
    frozen: Option<CommTuneEntry>,
}

impl CommTuner {
    /// Tuner for a `world`-rank run reducing `grad_bytes` of gradients per
    /// step, starting from the `base` knob set.
    pub fn new(world: usize, grad_bytes: u64, base: CommTuneEntry) -> Self {
        let key = (world, grad_bytes);
        let frozen = lookup(world, grad_bytes);
        CommTuner {
            key,
            candidates: if frozen.is_some() {
                Vec::new()
            } else {
                candidates(base)
            },
            observed: 0,
            measured: Vec::new(),
            frozen,
        }
    }

    /// The knob set to run the *next* step with.
    pub fn current(&self) -> CommTuneEntry {
        if let Some(e) = self.frozen {
            return e;
        }
        self.candidates[(self.observed / 2).min(self.candidates.len() - 1)]
    }

    /// Whether the tuner still has unmeasured candidates (an exploring
    /// step must end with an agreement allreduce feeding
    /// [`CommTuner::observe`]).
    pub fn exploring(&self) -> bool {
        self.frozen.is_none() && self.observed < 2 * self.candidates.len()
    }

    /// The frozen decision, once exploration is over.
    pub fn frozen(&self) -> Option<CommTuneEntry> {
        self.frozen
    }

    /// Record the *agreed* duration of the step that ran
    /// [`CommTuner::current`]. Each candidate's first (settle) step is
    /// discarded — it carries the re-plan and registration-cache costs of
    /// switching knobs — and its second step is the measurement. Once
    /// every candidate is measured the tuner freezes on the argmin (ties
    /// → lowest index); `is_root` (rank 0) persists the decision to the
    /// comm-tune cache.
    pub fn observe(&mut self, agreed_step_seconds: f64, is_root: bool) {
        if self.frozen.is_some() {
            return;
        }
        let is_measure_step = self.observed % 2 == 1;
        self.observed += 1;
        if !is_measure_step {
            return;
        }
        self.measured.push(agreed_step_seconds);
        if self.measured.len() < self.candidates.len() {
            return;
        }
        let mut best = 0usize;
        for (i, &d) in self.measured.iter().enumerate() {
            if d < self.measured[best] {
                best = i;
            }
        }
        let e = self.candidates[best];
        self.frozen = Some(e);
        if is_root {
            install(self.key.0, self.key.1, e);
            let st = state().lock();
            if let Some(path) = st.persist_to.clone() {
                drop(st);
                append_entry(&path, self.key, &e);
            }
        }
    }
}

struct TuneState {
    table: BTreeMap<(usize, u64), CommTuneEntry>,
    /// Cache-file path from `DLSR_COMM_TUNE`, if set.
    persist_to: Option<std::path::PathBuf>,
}

fn parse_line(line: &str) -> Option<((usize, u64), CommTuneEntry)> {
    let mut it = line.split_whitespace();
    let world: usize = it.next()?.parse().ok()?;
    let grad_bytes: u64 = it.next()?.parse().ok()?;
    let fusion_threshold: u64 = it.next()?.parse().ok()?;
    let cycle_time_ns: u64 = it.next()?.parse().ok()?;
    let rd_threshold: u64 = it.next()?.parse().ok()?;
    let pipeline_threshold: u64 = it.next()?.parse().ok()?;
    Some((
        (world, grad_bytes),
        CommTuneEntry {
            fusion_threshold,
            cycle_time_ns,
            rd_threshold,
            pipeline_threshold,
        }
        .sanitized(),
    ))
}

fn init_state() -> TuneState {
    let mut table = BTreeMap::new();
    let persist_to = std::env::var_os("DLSR_COMM_TUNE").map(std::path::PathBuf::from);
    if let Some(path) = &persist_to {
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((key, e)) = parse_line(line) {
                    table.insert(key, e);
                }
            }
        }
    }
    TuneState { table, persist_to }
}

fn state() -> &'static Mutex<TuneState> {
    static STATE: std::sync::OnceLock<Mutex<TuneState>> = std::sync::OnceLock::new();
    STATE.get_or_init(|| Mutex::new(init_state()))
}

/// The cached decision for a `(world, grad_bytes)` run shape, if any.
pub fn lookup(world: usize, grad_bytes: u64) -> Option<CommTuneEntry> {
    state().lock().table.get(&(world, grad_bytes)).copied()
}

/// Install a decision, overriding the file. Used by tests (pre-warming a
/// run without touching the environment) and by rank 0 on freeze.
pub fn install(world: usize, grad_bytes: u64, entry: CommTuneEntry) {
    state()
        .lock()
        .table
        .insert((world, grad_bytes), entry.sanitized());
}

/// Snapshot the current table (debugging, offline inspection).
pub fn entries() -> Vec<((usize, u64), CommTuneEntry)> {
    state().lock().table.iter().map(|(k, v)| (*k, *v)).collect()
}

/// Write the full table as a comm-tune cache file.
pub fn write_cache(path: &std::path::Path) -> std::io::Result<()> {
    let mut out = String::from(
        "# dlsr comm tune cache v1: world grad_bytes fusion_threshold \
         cycle_time_ns rd_threshold pipeline_threshold\n",
    );
    for ((world, grad_bytes), e) in entries() {
        out.push_str(&format!("{world} {grad_bytes} {}\n", e.render()));
    }
    std::fs::write(path, out)
}

fn append_entry(path: &std::path::Path, key: (usize, u64), e: &CommTuneEntry) {
    let mut opts = std::fs::OpenOptions::new();
    opts.create(true).append(true);
    if let Ok(mut f) = opts.open(path) {
        // Ignore I/O failures: the cache is an optimization, never a
        // correctness dependency.
        let _ = writeln!(f, "{} {} {}", key.0, key.1, e.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CommTuneEntry {
        CommTuneEntry {
            fusion_threshold: 64 << 20,
            cycle_time_ns: 3_500_000,
            rd_threshold: 128 << 10,
            pipeline_threshold: 8 << 20,
        }
    }

    #[test]
    fn candidates_start_at_base_and_deduplicate() {
        let c = candidates(base());
        assert_eq!(c[0], base());
        assert!(c.len() >= 5 && c.len() <= 8, "got {} candidates", c.len());
        for (i, a) in c.iter().enumerate() {
            for b in &c[i + 1..] {
                assert_ne!(a, b, "duplicate candidate survived");
            }
        }
    }

    #[test]
    fn candidates_always_satisfy_builder_invariants() {
        // Degenerate bases are clamped back into the region
        // MpiConfigBuilder::try_build accepts (rd < pipeline, all > 0).
        let degenerate = CommTuneEntry {
            fusion_threshold: 1,
            cycle_time_ns: 1,
            rd_threshold: 1 << 30,
            pipeline_threshold: 1 << 18,
        };
        for e in candidates(degenerate) {
            assert!(e.fusion_threshold > 0);
            assert!(e.cycle_time_ns >= 1_000);
            assert!(
                e.rd_threshold < e.pipeline_threshold,
                "rd {} !< pipeline {}",
                e.rd_threshold,
                e.pipeline_threshold
            );
        }
    }

    #[test]
    fn tuner_explores_every_candidate_then_freezes_on_argmin() {
        let mut t = CommTuner::new(8, 999_001, base());
        let n = candidates(base()).len();
        let mut seen = Vec::new();
        for i in 0..n {
            // Settle step: same candidate two steps in a row, and its
            // duration must NOT count — feed it an absurdly good time.
            assert!(t.exploring());
            let settling = t.current();
            t.observe(0.001, false);
            assert!(t.exploring());
            assert_eq!(t.current(), settling, "candidate changed mid-pair");
            seen.push(t.current());
            // Measure step: make candidate 2 the winner.
            t.observe(if i == 2 { 0.5 } else { 1.0 + i as f64 }, false);
        }
        assert!(!t.exploring());
        assert_eq!(t.frozen().unwrap(), seen[2]);
        assert_eq!(t.current(), seen[2]);
        // further observations are ignored
        t.observe(0.0, false);
        assert_eq!(t.frozen().unwrap(), seen[2]);
    }

    #[test]
    fn argmin_ties_break_toward_the_lowest_index() {
        let mut t = CommTuner::new(8, 999_002, base());
        let n = candidates(base()).len();
        let first = t.current();
        for _ in 0..2 * n {
            t.observe(1.0, false);
        }
        assert_eq!(t.frozen().unwrap(), first);
    }

    #[test]
    fn installed_entry_freezes_a_new_tuner_at_step_zero() {
        let e = CommTuneEntry {
            fusion_threshold: 4 << 20,
            cycle_time_ns: 500_000,
            rd_threshold: 64 << 10,
            pipeline_threshold: 4 << 20,
        };
        install(16, 999_003, e);
        let t = CommTuner::new(16, 999_003, base());
        assert!(!t.exploring());
        assert_eq!(t.frozen(), Some(e));
        assert_eq!(t.current(), e);
        assert_eq!(lookup(16, 999_003), Some(e));
    }

    #[test]
    fn root_observe_installs_the_frozen_decision() {
        let mut t = CommTuner::new(32, 999_004, base());
        let n = candidates(base()).len();
        for _ in 0..2 * n {
            t.observe(2.0, true);
        }
        assert_eq!(lookup(32, 999_004), t.frozen());
    }

    #[test]
    fn cache_line_round_trips() {
        let e = base();
        let line = format!("8 123456 {}", e.render());
        let (key, parsed) = parse_line(&line).expect("parse");
        assert_eq!(key, (8, 123456));
        assert_eq!(parsed, e);
        assert!(parse_line("garbage").is_none());
        assert!(parse_line("8 1 2 3 4").is_none(), "short line rejected");
    }

    #[test]
    fn sanitize_clamps_corrupt_entries() {
        let (_, e) = parse_line("4 100 0 0 9999999999 1").expect("parse");
        assert!(e.fusion_threshold > 0 && e.cycle_time_ns >= 1_000);
        assert!(e.rd_threshold < e.pipeline_threshold);
    }
}
