//! Tensor Fusion (§II-D steps 1–6): pack small gradient tensors into one
//! fusion buffer so a single large allreduce replaces many small ones.

use dlsr_attr as dlsr;

/// A gradient tensor awaiting reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorSpec {
    /// Hierarchical parameter name.
    pub name: String,
    /// Element count (f32).
    pub elems: usize,
}

impl TensorSpec {
    /// Payload bytes.
    pub fn bytes(&self) -> u64 {
        (self.elems * 4) as u64
    }
}

/// One fused reduction: a contiguous run of tensors packed together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// Indices into the tensor list, in packing order.
    pub indices: Vec<usize>,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total elements.
    pub elems: usize,
}

/// Greedily pack tensors (in readiness order) into groups of at most
/// `threshold` bytes (§II-D step 1: "select first few tensors that fit in
/// HOROVOD_FUSION_THRESHOLD bytes"). A tensor larger than the threshold
/// forms its own group — Horovod reduces oversize tensors unfused.
pub fn plan_fusion(tensors: &[TensorSpec], threshold: u64) -> Vec<FusionGroup> {
    let mut groups: Vec<FusionGroup> = Vec::new();
    let mut current = FusionGroup {
        indices: Vec::new(),
        bytes: 0,
        elems: 0,
    };
    for (i, t) in tensors.iter().enumerate() {
        let b = t.bytes();
        if !current.indices.is_empty() && current.bytes + b > threshold {
            groups.push(std::mem::replace(
                &mut current,
                FusionGroup {
                    indices: Vec::new(),
                    bytes: 0,
                    elems: 0,
                },
            ));
        }
        current.indices.push(i);
        current.bytes += b;
        current.elems += t.elems;
        if current.bytes >= threshold {
            groups.push(std::mem::replace(
                &mut current,
                FusionGroup {
                    indices: Vec::new(),
                    bytes: 0,
                    elems: 0,
                },
            ));
        }
    }
    if !current.indices.is_empty() {
        groups.push(current);
    }
    groups
}

/// A fusion group with its planned launch time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledGroup {
    /// The fused tensors.
    pub group: FusionGroup,
    /// Launch time as an offset from the start of the backward pass.
    pub launch_offset: f64,
}

/// Readiness offsets for a tensor list: tensor `i` becomes ready when the
/// backward pass has produced its gradient — approximated as the fraction
/// of backward compute proportional to cumulative element count (gradient
/// FLOPs scale with parameter volume for conv stacks).
#[dlsr::deterministic]
pub fn readiness_from_elems(tensors: &[TensorSpec], bwd_duration: f64) -> Vec<f64> {
    let total: usize = tensors.iter().map(|t| t.elems).sum();
    let mut cum = 0usize;
    tensors
        .iter()
        .map(|t| {
            cum += t.elems;
            if total == 0 {
                0.0
            } else {
                bwd_duration * cum as f64 / total as f64
            }
        })
        .collect()
}

/// How well the analytical readiness schedule ([`readiness_from_elems`])
/// tracks readiness *measured* on the real training path (wall-clock hook
/// timestamps from `backward_with_hook`). Both schedules are normalized to
/// fractions of their final value before comparison, so a uniform speed
/// difference between the model and the machine does not count as error —
/// only a different *shape* does.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadinessReconciliation {
    /// Analytic readiness, normalized to \[0, 1\] of its final value.
    pub analytic: Vec<f64>,
    /// Measured readiness, normalized to \[0, 1\] of its final value.
    pub measured: Vec<f64>,
    /// Largest per-tensor deviation between the two normalized schedules.
    pub max_abs_dev: f64,
    /// Mean per-tensor deviation.
    pub mean_abs_dev: f64,
    /// Whether the measured schedule is non-decreasing (it must be — hooks
    /// fire in backward order).
    pub measured_monotone: bool,
}

/// Reconcile the analytical readiness schedule against measured readiness.
/// Inputs are offsets from the start of backward, one per tensor in
/// reduction order; lengths must match.
#[dlsr::deterministic]
pub fn reconcile_readiness(analytic: &[f64], measured: &[f64]) -> ReadinessReconciliation {
    assert_eq!(
        analytic.len(),
        measured.len(),
        "schedules describe different tensor sets"
    );
    fn normalize(xs: &[f64]) -> Vec<f64> {
        let last = xs.last().copied().unwrap_or(0.0);
        if last > 0.0 {
            xs.iter().map(|&x| x / last).collect()
        } else {
            vec![0.0; xs.len()]
        }
    }
    let a = normalize(analytic);
    let m = normalize(measured);
    let devs: Vec<f64> = a.iter().zip(&m).map(|(x, y)| (x - y).abs()).collect();
    let max_abs_dev = devs.iter().cloned().fold(0.0, f64::max);
    let mean_abs_dev = if devs.is_empty() {
        0.0
    } else {
        devs.iter().sum::<f64>() / devs.len() as f64
    };
    let measured_monotone = measured.windows(2).all(|w| w[0] <= w[1]);
    ReadinessReconciliation {
        analytic: a,
        measured: m,
        max_abs_dev,
        mean_abs_dev,
        measured_monotone,
    }
}

/// Plan fusion the way Horovod's background engine actually behaves
/// (§II-D): the engine wakes every `cycle_time`; at each tick it fuses the
/// tensors that became ready since the last processed batch (at most
/// `threshold` bytes per group) and reduces the groups back-to-back. While
/// a reduction runs, further tensors accumulate — so slow communication
/// produces *larger* fused messages, which is exactly how the paper's
/// 16–64 MB Table I bins arise from a stream of ~2 MB gradient tensors.
///
/// `est` estimates the *transport* duration of one fused allreduce from its
/// byte count; `cycle_overhead` is charged once per engine wake-up (the
/// coordinator negotiation round — one round can carry several fused
/// groups). All ranks must compute identical plans, so these estimates —
/// not the actual, rank-skewed timings — drive group formation.
///
/// Wake-up cadence: the engine's first wake with work is `cycle_time/2`
/// (the expected phase lag of a periodic timer) after the first tensor is
/// ready; subsequent wakes are at least `cycle_time` after the previous
/// one, and no earlier than the engine finished the previous batch or new
/// work became available — exactly Horovod's `sleep(cycle − elapsed)` loop.
pub fn plan_dynamic(
    tensors: &[TensorSpec],
    readiness: &[f64],
    cycle_time: f64,
    threshold: u64,
    cycle_overhead: f64,
    est: &dyn Fn(u64) -> f64,
) -> Vec<ScheduledGroup> {
    assert_eq!(tensors.len(), readiness.len());
    assert!(
        readiness.windows(2).all(|w| w[0] <= w[1]),
        "readiness must be sorted"
    );
    if tensors.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut idx = 0usize;
    let mut tick = readiness[0] + cycle_time / 2.0;
    while idx < tensors.len() {
        let mut ready_end = idx;
        while ready_end < tensors.len() && readiness[ready_end] <= tick {
            ready_end += 1;
        }
        let mut launch = tick + cycle_overhead;
        for g in plan_fusion(&tensors[idx..ready_end], threshold) {
            let group = FusionGroup {
                indices: g.indices.iter().map(|i| i + idx).collect(),
                bytes: g.bytes,
                elems: g.elems,
            };
            let dur = est(group.bytes);
            out.push(ScheduledGroup {
                group,
                launch_offset: launch,
            });
            launch += dur;
        }
        idx = ready_end;
        if idx < tensors.len() {
            // next wake: one cycle later, or when the engine frees, or when
            // the next tensor lands (plus the periodic-timer phase lag)
            tick = (tick + cycle_time)
                .max(launch)
                .max(readiness[idx] + cycle_time / 2.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(name: &str, elems: usize) -> TensorSpec {
        TensorSpec {
            name: name.into(),
            elems,
        }
    }

    #[test]
    fn groups_respect_threshold() {
        // 3 tensors of 6 bytes... use elements: threshold 16 bytes = 4 elems
        let tensors = vec![t("a", 2), t("b", 2), t("c", 2)];
        let groups = plan_fusion(&tensors, 16);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].indices, vec![0, 1]);
        assert_eq!(groups[0].bytes, 16);
        assert_eq!(groups[1].indices, vec![2]);
    }

    #[test]
    fn oversize_tensor_gets_own_group() {
        let tensors = vec![t("small", 1), t("huge", 100), t("small2", 1)];
        let groups = plan_fusion(&tensors, 16);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[1].indices, vec![1]);
        assert_eq!(groups[1].bytes, 400);
    }

    #[test]
    fn every_tensor_is_covered_exactly_once() {
        let tensors: Vec<TensorSpec> = (0..37)
            .map(|i| t(&format!("p{i}"), (i % 7 + 1) * 100))
            .collect();
        let groups = plan_fusion(&tensors, 1000);
        let mut seen = vec![false; tensors.len()];
        for g in &groups {
            for &i in &g.indices {
                assert!(!seen[i], "tensor {i} packed twice");
                seen[i] = true;
            }
            assert_eq!(
                g.elems,
                g.indices.iter().map(|&i| tensors[i].elems).sum::<usize>()
            );
        }
        assert!(seen.iter().all(|&s| s), "tensor dropped from fusion plan");
    }

    #[test]
    fn large_threshold_fuses_everything() {
        let tensors = vec![t("a", 10), t("b", 20), t("c", 30)];
        let groups = plan_fusion(&tensors, u64::MAX);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].elems, 60);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        assert!(plan_fusion(&[], 1024).is_empty());
    }

    #[test]
    fn readiness_is_monotone_and_ends_at_bwd_duration() {
        let tensors = vec![t("a", 10), t("b", 30), t("c", 60)];
        let r = readiness_from_elems(&tensors, 1.0);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        assert!((r[2] - 1.0).abs() < 1e-9);
        assert!((r[0] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn reconcile_reports_zero_deviation_for_matching_shapes() {
        // Measured is 3× slower but the *shape* matches exactly.
        let analytic = vec![0.1, 0.4, 1.0];
        let measured = vec![0.3, 1.2, 3.0];
        let r = reconcile_readiness(&analytic, &measured);
        assert!(r.max_abs_dev < 1e-12, "dev {}", r.max_abs_dev);
        assert!(r.measured_monotone);
        assert!((r.analytic[2] - 1.0).abs() < 1e-12);
        assert!((r.measured[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reconcile_flags_shape_mismatch() {
        // Analytic says readiness is front-loaded; measured is back-loaded.
        let analytic = vec![0.8, 0.9, 1.0];
        let measured = vec![0.1, 0.2, 1.0];
        let r = reconcile_readiness(&analytic, &measured);
        assert!(r.max_abs_dev > 0.5, "dev {}", r.max_abs_dev);
        assert!(r.mean_abs_dev > 0.3);
        assert!(r.mean_abs_dev <= r.max_abs_dev);
    }

    #[test]
    fn reconcile_handles_degenerate_inputs() {
        let r = reconcile_readiness(&[], &[]);
        assert_eq!(r.max_abs_dev, 0.0);
        assert!(r.measured_monotone);
        // all-zero measured (instant backward) must not divide by zero
        let r = reconcile_readiness(&[0.5, 1.0], &[0.0, 0.0]);
        assert!(r.max_abs_dev.is_finite());
    }

    #[test]
    fn dynamic_plan_covers_every_tensor_once() {
        let tensors: Vec<TensorSpec> = (0..30)
            .map(|i| t(&format!("p{i}"), 1000 + i * 100))
            .collect();
        let readiness = readiness_from_elems(&tensors, 0.1);
        let plan = plan_dynamic(&tensors, &readiness, 1e-3, 40_000, 0.0, &|b| b as f64 / 1e9);
        let mut seen = vec![false; tensors.len()];
        for sg in &plan {
            for &i in &sg.group.indices {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // launch offsets are non-decreasing
        assert!(plan
            .windows(2)
            .all(|w| w[0].launch_offset <= w[1].launch_offset));
    }

    #[test]
    fn slow_communication_produces_larger_groups() {
        // The mechanism behind the paper's big-message bins: if each
        // allreduce takes long, more tensors pile up per engine cycle.
        let tensors: Vec<TensorSpec> = (0..100).map(|i| t(&format!("p{i}"), 10_000)).collect();
        let readiness = readiness_from_elems(&tensors, 0.1);
        let slow = plan_dynamic(&tensors, &readiness, 1e-3, u64::MAX, 0.0, &|_| 20e-3);
        let fast = plan_dynamic(&tensors, &readiness, 1e-3, u64::MAX, 0.0, &|_| 0.1e-3);
        assert!(
            slow.len() < fast.len(),
            "slow comm should fuse more: {} vs {} groups",
            slow.len(),
            fast.len()
        );
        let max_slow = slow.iter().map(|g| g.group.bytes).max().unwrap();
        let max_fast = fast.iter().map(|g| g.group.bytes).max().unwrap();
        assert!(max_slow > max_fast);
    }

    #[test]
    fn threshold_caps_dynamic_groups() {
        let tensors: Vec<TensorSpec> = (0..50).map(|i| t(&format!("p{i}"), 1000)).collect();
        let readiness = readiness_from_elems(&tensors, 0.01);
        let plan = plan_dynamic(&tensors, &readiness, 5e-3, 8_000, 0.0, &|_| 1e-3);
        for sg in &plan {
            assert!(sg.group.bytes <= 8_000, "group of {} bytes", sg.group.bytes);
        }
    }

    #[test]
    fn first_ready_tensor_launches_early_and_alone_when_comm_is_slow() {
        // A small head tensor ready long before the bulk is reduced by
        // itself — this is what populates the paper's 1–128 KB bin.
        let mut tensors = vec![t("head", 1_000)];
        tensors.extend((0..20).map(|i| t(&format!("body{i}"), 500_000)));
        let readiness: Vec<f64> = std::iter::once(0.001)
            .chain((0..20).map(|i| 0.05 + i as f64 * 0.01))
            .collect();
        let plan = plan_dynamic(&tensors, &readiness, 3.5e-3, 64 << 20, 0.0, &|_| 30e-3);
        assert_eq!(plan[0].group.indices, vec![0], "head tensor not alone");
        assert!(plan[0].group.bytes < 128 << 10);
        assert!(plan.last().unwrap().group.bytes > 1 << 20);
    }
}
