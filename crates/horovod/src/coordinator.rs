//! The Horovod coordinator: rank 0 collects per-worker readiness reports
//! and broadcasts the agreed reduction order each cycle. These are *real*
//! control messages through the simulated fabric, so coordinator cost
//! scales with world size in the virtual timings the same way it does on a
//! real cluster.

use dlsr_mpi::{Comm, Payload};

/// Tag namespace for coordinator traffic (distinct from collectives and
/// user tags).
const COORD_TAG: u64 = 1 << 61;

/// One negotiation round: every worker reports a readiness bitmask over
/// `n_tensors` tensors; rank 0 gathers them, computes the globally-ready
/// set (bitwise AND) and broadcasts it. Returns the agreed bitmask.
///
/// In this synchronous simulator all ranks are always ready for all
/// tensors, so the *result* is trivially all-ones — the point is the
/// *cost*: rank 0 absorbs `world − 1` receives per cycle.
pub fn negotiate(comm: &mut Comm, n_tensors: usize, cycle: u64) -> Vec<u8> {
    negotiate_with_cost(comm, n_tensors, cycle, 20.0e-6)
}

/// [`negotiate`] with an explicit per-report coordinator processing cost —
/// the (Python-side) time rank 0 spends parsing each worker's readiness
/// report. This linear-in-world term is one of Horovod's known scalability
/// limits and contributes to the efficiency fall-off of Figs 10/13.
pub fn negotiate_with_cost(
    comm: &mut Comm,
    n_tensors: usize,
    cycle: u64,
    report_cost: f64,
) -> Vec<u8> {
    let p = comm.size();
    let bytes = n_tensors.div_ceil(8).max(1);
    let mine = vec![0xFFu8; bytes];
    if p == 1 {
        return mine;
    }
    // Negotiation rounds must line up across ranks: same cycle, same
    // tensor count, or the agreed bitmap below is garbage.
    comm.verify_checkpoint("negotiate", cycle << 32 | n_tensors as u64);
    let t0 = comm.now();
    let tag = COORD_TAG | cycle;
    let agreed = if comm.rank() == 0 {
        let mut agreed = mine;
        for src in 1..p {
            let report = comm.recv(src, tag, 0).into_bytes();
            comm.advance(report_cost);
            for (a, b) in agreed.iter_mut().zip(report.iter()) {
                *a &= b;
            }
        }
        for dst in 1..p {
            comm.send(dst, tag | (1 << 60), Payload::Bytes(agreed.clone()), 0);
        }
        agreed
    } else {
        comm.send(0, tag, Payload::Bytes(mine), 0);
        comm.recv(0, tag | (1 << 60), 0).into_bytes()
    };
    dlsr_trace::record_span(
        || format!("negotiate c{cycle} {n_tensors}t"),
        dlsr_trace::cat::NEGOTIATE,
        t0,
        comm.now(),
    );
    agreed
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_mpi::{MpiConfig, MpiWorld};
    use dlsr_net::ClusterTopology;

    #[test]
    fn all_ranks_agree_on_the_ready_set() {
        let topo = ClusterTopology::lassen(2);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| negotiate(c, 20, 0));
        let first = &res.ranks[0];
        assert_eq!(first.len(), 3);
        for r in &res.ranks {
            assert_eq!(r, first);
        }
    }

    #[test]
    fn coordinator_cost_grows_with_world_size() {
        let time_for = |nodes: usize| {
            let topo = ClusterTopology::lassen(nodes);
            MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
                negotiate(c, 100, 0);
                c.now()
            })
            .makespan()
        };
        let t4 = time_for(1);
        let t32 = time_for(8);
        assert!(t32 > t4, "coordinator cost must grow: {t4} vs {t32}");
    }
}
