//! The Horovod coordinator: rank 0 collects per-worker readiness reports
//! and broadcasts the agreed reduction order each cycle. These are *real*
//! control messages through the simulated fabric, so coordinator cost
//! scales with world size in the virtual timings the same way it does on a
//! real cluster.

use dlsr_mpi::{drive_task, Comm, EventTask, Payload, Poll};

/// Tag namespace for coordinator traffic (distinct from collectives and
/// user tags).
const COORD_TAG: u64 = 1 << 61;

/// One negotiation round: every worker reports a readiness bitmask over
/// `n_tensors` tensors; rank 0 gathers them, computes the globally-ready
/// set (bitwise AND) and broadcasts it. Returns the agreed bitmask.
///
/// In this synchronous simulator all ranks are always ready for all
/// tensors, so the *result* is trivially all-ones — the point is the
/// *cost*: rank 0 absorbs `world − 1` receives per cycle.
pub fn negotiate(comm: &mut Comm, n_tensors: usize, cycle: u64) -> Vec<u8> {
    negotiate_with_cost(comm, n_tensors, cycle, 20.0e-6)
}

/// [`negotiate`] with an explicit per-report coordinator processing cost —
/// the (Python-side) time rank 0 spends parsing each worker's readiness
/// report. This linear-in-world term is one of Horovod's known scalability
/// limits and contributes to the efficiency fall-off of Figs 10/13.
pub fn negotiate_with_cost(
    comm: &mut Comm,
    n_tensors: usize,
    cycle: u64,
    report_cost: f64,
) -> Vec<u8> {
    let mut task = NegotiateTask::new(n_tensors, cycle, report_cost);
    drive_task(comm, &mut task);
    task.agreed
}

/// One negotiation round as a resumable [`EventTask`] (the schedule behind
/// [`negotiate_with_cost`], which drives it in place). On the driven
/// engine rank 0 parks per outstanding worker report instead of blocking
/// an OS thread on each receive.
pub struct NegotiateTask {
    n_tensors: usize,
    cycle: u64,
    report_cost: f64,
    started: bool,
    t0: f64,
    /// Next worker whose report rank 0 still awaits.
    src_idx: usize,
    /// Report sent (worker) / replies broadcast (rank 0).
    sent: bool,
    /// This rank's readiness bitmask, AND-folded into the agreement.
    agreed: Vec<u8>,
}

impl NegotiateTask {
    /// Build the task; nothing happens until the first `poll`.
    pub fn new(n_tensors: usize, cycle: u64, report_cost: f64) -> NegotiateTask {
        let bytes = n_tensors.div_ceil(8).max(1);
        NegotiateTask {
            n_tensors,
            cycle,
            report_cost,
            started: false,
            t0: 0.0,
            src_idx: 1,
            sent: false,
            agreed: vec![0xFFu8; bytes],
        }
    }
}

impl EventTask for NegotiateTask {
    fn poll(&mut self, comm: &mut Comm) -> Poll {
        let p = comm.size();
        if p == 1 {
            return Poll::Ready;
        }
        if !self.started {
            // Negotiation rounds must line up across ranks: same cycle,
            // same tensor count, or the agreed bitmap below is garbage.
            comm.verify_checkpoint("negotiate", self.cycle << 32 | self.n_tensors as u64);
            self.t0 = comm.now();
            self.started = true;
        }
        let tag = COORD_TAG | self.cycle;
        if comm.rank() == 0 {
            while self.src_idx < p {
                let Some(report) = comm.try_recv_buffered(self.src_idx, tag, 0) else {
                    return Poll::Pending {
                        src: self.src_idx,
                        tag,
                    };
                };
                comm.advance(self.report_cost);
                for (a, b) in self.agreed.iter_mut().zip(report.into_bytes().iter()) {
                    *a &= b;
                }
                self.src_idx += 1;
            }
            if !self.sent {
                for dst in 1..p {
                    comm.send(dst, tag | (1 << 60), Payload::Bytes(self.agreed.clone()), 0);
                }
                self.sent = true;
            }
        } else {
            if !self.sent {
                comm.send(0, tag, Payload::Bytes(self.agreed.clone()), 0);
                self.sent = true;
            }
            let reply = tag | (1 << 60);
            let Some(payload) = comm.try_recv_buffered(0, reply, 0) else {
                return Poll::Pending { src: 0, tag: reply };
            };
            self.agreed = payload.into_bytes();
        }
        let (cycle, n_tensors) = (self.cycle, self.n_tensors);
        dlsr_trace::record_span(
            move || format!("negotiate c{cycle} {n_tensors}t"),
            dlsr_trace::cat::NEGOTIATE,
            self.t0,
            comm.now(),
        );
        Poll::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_mpi::{MpiConfig, MpiWorld};
    use dlsr_net::ClusterTopology;

    #[test]
    fn all_ranks_agree_on_the_ready_set() {
        let topo = ClusterTopology::lassen(2);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| negotiate(c, 20, 0));
        let first = &res.ranks[0];
        assert_eq!(first.len(), 3);
        for r in &res.ranks {
            assert_eq!(r, first);
        }
    }

    #[test]
    fn coordinator_cost_grows_with_world_size() {
        let time_for = |nodes: usize| {
            let topo = ClusterTopology::lassen(nodes);
            MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
                negotiate(c, 100, 0);
                c.now()
            })
            .makespan()
        };
        let t4 = time_for(1);
        let t32 = time_for(8);
        assert!(t32 > t4, "coordinator cost must grow: {t4} vs {t32}");
    }
}
