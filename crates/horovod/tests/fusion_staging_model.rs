//! Exhaustive interleaving model of the double-buffered fusion staging in
//! `DistributedOptimizer` (`optimizer.rs`): group `k` packs into buffer
//! `k % 2` while group `k − 1` is on the wire, and the averaged result is
//! staged into `avg_flat` so the parity buffer frees for group `k + 2`.
//!
//! `loom` is not vendored in this workspace, so this is a hand-rolled
//! loom-style checker: a tiny two-thread model (a *packer* thread playing
//! backward's gradient hook, a *stager* thread playing the wire +
//! write-back) is explored over **every** schedule by depth-first search
//! over scheduler choices with memoized states. The checker proves three
//! things:
//!
//! 1. the staging protocol is safe under all interleavings — no schedule
//!    lets a buffer be refilled while its previous contents are still in
//!    flight, and every group stages the bits its packer wrote;
//! 2. no schedule deadlocks (some thread can always step until both are
//!    done);
//! 3. the checker itself has teeth: dropping the wait-for-free handshake
//!    (the engine's "launch before reuse" rule) produces a schedule the
//!    checker rejects — a true-positive self-test, mirroring the lint
//!    fixtures.

#![forbid(unsafe_code)]

use std::collections::HashSet;

/// One fusion buffer slot in the model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Slot {
    /// Reusable: previous group's contents fully staged (or never used).
    Free,
    /// Packed by group `g`, allreduce launched, not yet staged.
    InFlight { group: u8 },
}

/// Whole-model state: two buffer slots plus each thread's program counter
/// (= next group it will process).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct State {
    slots: [Slot; 2],
    next_pack: u8,
    next_stage: u8,
}

#[derive(Debug, PartialEq)]
enum Verdict {
    /// Every reachable schedule is safe and terminates.
    Safe { states_explored: usize },
    /// Some schedule reaches a hazard: refilling a buffer that is still
    /// in flight.
    ReuseHazard { state: State },
    /// Some schedule reaches a state where neither thread can step.
    Deadlock { state: State },
}

/// Explore every interleaving of the packer and stager over `groups`
/// fusion groups. `wait_for_free` is the engine's handshake: the packer
/// may only fill a slot that is `Free`. Turning it off models an engine
/// bug where group `k + 2` starts packing while group `k` is still on the
/// wire.
fn check(groups: u8, wait_for_free: bool) -> Verdict {
    let mut seen = HashSet::new();
    let mut stack = vec![State {
        slots: [Slot::Free; 2],
        next_pack: 0,
        next_stage: 0,
    }];
    let mut explored = 0usize;
    while let Some(st) = stack.pop() {
        if !seen.insert(st) {
            continue;
        }
        explored += 1;
        let done = st.next_pack == groups && st.next_stage == groups;
        if done {
            continue;
        }
        let mut stepped = false;
        // Packer: fill slot g % 2 and launch group g.
        if st.next_pack < groups {
            let slot = (st.next_pack % 2) as usize;
            match st.slots[slot] {
                Slot::Free => {
                    let mut nx = st;
                    nx.slots[slot] = Slot::InFlight {
                        group: st.next_pack,
                    };
                    nx.next_pack += 1;
                    stack.push(nx);
                    stepped = true;
                }
                Slot::InFlight { .. } if !wait_for_free => {
                    // the modeled bug: clobber a buffer still on the wire
                    return Verdict::ReuseHazard { state: st };
                }
                Slot::InFlight { .. } => {} // blocked until staged
            }
        }
        // Stager: complete group g's allreduce and stage it out of its
        // slot (groups complete in launch order — the simulated fabric is
        // synchronous per collective).
        if st.next_stage < st.next_pack {
            let slot = (st.next_stage % 2) as usize;
            // The slot must still hold exactly the group being staged;
            // anything else means a refill raced the write-back.
            if st.slots[slot]
                != (Slot::InFlight {
                    group: st.next_stage,
                })
            {
                return Verdict::ReuseHazard { state: st };
            }
            let mut nx = st;
            nx.slots[slot] = Slot::Free;
            nx.next_stage += 1;
            stack.push(nx);
            stepped = true;
        }
        if !stepped {
            return Verdict::Deadlock { state: st };
        }
    }
    Verdict::Safe {
        states_explored: explored,
    }
}

#[test]
fn double_buffered_staging_is_safe_under_all_interleavings() {
    for groups in 1..=8u8 {
        match check(groups, true) {
            Verdict::Safe { states_explored } => {
                // sanity: the space actually grows with the group count
                assert!(
                    states_explored as u32 >= 2 * groups as u32,
                    "{groups} groups explored only {states_explored} states"
                );
            }
            bad => panic!("{groups} groups: {bad:?}"),
        }
    }
}

#[test]
fn packer_can_run_a_full_group_ahead_of_the_stager() {
    // The point of double buffering: with ≥ 2 groups there must be a
    // reachable state with two groups in flight at once. Re-explore and
    // look for it.
    let mut seen = HashSet::new();
    let mut stack = vec![State {
        slots: [Slot::Free; 2],
        next_pack: 0,
        next_stage: 0,
    }];
    let mut overlapped = false;
    while let Some(st) = stack.pop() {
        if !seen.insert(st) {
            continue;
        }
        if st.slots.iter().all(|s| matches!(s, Slot::InFlight { .. })) {
            overlapped = true;
        }
        let groups = 4u8;
        if st.next_pack < groups && st.slots[(st.next_pack % 2) as usize] == Slot::Free {
            let mut nx = st;
            nx.slots[(st.next_pack % 2) as usize] = Slot::InFlight {
                group: st.next_pack,
            };
            nx.next_pack += 1;
            stack.push(nx);
        }
        if st.next_stage < st.next_pack {
            let mut nx = st;
            nx.slots[(st.next_stage % 2) as usize] = Slot::Free;
            nx.next_stage += 1;
            stack.push(nx);
        }
    }
    assert!(
        overlapped,
        "no schedule had both buffers in flight — the model lost the overlap"
    );
}

#[test]
fn removing_the_wait_for_free_handshake_is_caught() {
    // True-positive self-test: with 3+ groups and no handshake, some
    // schedule packs group 2 into slot 0 while group 0 is still in
    // flight, and the checker must say so.
    match check(3, false) {
        Verdict::ReuseHazard { state } => {
            assert!(
                state
                    .slots
                    .iter()
                    .any(|s| matches!(s, Slot::InFlight { .. })),
                "hazard state should show a live in-flight buffer: {state:?}"
            );
        }
        other => panic!("broken protocol went undetected: {other:?}"),
    }
}

#[test]
fn single_buffer_would_serialize_but_stay_safe() {
    // Degenerate check of the model itself: with the handshake on, even
    // adversarial schedules can never hold more groups in flight than
    // there are buffers.
    let mut seen = HashSet::new();
    let mut stack = vec![State {
        slots: [Slot::Free; 2],
        next_pack: 0,
        next_stage: 0,
    }];
    while let Some(st) = stack.pop() {
        if !seen.insert(st) {
            continue;
        }
        let in_flight = st.next_pack - st.next_stage;
        assert!(in_flight <= 2, "more groups in flight than buffers: {st:?}");
        let groups = 6u8;
        if st.next_pack < groups && st.slots[(st.next_pack % 2) as usize] == Slot::Free {
            let mut nx = st;
            nx.slots[(st.next_pack % 2) as usize] = Slot::InFlight {
                group: st.next_pack,
            };
            nx.next_pack += 1;
            stack.push(nx);
        }
        if st.next_stage < st.next_pack {
            let mut nx = st;
            nx.slots[(st.next_stage % 2) as usize] = Slot::Free;
            nx.next_stage += 1;
            stack.push(nx);
        }
    }
}
