//! Property-based tests for tensor fusion: the plans must cover every
//! tensor exactly once, respect the threshold, and order launches sanely
//! for arbitrary tensor populations.

use proptest::prelude::*;

use dlsr_horovod::{plan_dynamic, plan_fusion, readiness_from_elems, TensorSpec};

fn tensors_strategy() -> impl Strategy<Value = Vec<TensorSpec>> {
    proptest::collection::vec(1usize..200_000, 1..80).prop_map(|sizes| {
        sizes
            .into_iter()
            .enumerate()
            .map(|(i, elems)| TensorSpec {
                name: format!("t{i}"),
                elems,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Static fusion: exact cover, order preserved, threshold respected.
    #[test]
    fn static_plan_invariants(tensors in tensors_strategy(), threshold in 1u64..2_000_000) {
        let groups = plan_fusion(&tensors, threshold);
        // exact cover in order
        let flat: Vec<usize> = groups.iter().flat_map(|g| g.indices.iter().copied()).collect();
        prop_assert_eq!(&flat, &(0..tensors.len()).collect::<Vec<_>>());
        for g in &groups {
            // byte/elem bookkeeping is consistent
            let bytes: u64 = g.indices.iter().map(|&i| tensors[i].bytes()).sum();
            let elems: usize = g.indices.iter().map(|&i| tensors[i].elems).sum();
            prop_assert_eq!(g.bytes, bytes);
            prop_assert_eq!(g.elems, elems);
            // a multi-tensor group never exceeds the threshold
            if g.indices.len() > 1 {
                prop_assert!(g.bytes <= threshold, "{} > {threshold}", g.bytes);
            }
        }
    }

    /// Dynamic fusion: exact cover, monotone launches, launches after
    /// readiness, threshold respected for multi-tensor groups.
    #[test]
    fn dynamic_plan_invariants(
        tensors in tensors_strategy(),
        threshold in 1_000u64..4_000_000,
        bwd_ms in 1u32..500,
        cycle_ms in 1u32..100,
        est_ms in 0u32..50,
        overhead_ms in 0u32..20,
    ) {
        let bwd = bwd_ms as f64 * 1e-3;
        let readiness = readiness_from_elems(&tensors, bwd);
        let est_s = est_ms as f64 * 1e-3;
        let plan = plan_dynamic(
            &tensors,
            &readiness,
            cycle_ms as f64 * 1e-3,
            threshold,
            overhead_ms as f64 * 1e-3,
            &|_| est_s,
        );
        let flat: Vec<usize> =
            plan.iter().flat_map(|sg| sg.group.indices.iter().copied()).collect();
        prop_assert_eq!(&flat, &(0..tensors.len()).collect::<Vec<_>>());
        let mut prev = f64::NEG_INFINITY;
        for sg in &plan {
            prop_assert!(sg.launch_offset >= prev, "launches must be ordered");
            prev = sg.launch_offset;
            // a group cannot launch before its last tensor is ready
            let last = *sg.group.indices.last().unwrap();
            prop_assert!(
                sg.launch_offset >= readiness[last],
                "group launched at {} before tensor ready at {}",
                sg.launch_offset,
                readiness[last]
            );
            if sg.group.indices.len() > 1 {
                prop_assert!(sg.group.bytes <= threshold);
            }
        }
    }

    /// Readiness offsets are sorted and end exactly at the backward
    /// duration.
    #[test]
    fn readiness_invariants(tensors in tensors_strategy(), bwd_ms in 1u32..1000) {
        let bwd = bwd_ms as f64 * 1e-3;
        let r = readiness_from_elems(&tensors, bwd);
        prop_assert_eq!(r.len(), tensors.len());
        prop_assert!(r.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!((r.last().unwrap() - bwd).abs() < 1e-9);
        prop_assert!(r.iter().all(|&t| t > 0.0 && t <= bwd + 1e-9));
    }
}
