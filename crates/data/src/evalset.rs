//! Benchmark-style evaluation sets, mirroring the standard SR suites the
//! paper lists in §II-E (Set5, Set14, Urban100, DIV2K). Each is a small,
//! deterministic collection of synthetic HR/LR pairs whose *content
//! statistics* echo its namesake: Set5 is small and smooth, Set14 mixes
//! content, Urban100 is dominated by rectilinear structure.

use dlsr_tensor::{resize, Tensor};

use crate::synthetic::SyntheticImageSpec;

/// A fixed evaluation collection of HR/LR pairs.
pub struct EvalSet {
    name: &'static str,
    pairs: Vec<(Tensor, Tensor)>,
    scale: usize,
}

impl EvalSet {
    fn build(
        name: &'static str,
        spec: SyntheticImageSpec,
        n: usize,
        scale: usize,
        seed: u64,
    ) -> Self {
        let pairs = (0..n)
            .map(|i| {
                let hr = spec.generate(seed, i);
                let lr = resize::bicubic_downsample(&hr, scale)
                    .expect("spec extents divisible by scale");
                (hr, lr)
            })
            .collect();
        EvalSet { name, pairs, scale }
    }

    /// A Set5-like suite: 5 small, smooth images.
    pub fn set5_like(scale: usize) -> Self {
        let spec = SyntheticImageSpec {
            height: 64,
            width: 64,
            octaves: 3,
            shapes: 2,
            texture: 0.02,
            ..Default::default()
        };
        Self::build("Set5-like", spec, 5, scale, 0x5E75)
    }

    /// A Set14-like suite: 14 mixed-content images.
    pub fn set14_like(scale: usize) -> Self {
        let spec = SyntheticImageSpec {
            height: 96,
            width: 96,
            octaves: 4,
            shapes: 6,
            texture: 0.05,
            ..Default::default()
        };
        Self::build("Set14-like", spec, 14, scale, 0x5E14)
    }

    /// An Urban100-like suite (truncated to 20 images for test budgets):
    /// rectilinear, edge-dominated content. A single smooth octave keeps the
    /// dynamic range owned by the box edges rather than the gradient base —
    /// Urban100's defining statistic is edge energy, not smooth shading.
    pub fn urban100_like(scale: usize) -> Self {
        let spec = SyntheticImageSpec {
            height: 96,
            width: 96,
            octaves: 1,
            shapes: 24,
            texture: 0.0,
            ..Default::default()
        };
        Self::build("Urban100-like", spec, 20, scale, 0x0B100)
    }

    /// Suite name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Upscale factor.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The `(HR, LR)` pairs.
    pub fn pairs(&self) -> &[(Tensor, Tensor)] {
        &self.pairs
    }

    /// Average a per-image metric over the suite: `f(hr, lr) -> value`.
    pub fn average<F: FnMut(&Tensor, &Tensor) -> f32>(&self, mut f: F) -> f32 {
        let total: f32 = self.pairs.iter().map(|(hr, lr)| f(hr, lr)).sum();
        total / self.pairs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes_and_shapes() {
        let s5 = EvalSet::set5_like(2);
        assert_eq!(s5.len(), 5);
        assert_eq!(s5.name(), "Set5-like");
        let (hr, lr) = &s5.pairs()[0];
        assert_eq!(hr.shape().dims(), &[1, 3, 64, 64]);
        assert_eq!(lr.shape().dims(), &[1, 3, 32, 32]);
        assert_eq!(EvalSet::set14_like(2).len(), 14);
        assert_eq!(EvalSet::urban100_like(4).len(), 20);
    }

    #[test]
    fn suites_are_deterministic() {
        let a = EvalSet::set5_like(2);
        let b = EvalSet::set5_like(2);
        assert_eq!(a.pairs()[3].0, b.pairs()[3].0);
    }

    #[test]
    fn average_runs_the_closure_per_image() {
        let s = EvalSet::set5_like(2);
        let mut count = 0;
        let avg = s.average(|_, _| {
            count += 1;
            2.0
        });
        assert_eq!(count, 5);
        assert_eq!(avg, 2.0);
    }

    #[test]
    fn urban_is_edgier_than_set5() {
        // content statistics: Urban100-like images carry more gradient
        // energy per pixel than the smooth Set5-like suite
        let energy = |set: &EvalSet| {
            set.average(|hr, _| {
                let (_, _, h, w) = hr.shape().as_nchw().unwrap();
                let d = hr.data();
                let mut e = 0.0f32;
                for y in 0..h {
                    for x in 0..w - 1 {
                        let diff = d[y * w + x + 1] - d[y * w + x];
                        e += diff * diff;
                    }
                }
                e / (h * w) as f32
            })
        };
        let urban = energy(&EvalSet::urban100_like(2));
        let set5 = energy(&EvalSet::set5_like(2));
        assert!(urban > set5, "urban {urban} <= set5 {set5}");
    }
}
