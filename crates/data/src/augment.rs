//! Training-time augmentation: the EDSR recipe augments each patch with
//! random horizontal/vertical flips and 90° rotations (8 dihedral
//! variants), applied identically to the LR/HR pair so they stay aligned.

use rand::rngs::SmallRng;
use rand::Rng;

use dlsr_tensor::Tensor;

use crate::dataset::PatchPair;

/// One of the 8 dihedral-group transforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augmentation {
    /// Flip left–right.
    pub hflip: bool,
    /// Flip top–bottom.
    pub vflip: bool,
    /// Rotate 90° (after flips). Requires square patches.
    pub rot90: bool,
}

impl Augmentation {
    /// The identity transform.
    pub fn identity() -> Self {
        Augmentation {
            hflip: false,
            vflip: false,
            rot90: false,
        }
    }

    /// Draw a uniform random element of the dihedral group.
    pub fn random(rng: &mut SmallRng) -> Self {
        Augmentation {
            hflip: rng.gen(),
            vflip: rng.gen(),
            rot90: rng.gen(),
        }
    }

    /// Apply to an `[N, C, H, W]` tensor.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        let mut out = t.clone();
        if self.hflip {
            out = flip_w(&out);
        }
        if self.vflip {
            out = flip_h(&out);
        }
        if self.rot90 {
            out = rot90(&out);
        }
        out
    }

    /// Apply to an aligned LR/HR pair.
    pub fn apply_pair(&self, pair: &PatchPair) -> PatchPair {
        PatchPair {
            lr: self.apply(&pair.lr),
            hr: self.apply(&pair.hr),
        }
    }
}

/// Flip along the width axis (left–right mirror).
pub fn flip_w(t: &Tensor) -> Tensor {
    let (n, c, h, w) = t.shape().as_nchw().expect("rank-4");
    let mut out = t.clone();
    let src = t.data();
    let dst = out.data_mut();
    for plane in 0..n * c {
        for y in 0..h {
            let base = plane * h * w + y * w;
            for x in 0..w {
                dst[base + x] = src[base + (w - 1 - x)];
            }
        }
    }
    out
}

/// Flip along the height axis (top–bottom mirror).
pub fn flip_h(t: &Tensor) -> Tensor {
    let (n, c, h, w) = t.shape().as_nchw().expect("rank-4");
    let mut out = t.clone();
    let src = t.data();
    let dst = out.data_mut();
    for plane in 0..n * c {
        let pbase = plane * h * w;
        for y in 0..h {
            let s = pbase + (h - 1 - y) * w;
            let d = pbase + y * w;
            dst[d..d + w].copy_from_slice(&src[s..s + w]);
        }
    }
    out
}

/// Rotate 90° clockwise. Requires `h == w`.
pub fn rot90(t: &Tensor) -> Tensor {
    let (n, c, h, w) = t.shape().as_nchw().expect("rank-4");
    assert_eq!(h, w, "rot90 requires square patches");
    let mut out = t.clone();
    let src = t.data();
    let dst = out.data_mut();
    for plane in 0..n * c {
        let pbase = plane * h * w;
        for y in 0..h {
            for x in 0..w {
                // (y, x) <- (h-1-x, y)
                dst[pbase + y * w + x] = src[pbase + (h - 1 - x) * w + y];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn patch() -> Tensor {
        Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn flips_are_involutions() {
        let t = dlsr_tensor::init::uniform([1, 3, 4, 4], 0.0, 1.0, 1);
        assert_eq!(flip_w(&flip_w(&t)), t);
        assert_eq!(flip_h(&flip_h(&t)), t);
    }

    #[test]
    fn rot90_has_order_four() {
        let t = dlsr_tensor::init::uniform([1, 2, 5, 5], 0.0, 1.0, 2);
        let r = rot90(&rot90(&rot90(&rot90(&t))));
        assert_eq!(r, t);
        assert_ne!(rot90(&t), t);
    }

    #[test]
    fn known_values() {
        // [1 2]    hflip [2 1]   vflip [3 4]   rot90cw [3 1]
        // [3 4]          [4 3]         [1 2]           [4 2]
        assert_eq!(flip_w(&patch()).data(), &[2.0, 1.0, 4.0, 3.0]);
        assert_eq!(flip_h(&patch()).data(), &[3.0, 4.0, 1.0, 2.0]);
        assert_eq!(rot90(&patch()).data(), &[3.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn pair_stays_aligned_under_augmentation() {
        // Downsampling the augmented HR must match augmenting the LR: both
        // orders commute for dihedral transforms.
        use crate::synthetic::SyntheticImageSpec;
        use crate::Div2kSynthetic;
        let spec = SyntheticImageSpec {
            height: 32,
            width: 32,
            ..Default::default()
        };
        let mut ds = Div2kSynthetic::new(spec, 2, 2, 9);
        let pair = ds.patch_for(8, 3);
        for aug in [
            Augmentation {
                hflip: true,
                vflip: false,
                rot90: false,
            },
            Augmentation {
                hflip: false,
                vflip: true,
                rot90: true,
            },
        ] {
            let a = aug.apply_pair(&pair);
            let down = dlsr_tensor::resize::bicubic_downsample(&a.hr, 2).unwrap();
            let lr_direct = &a.lr;
            // interior agreement (borders differ by crop-boundary taps)
            let mut max_diff = 0.0f32;
            for c in 0..3 {
                for y in 1..7 {
                    for x in 1..7 {
                        max_diff = max_diff
                            .max((down.at(&[0, c, y, x]) - lr_direct.at(&[0, c, y, x])).abs());
                    }
                }
            }
            assert!(max_diff < 0.2, "pair desynced: {max_diff}");
        }
    }

    #[test]
    fn random_augmentation_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        assert_eq!(Augmentation::random(&mut a), Augmentation::random(&mut b));
    }

    #[test]
    fn identity_is_noop() {
        let t = dlsr_tensor::init::uniform([2, 3, 6, 6], 0.0, 1.0, 7);
        assert_eq!(Augmentation::identity().apply(&t), t);
    }
}
