//! Procedural HR image synthesis.
//!
//! Each image combines three kinds of content that matter for SR training:
//! smooth multi-octave gradients (low-frequency), sharp geometric edges
//! (the structures bicubic blurs and SR models must restore), and
//! fine-grained texture (high-frequency detail).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dlsr_tensor::Tensor;

/// Parameters of the synthetic image generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticImageSpec {
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Color channels (3 = RGB).
    pub channels: usize,
    /// Number of smooth cosine octaves.
    pub octaves: usize,
    /// Number of sharp-edged shapes (axis-aligned boxes / diagonal ramps).
    pub shapes: usize,
    /// Texture amplitude in `[0,1]`.
    pub texture: f32,
}

impl Default for SyntheticImageSpec {
    fn default() -> Self {
        SyntheticImageSpec {
            height: 128,
            width: 128,
            channels: 3,
            octaves: 4,
            shapes: 6,
            texture: 0.08,
        }
    }
}

impl SyntheticImageSpec {
    /// A "2K-class" image like DIV2K's (large, detailed). Heavy on CPU —
    /// used only by harnesses that need realistic byte counts.
    pub fn div2k_like() -> Self {
        SyntheticImageSpec {
            height: 1080,
            width: 2048,
            ..Default::default()
        }
    }

    /// Generate image `index` of a deterministic virtual collection seeded
    /// by `seed`. Pixels lie in `[0, 1]`, NCHW with N = 1.
    pub fn generate(&self, seed: u64, index: usize) -> Tensor {
        let mut rng = SmallRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9));
        let (h, w, c) = (self.height, self.width, self.channels);
        let mut img = vec![0.0f32; c * h * w];

        // 1. smooth multi-octave base, per channel phase-shifted
        for ch in 0..c {
            let plane = &mut img[ch * h * w..(ch + 1) * h * w];
            let mut amp = 0.5f32;
            let base_fx: f32 = rng.gen_range(0.5..2.0);
            let base_fy: f32 = rng.gen_range(0.5..2.0);
            let phase_c = ch as f32 * 0.7;
            for oct in 0..self.octaves {
                let f = (1 << oct) as f32;
                let tau = std::f32::consts::TAU;
                let (px, py) = (rng.gen_range(0.0..tau), rng.gen_range(0.0..tau));
                for y in 0..h {
                    let fy = (y as f32 / h as f32) * base_fy * f * std::f32::consts::TAU;
                    for x in 0..w {
                        let fx = (x as f32 / w as f32) * base_fx * f * std::f32::consts::TAU;
                        plane[y * w + x] +=
                            amp * 0.5 * ((fx + px + phase_c).sin() + (fy + py).cos());
                    }
                }
                amp *= 0.5;
            }
        }

        // 2. sharp shapes: constant-color boxes with hard borders
        for _ in 0..self.shapes {
            let bh = rng.gen_range(h / 16..h / 3 + 1);
            let bw = rng.gen_range(w / 16..w / 3 + 1);
            let y0 = rng.gen_range(0..h.saturating_sub(bh).max(1));
            let x0 = rng.gen_range(0..w.saturating_sub(bw).max(1));
            for ch in 0..c {
                let v: f32 = rng.gen_range(-0.6..0.6);
                let plane = &mut img[ch * h * w..(ch + 1) * h * w];
                for y in y0..(y0 + bh).min(h) {
                    for x in x0..(x0 + bw).min(w) {
                        plane[y * w + x] += v;
                    }
                }
            }
        }

        // 3. fine texture: per-pixel noise
        if self.texture > 0.0 {
            for v in img.iter_mut() {
                *v += rng.gen_range(-self.texture..self.texture);
            }
        }

        // normalize into [0,1]
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &v in &img {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let range = (hi - lo).max(1e-6);
        for v in img.iter_mut() {
            *v = (*v - lo) / range;
        }
        Tensor::from_vec([1, c, h, w], img).expect("buffer matches shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_index() {
        let spec = SyntheticImageSpec {
            height: 32,
            width: 32,
            ..Default::default()
        };
        assert_eq!(spec.generate(1, 0), spec.generate(1, 0));
        assert_ne!(spec.generate(1, 0), spec.generate(1, 1));
        assert_ne!(spec.generate(1, 0), spec.generate(2, 0));
    }

    #[test]
    fn pixels_are_normalized() {
        let spec = SyntheticImageSpec {
            height: 24,
            width: 24,
            ..Default::default()
        };
        let img = spec.generate(3, 7);
        let lo = img.data().iter().copied().fold(f32::INFINITY, f32::min);
        let hi = img.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(hi - lo > 0.5, "image has no dynamic range");
    }

    #[test]
    fn images_have_high_frequency_content() {
        // The point of the generator: images must not be pure smooth
        // gradients, or SR would be trivially solved by bicubic.
        let spec = SyntheticImageSpec {
            height: 64,
            width: 64,
            ..Default::default()
        };
        let img = spec.generate(5, 0);
        let d = img.data();
        let mut grad_energy = 0.0f32;
        for y in 0..64 {
            for x in 0..63 {
                let diff = d[y * 64 + x + 1] - d[y * 64 + x];
                grad_energy += diff * diff;
            }
        }
        assert!(grad_energy > 1.0, "gradient energy {grad_energy} too low");
    }

    #[test]
    fn shape_matches_spec() {
        let spec = SyntheticImageSpec {
            height: 20,
            width: 30,
            channels: 1,
            ..Default::default()
        };
        assert_eq!(spec.generate(1, 0).shape().dims(), &[1, 1, 20, 30]);
    }
}
