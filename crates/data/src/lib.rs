//! `dlsr-data` — training data for single-image super-resolution.
//!
//! The paper trains on **DIV2K** (800 2K-resolution HR training images,
//! Agustsson & Timofte 2017). DIV2K itself is not redistributable here, so
//! this crate generates a *synthetic DIV2K*: procedurally generated
//! natural-image-like HR images (multi-octave smooth gradients, sharp
//! edges, fine texture) from which LR counterparts are produced by the
//! same bicubic degradation DIV2K uses. SR training only depends on the
//! `LR = bicubic(HR)` relationship plus edge/texture content, which this
//! preserves; the substitution is documented in DESIGN.md section 2.

#![forbid(unsafe_code)]
pub mod augment;
pub mod dataset;
pub mod evalset;
pub mod loader;
pub mod synthetic;

pub use augment::Augmentation;
pub use dataset::{Div2kSynthetic, PatchPair};
pub use evalset::EvalSet;
pub use loader::{DataLoader, ShardSpec};
pub use synthetic::SyntheticImageSpec;
