//! The synthetic-DIV2K dataset: LR/HR patch pairs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dlsr_tensor::{resize, Tensor};

use crate::synthetic::SyntheticImageSpec;

/// One training pair: an LR patch and its HR ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchPair {
    /// Low-resolution input, `[1, C, p, p]`.
    pub lr: Tensor,
    /// High-resolution target, `[1, C, p·s, p·s]`.
    pub hr: Tensor,
}

/// A deterministic virtual DIV2K: `n_images` synthetic HR images, each
/// paired with its bicubic-downsampled LR version. Patches are sampled on
/// demand; nothing is stored on disk.
pub struct Div2kSynthetic {
    spec: SyntheticImageSpec,
    n_images: usize,
    scale: usize,
    seed: u64,
    // cache of the most recently generated image (training revisits images)
    cache: Option<(usize, Tensor, Tensor)>,
}

impl Div2kSynthetic {
    /// Create a dataset of `n_images` images at upscale factor `scale`
    /// (DIV2K proper has 800 training images).
    pub fn new(spec: SyntheticImageSpec, n_images: usize, scale: usize, seed: u64) -> Self {
        assert!(scale >= 1, "scale must be >= 1");
        assert!(
            spec.height.is_multiple_of(scale) && spec.width.is_multiple_of(scale),
            "image extent must be divisible by the scale"
        );
        Div2kSynthetic {
            spec,
            n_images,
            scale,
            seed,
            cache: None,
        }
    }

    /// Number of images in the collection.
    pub fn len(&self) -> usize {
        self.n_images
    }

    /// True when the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.n_images == 0
    }

    /// The upscale factor.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Full HR/LR image pair for image `index` (cached).
    pub fn image(&mut self, index: usize) -> (&Tensor, &Tensor) {
        assert!(index < self.n_images, "image index out of range");
        let needs = match &self.cache {
            Some((i, _, _)) => *i != index,
            None => true,
        };
        if needs {
            let hr = self.spec.generate(self.seed, index);
            let lr = resize::bicubic_downsample(&hr, self.scale)
                .expect("spec extents divisible by scale");
            self.cache = Some((index, hr, lr));
        }
        let (_, hr, lr) = self.cache.as_ref().expect("cache just filled");
        (hr, lr)
    }

    /// Sample a random aligned LR/HR patch pair. `lr_patch` is the LR patch
    /// extent (the paper's EDSR uses 96 for ×2 training; HR patch = 192).
    pub fn sample_patch(&mut self, lr_patch: usize, rng: &mut SmallRng) -> PatchPair {
        let index = rng.gen_range(0..self.n_images);
        let s = self.scale;
        let (c, lh, lw) = {
            let (_, lr) = self.image(index);
            let (_, c, lh, lw) = lr.shape().as_nchw().expect("rank-4 image");
            (c, lh, lw)
        };
        assert!(
            lr_patch <= lh && lr_patch <= lw,
            "patch larger than LR image"
        );
        let y = rng.gen_range(0..=lh - lr_patch);
        let x = rng.gen_range(0..=lw - lr_patch);
        let (hr, lr) = self.image(index);
        let lr_crop = crop(lr, c, y, x, lr_patch, lr_patch);
        let hr_crop = crop(hr, c, y * s, x * s, lr_patch * s, lr_patch * s);
        PatchPair {
            lr: lr_crop,
            hr: hr_crop,
        }
    }

    /// Deterministic patch sampler keyed by `(epoch, step, rank)` — used by
    /// the distributed loader so every rank draws disjoint, reproducible
    /// work.
    pub fn patch_for(&mut self, lr_patch: usize, key: u64) -> PatchPair {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ key.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        self.sample_patch(lr_patch, &mut rng)
    }
}

fn crop(img: &Tensor, c: usize, y0: usize, x0: usize, h: usize, w: usize) -> Tensor {
    let (_, _, ih, iw) = img.shape().as_nchw().expect("rank-4 image");
    let mut out = Tensor::zeros([1, c, h, w]);
    for ch in 0..c {
        for y in 0..h {
            let src = ch * ih * iw + (y0 + y) * iw + x0;
            let dst = ch * h * w + y * w;
            out.data_mut()[dst..dst + w].copy_from_slice(&img.data()[src..src + w]);
        }
    }
    out
}

/// Stack `[1,C,H,W]` samples into a `[N,C,H,W]` batch.
pub fn stack_batch(samples: &[Tensor]) -> Tensor {
    assert!(!samples.is_empty(), "cannot stack an empty batch");
    let dims = samples[0].shape().dims().to_vec();
    let per = samples[0].numel();
    let mut data = Vec::with_capacity(per * samples.len());
    for s in samples {
        assert_eq!(s.shape().dims(), dims.as_slice(), "heterogeneous batch");
        data.extend_from_slice(s.data());
    }
    Tensor::from_vec([samples.len(), dims[1], dims[2], dims[3]], data)
        .expect("buffer matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ds() -> Div2kSynthetic {
        let spec = SyntheticImageSpec {
            height: 32,
            width: 32,
            ..Default::default()
        };
        Div2kSynthetic::new(spec, 4, 2, 42)
    }

    #[test]
    fn lr_is_downsampled_hr() {
        let mut ds = small_ds();
        let (hr, lr) = ds.image(0);
        assert_eq!(hr.shape().dims(), &[1, 3, 32, 32]);
        assert_eq!(lr.shape().dims(), &[1, 3, 16, 16]);
    }

    #[test]
    fn patches_are_aligned() {
        // The HR patch must be the ×2 region of the LR patch: downsampling
        // the HR crop reproduces the LR crop closely (borders differ due to
        // crop-boundary taps).
        let mut ds = small_ds();
        let pair = ds.patch_for(8, 5);
        assert_eq!(pair.lr.shape().dims(), &[1, 3, 8, 8]);
        assert_eq!(pair.hr.shape().dims(), &[1, 3, 16, 16]);
        let re_lr = resize::bicubic_downsample(&pair.hr, 2).unwrap();
        // compare interior only (1-pixel border excluded)
        let mut max_diff = 0.0f32;
        for c in 0..3 {
            for y in 1..7 {
                for x in 1..7 {
                    let d = (re_lr.at(&[0, c, y, x]) - pair.lr.at(&[0, c, y, x])).abs();
                    max_diff = max_diff.max(d);
                }
            }
        }
        assert!(max_diff < 0.15, "interior mismatch {max_diff}");
    }

    #[test]
    fn patch_for_is_deterministic() {
        let mut a = small_ds();
        let mut b = small_ds();
        assert_eq!(a.patch_for(8, 17).lr, b.patch_for(8, 17).lr);
        assert_ne!(a.patch_for(8, 17).lr, b.patch_for(8, 18).lr);
    }

    #[test]
    fn stack_batch_concatenates() {
        let mut ds = small_ds();
        let p1 = ds.patch_for(8, 1);
        let p2 = ds.patch_for(8, 2);
        let batch = stack_batch(&[p1.lr.clone(), p2.lr.clone()]);
        assert_eq!(batch.shape().dims(), &[2, 3, 8, 8]);
        assert_eq!(&batch.data()[..p1.lr.numel()], p1.lr.data());
        assert_eq!(&batch.data()[p1.lr.numel()..], p2.lr.data());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_scale_panics() {
        let spec = SyntheticImageSpec {
            height: 33,
            width: 32,
            ..Default::default()
        };
        let _ = Div2kSynthetic::new(spec, 1, 2, 1);
    }
}
