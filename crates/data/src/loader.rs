//! Sharded, deterministic batch loading for data-parallel training.
//!
//! Data parallelism (paper §II-C) partitions each global batch across all
//! ranks. The loader derives every sample from `(epoch, step, rank, slot)`
//! so (a) ranks never draw the same sample in a step, and (b) a single-rank
//! run with global batch B sees *exactly* the same samples as an N-rank run
//! with per-rank batch B/N — the property the distributed-equivalence
//! integration test checks.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use dlsr_tensor::Tensor;

use crate::augment::Augmentation;
use crate::dataset::{stack_batch, Div2kSynthetic};

/// Identifies one rank's shard of the global batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This rank's index in `0..world`.
    pub rank: usize,
    /// Total number of ranks.
    pub world: usize,
}

impl ShardSpec {
    /// A single-process (non-distributed) shard.
    pub fn single() -> Self {
        ShardSpec { rank: 0, world: 1 }
    }
}

/// Batch loader over a [`Div2kSynthetic`] dataset.
pub struct DataLoader {
    dataset: Div2kSynthetic,
    lr_patch: usize,
    global_batch: usize,
    shard: ShardSpec,
    augment: bool,
}

impl DataLoader {
    /// `global_batch` is the total batch across all ranks and must be
    /// divisible by `shard.world`.
    pub fn new(
        dataset: Div2kSynthetic,
        lr_patch: usize,
        global_batch: usize,
        shard: ShardSpec,
    ) -> Self {
        assert!(shard.world > 0 && shard.rank < shard.world, "invalid shard");
        assert!(
            global_batch.is_multiple_of(shard.world),
            "global batch {global_batch} not divisible by world {}",
            shard.world
        );
        DataLoader {
            dataset,
            lr_patch,
            global_batch,
            shard,
            augment: false,
        }
    }

    /// Enable EDSR-style patch augmentation (random flips + 90° rotations,
    /// drawn deterministically per sample key so shard equivalence holds).
    pub fn with_augmentation(mut self, on: bool) -> Self {
        self.augment = on;
        self
    }

    /// Per-rank batch size.
    pub fn local_batch(&self) -> usize {
        self.global_batch / self.shard.world
    }

    /// The `(LR, HR)` batch this rank processes at `(epoch, step)`.
    ///
    /// Global sample slot `g = rank·local + i` keys the patch draw, so the
    /// union over ranks is the same global batch regardless of `world`.
    pub fn batch(&mut self, epoch: u64, step: u64) -> (Tensor, Tensor) {
        let local = self.local_batch();
        let mut lrs = Vec::with_capacity(local);
        let mut hrs = Vec::with_capacity(local);
        for i in 0..local {
            let g = (self.shard.rank * local + i) as u64;
            let key = epoch
                .wrapping_mul(0x0001_0000_0000)
                .wrapping_add(step.wrapping_mul(4096))
                .wrapping_add(g);
            let mut pair = self.dataset.patch_for(self.lr_patch, key);
            if self.augment {
                let mut rng = SmallRng::seed_from_u64(key.wrapping_mul(0xA0761D64_78BD642F));
                pair = Augmentation::random(&mut rng).apply_pair(&pair);
            }
            lrs.push(pair.lr);
            hrs.push(pair.hr);
        }
        (stack_batch(&lrs), stack_batch(&hrs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticImageSpec;

    fn ds() -> Div2kSynthetic {
        let spec = SyntheticImageSpec {
            height: 32,
            width: 32,
            ..Default::default()
        };
        Div2kSynthetic::new(spec, 4, 2, 7)
    }

    #[test]
    fn shard_union_equals_single_rank_batch() {
        // 1 rank with batch 4 == concatenation of 2 ranks with batch 2.
        let mut single = DataLoader::new(ds(), 8, 4, ShardSpec::single());
        let (lr_all, _) = single.batch(0, 3);

        let mut r0 = DataLoader::new(ds(), 8, 4, ShardSpec { rank: 0, world: 2 });
        let mut r1 = DataLoader::new(ds(), 8, 4, ShardSpec { rank: 1, world: 2 });
        let (lr0, _) = r0.batch(0, 3);
        let (lr1, _) = r1.batch(0, 3);

        let half = lr_all.numel() / 2;
        assert_eq!(&lr_all.data()[..half], lr0.data());
        assert_eq!(&lr_all.data()[half..], lr1.data());
    }

    #[test]
    fn different_steps_differ() {
        let mut l = DataLoader::new(ds(), 8, 2, ShardSpec::single());
        let (a, _) = l.batch(0, 0);
        let (b, _) = l.batch(0, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn local_batch_division() {
        let l = DataLoader::new(ds(), 8, 8, ShardSpec { rank: 1, world: 4 });
        assert_eq!(l.local_batch(), 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_batch_panics() {
        let _ = DataLoader::new(ds(), 8, 5, ShardSpec { rank: 0, world: 2 });
    }

    #[test]
    fn augmented_shards_still_partition_the_global_batch() {
        let mut single = DataLoader::new(ds(), 8, 4, ShardSpec::single()).with_augmentation(true);
        let (lr_all, _) = single.batch(1, 9);
        let mut r1 =
            DataLoader::new(ds(), 8, 4, ShardSpec { rank: 1, world: 2 }).with_augmentation(true);
        let (lr1, _) = r1.batch(1, 9);
        let half = lr_all.numel() / 2;
        assert_eq!(&lr_all.data()[half..], lr1.data());
    }

    #[test]
    fn augmentation_changes_some_batches_but_is_deterministic() {
        let mut plain = DataLoader::new(ds(), 8, 8, ShardSpec::single());
        let mut aug_a = DataLoader::new(ds(), 8, 8, ShardSpec::single()).with_augmentation(true);
        let mut aug_b = DataLoader::new(ds(), 8, 8, ShardSpec::single()).with_augmentation(true);
        let (p, _) = plain.batch(0, 0);
        let (a, _) = aug_a.batch(0, 0);
        let (b, _) = aug_b.batch(0, 0);
        assert_eq!(a, b, "augmentation must be deterministic");
        assert_ne!(
            p, a,
            "8 samples with 8 dihedral variants must differ somewhere"
        );
    }

    #[test]
    fn batch_shapes() {
        let mut l = DataLoader::new(ds(), 8, 2, ShardSpec::single());
        let (lr, hr) = l.batch(1, 2);
        assert_eq!(lr.shape().dims(), &[2, 3, 8, 8]);
        assert_eq!(hr.shape().dims(), &[2, 3, 16, 16]);
    }
}
