//! End-to-end liveness of the `dlsr analyze` regression gate: the gate
//! must actually fail the process when step time regresses, and must pass
//! a bit-identical rerun. Runs the real binary (`CARGO_BIN_EXE_dlsr`)
//! against a small 1-node trace to stay fast.

use std::process::Command;

fn dlsr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dlsr"))
}

fn analyze_args(out: &std::path::Path) -> Vec<String> {
    [
        "analyze",
        "--nodes",
        "1",
        "--steps",
        "2",
        "--no-validate",
        "--out",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([out.display().to_string()])
    .collect()
}

#[test]
fn gate_trips_on_a_slowed_trace_and_passes_a_clean_rerun() {
    let dir = std::env::temp_dir().join(format!("dlsr-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    let rerun = dir.join("rerun.json");

    // 1. Record the baseline.
    let st = dlsr()
        .args(analyze_args(&baseline))
        .status()
        .expect("spawn dlsr analyze (baseline)");
    assert!(st.success(), "baseline analyze failed: {st}");
    let base_text = std::fs::read_to_string(&baseline).unwrap();
    assert!(
        base_text.contains("projection"),
        "baseline lacks projection"
    );

    // 2. A clean rerun passes the gate — and, because the analysis is
    //    virtual-clock only, reproduces the baseline byte for byte.
    let st = dlsr()
        .args(analyze_args(&rerun))
        .args([
            "--baseline",
            &baseline.display().to_string(),
            "--gate",
            "10",
        ])
        .status()
        .expect("spawn dlsr analyze (clean rerun)");
    assert!(st.success(), "clean rerun tripped the gate: {st}");
    assert_eq!(
        std::fs::read_to_string(&rerun).unwrap(),
        base_text,
        "analysis JSON is not deterministic"
    );

    // 3. A synthetically slowed trace (50% stretch vs a 10% tolerance)
    //    must exit nonzero and name the regression.
    let out = dlsr()
        .args(analyze_args(&dir.join("slow.json")))
        .args([
            "--slowdown",
            "1.5",
            "--baseline",
            &baseline.display().to_string(),
            "--gate",
            "10",
        ])
        .output()
        .expect("spawn dlsr analyze (slowed)");
    assert!(
        !out.status.success(),
        "gate did not trip on a 1.5x slowdown"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("step time regressed"),
        "gate tripped without naming the regression: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_check_validates_the_attribution() {
    let dir = std::env::temp_dir().join(format!("dlsr-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dlsr()
        .args(analyze_args(&dir.join("check.json")))
        .arg("--check")
        .output()
        .expect("spawn dlsr analyze --check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "analyze --check failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("bounded by"), "no critical-path headline");
    assert!(
        stdout.contains("categories sum to the measured step time"),
        "missing 1% sum check: {stdout}"
    );
    assert!(
        stdout.contains("exposed comm agrees with the step report"),
        "missing exposed-comm agreement check: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
