//! # `dlsr` — Scaling Single-Image Super-Resolution Training on (Simulated) HPC Clusters
//!
//! A full-stack Rust reproduction of *"Scaling Single-Image Super-Resolution
//! Training on Modern HPC Clusters: Early Experiences"* (Anthony, Xu,
//! Subramoni, Panda — 2021): EDSR training distributed with a Horovod-like
//! middleware over a CUDA-aware MPI (MVAPICH2-GDR-like) or an NCCL-like
//! backend, on a simulated Lassen-class V100 cluster.
//!
//! The stack, bottom to top (paper Fig 3):
//!
//! | layer | crate |
//! |---|---|
//! | tensors & kernels | [`tensor`] (`dlsr-tensor`) |
//! | autograd, layers, optimizers, metrics | [`nn`] (`dlsr-nn`) |
//! | EDSR / SRCNN / SRResNet / ResNet-50 | [`models`] (`dlsr-models`) |
//! | synthetic DIV2K + sharded loading | [`data`] (`dlsr-data`) |
//! | simulated V100 (memory, cost model, CUDA IPC) | [`gpu`] (`dlsr-gpu`) |
//! | NVLink / PCIe-staging / InfiniBand + reg cache | [`net`] (`dlsr-net`) |
//! | CUDA-aware MPI (collectives, `MV2_VISIBLE_DEVICES`) | [`mpi`] (`dlsr-mpi`) |
//! | NCCL-like backend | [`nccl`] (`dlsr-nccl`) |
//! | Horovod (fusion, coordinator, DistributedOptimizer) | [`horovod`] (`dlsr-horovod`) |
//! | hvprof communication profiler | [`hvprof`] (`dlsr-hvprof`) |
//! | cross-layer spans, counters & step report | [`trace`] (`dlsr-trace`) |
//! | cluster assembly + training drivers | [`cluster`] (`dlsr-cluster`) |
//!
//! ## Quickstart
//!
//! Train a tiny EDSR data-parallel on a simulated 4-GPU node, with real
//! gradient math flowing through the simulated MPI fabric:
//!
//! ```
//! use dlsr::prelude::*;
//!
//! let topo = ClusterTopology::lassen(1); // one node, 4 V100s
//! let cfg = RealTrainConfig::builder().steps(8).build();
//! let result = train_real(&topo, MpiConfig::mpi_opt(), &cfg);
//! assert!(result.losses.last().unwrap() < result.losses.first().unwrap());
//! ```
//!
//! Reproduce a paper experiment (here: one point of Fig 12/13):
//!
//! ```
//! use dlsr::prelude::*;
//!
//! let (workload, tensors) = edsr_measured_workload();
//! let topo = ClusterTopology::lassen(2); // 8 GPUs
//! let run = run_training(&topo, Scenario::MpiOpt, &workload, &tensors, 4, 1, 4, 7);
//! assert!(run.efficiency > 0.5 && run.efficiency <= 1.0);
//! ```
//!
//! Every figure and table of the paper has a dedicated harness in
//! `crates/bench/src/bin/` — see EXPERIMENTS.md for the index.

#![forbid(unsafe_code)]
pub use dlsr_cluster as cluster;
pub use dlsr_data as data;
#[cfg(feature = "faults")]
pub use dlsr_faults as faults;
pub use dlsr_gpu as gpu;
pub use dlsr_horovod as horovod;
pub use dlsr_hvprof as hvprof;
pub use dlsr_models as models;
pub use dlsr_mpi as mpi;
pub use dlsr_nccl as nccl;
pub use dlsr_net as net;
pub use dlsr_nn as nn;
pub use dlsr_tensor as tensor;
pub use dlsr_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use dlsr_cluster::{
        batch_sweep, edsr_measured_workload, edsr_text_workload, resnet50_workload, run_training,
        run_training_tuned, scaling_sweep, train_real, RealTrainConfig, RealTrainConfigBuilder,
        RealTrainResult, ScalingPoint, Scenario, SimTrainer, TrainRun,
    };
    pub use dlsr_data::{DataLoader, Div2kSynthetic, EvalSet, ShardSpec, SyntheticImageSpec};
    pub use dlsr_gpu::{DeviceEnv, GpuSpec, KernelCostModel, WorkloadKind, WorkloadProfile};
    pub use dlsr_horovod::{broadcast_parameters, Backend, DistributedOptimizer, HorovodConfig};
    pub use dlsr_hvprof::{compare, render_table, Collective, Hvprof};
    pub use dlsr_models::{Edsr, EdsrConfig, ResNet, ResNetConfig, SrResNet, Srcnn, Vdsr};
    pub use dlsr_mpi::{
        collectives, Allreduce, AllreduceAlgorithm, Comm, CommTuning, MpiConfig, MpiWorld, Payload,
        WireFormat,
    };
    pub use dlsr_nccl::Nccl;
    pub use dlsr_net::{ClusterTopology, RegistrationCache, TransportModel};
    pub use dlsr_nn::checkpoint::StateDict;
    pub use dlsr_nn::loss::{cross_entropy, l1_loss, mse_loss};
    pub use dlsr_nn::metrics::{psnr, ssim};
    pub use dlsr_nn::module::{Module, ModuleExt};
    pub use dlsr_nn::optim::{Adam, Optimizer, Sgd};
    pub use dlsr_nn::schedule::{LrSchedule, Scheduler, StepDecay, Warmup};
    pub use dlsr_tensor::{Shape, Tensor};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let t = Tensor::zeros([1, 3, 4, 4]);
        assert_eq!(t.numel(), 48);
        let topo = ClusterTopology::lassen(1);
        assert_eq!(topo.total_gpus(), 4);
        assert_eq!(Scenario::MpiOpt.label(), "MPI-Opt");
    }
}
