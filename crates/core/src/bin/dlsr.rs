//! The `dlsr` command-line interface.
//!
//! ```text
//! dlsr train    [--nodes N] [--gpus G] [--steps S] [--batch B] [--scenario NAME]
//!               [--augment] [--warmup W] [--eval-every E] [--digest] [--core C]
//!               [--allreduce ALGO] [--wire FMT] [--hier] [--tune-comm]
//! dlsr simulate [--nodes N] [--steps S] [--batch B] [--scenario NAME] [--core C]
//! dlsr simscale [--nodes N,N,...] [--steps S] [--smoke] [--check]
//!               [--baseline FILE] [--gate PCT]
//! dlsr profile  [--steps S]
//! dlsr analyze  [--nodes N] [--steps S] [--baseline FILE] [--gate PCT]
//! dlsr chaos    [--fault NAME] [--nodes N] [--gpus G] [--steps S] [--seed X]
//! dlsr lint     [--json | --sarif] [--root DIR] [--self-test]
//! dlsr info
//! ```

#![forbid(unsafe_code)]
use std::collections::HashMap;

use dlsr::prelude::*;
use dlsr::tensor::resize;

fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            // boolean flags take no value; valued flags consume the next arg
            let boolean = matches!(
                name,
                "augment"
                    | "help"
                    | "compare"
                    | "check"
                    | "sequential"
                    | "digest"
                    | "no-validate"
                    | "no-sim-check"
                    | "smoke"
                    | "json"
                    | "sarif"
                    | "self-test"
                    | "hier"
                    | "tune-comm"
            );
            if boolean {
                flags.insert(name.to_string(), "true".to_string());
            } else {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| die(&format!("--{name} needs a value")));
                flags.insert(name.to_string(), v.clone());
                i += 1;
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    (flags, positional)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `dlsr help` for usage");
    std::process::exit(2);
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str, default: T) -> T {
    match flags.get(name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| die(&format!("bad value for --{name}: {v}"))),
    }
}

/// `--core event|threaded` — which execution core runs the world. The
/// default (`event`) is the discrete-event core; `threaded` keeps the
/// legacy thread-per-rank core, preserved as the equivalence baseline
/// (the two must produce bitwise-identical results and digests).
fn sim_core(flags: &HashMap<String, String>) -> dlsr_mpi::SimCore {
    match flags.get("core").map(String::as_str) {
        None | Some("event") => dlsr_mpi::SimCore::Event,
        Some("threaded") => dlsr_mpi::SimCore::Threaded,
        Some(other) => die(&format!(
            "bad value for --core: {other} (expected event | threaded)"
        )),
    }
}

/// Apply the `--core` selection to an MPI configuration.
fn with_core(cfg: MpiConfig, flags: &HashMap<String, String>) -> MpiConfig {
    cfg.to_builder().sim_core(sim_core(flags)).build()
}

/// Apply the wire-efficiency knobs to an MPI configuration:
/// `--allreduce` pins the default algorithm, `--wire` selects a gradient
/// wire format *and* drops the size floor to zero so every bin uses it,
/// `--hier` promotes large inter-node reductions to the two-level
/// hierarchical path. Parse errors surface the enums' own messages (the
/// same labels `FromStr` documents and the reports print).
fn with_comm(cfg: MpiConfig, flags: &HashMap<String, String>) -> MpiConfig {
    let mut b = cfg.to_builder();
    if let Some(v) = flags.get("allreduce") {
        let algo: AllreduceAlgorithm = v.parse().unwrap_or_else(|e: String| die(&e));
        b = b.allreduce(algo);
    }
    if let Some(v) = flags.get("wire") {
        let wf: WireFormat = v.parse().unwrap_or_else(|e: String| die(&e));
        b = b.wire(wf).wire_threshold(0);
    }
    if flags.contains_key("hier") {
        b = b.hierarchical(true);
    }
    b.build()
}

fn scenario(flags: &HashMap<String, String>) -> Scenario {
    // `Scenario`'s FromStr parses the same case-insensitive labels the
    // reports print, so every subcommand accepts the same names. Keep the
    // historical lowercase short form `mpi` for the default scenario.
    let s = flags
        .get("scenario")
        .map(String::as_str)
        .unwrap_or("mpi-opt");
    s.parse().unwrap_or_else(|e: String| die(&e))
}

fn usage() {
    println!(
        "dlsr — distributed super-resolution training on a simulated HPC cluster

USAGE:
  dlsr train    [--nodes N] [--gpus G] [--steps S] [--batch B] [--scenario NAME]
                [--augment] [--warmup W] [--eval-every E] [--digest]
                [--core event|threaded] [--sequential]
                [--allreduce ALGO] [--wire FMT] [--hier] [--tune-comm]
                real EDSR training (tiny model, real math) on a simulated
                cluster. --digest prints an FNV-1a digest of the exact loss
                and parameter bits — two builds that print the same digest
                ran bitwise-identical training (the CI chaos job compares
                default vs `--features faults` builds this way, and the
                simscale job compares --core event vs threaded).
                --sequential disables backward/allreduce overlap.
                --allreduce pins the default algorithm (ring | rd |
                two-level | pipelined-ring); --wire selects a gradient wire
                format (f32 | bf16 | fp16 | topk[:permille]) for every size
                bin; --hier promotes large inter-node reductions to the
                two-level hierarchical path; --tune-comm turns on the
                online comm tuner (see docs/WIRE.md)
  dlsr simulate [--nodes N] [--steps S] [--batch B] [--scenario NAME]
                [--core event|threaded]
                at-scale costs-only run of the paper-scale EDSR workload
  dlsr simscale [--nodes N,N,...] [--steps S] [--batch B] [--warmup W]
                [--scenario NAME] [--smoke] [--check] [--out FILE]
                [--baseline FILE] [--gate PCT]
                benchmark the simulator itself: wall-clock cost of the
                event-driven core across 64-512 virtual ranks (default
                nodes 16,32,64,128) plus a thread-per-rank baseline at the
                smallest world, written to results/BENCH_simscale.json.
                --smoke adds a 4096-rank sanity point. --check asserts the
                absolute criteria (512 ranks under 60 s wall, driven core
                >= 10x threaded). --baseline gates the machine-independent
                virtual quantities against a committed report
  dlsr profile  [--nodes N] [--steps S] [--scenario NAME] [--sequential] [--check]
                [--checkpoint-every K] [--trace-sample N]
                [--allreduce ALGO] [--wire FMT] [--hier] [--tune-comm]
                cross-layer trace of a real EDSR training run: chrome-trace
                + step-report JSON under results/, breakdown table on stdout.
                Default mode overlaps backward with allreduce (see the
                Overlap column); --sequential runs the classic
                backward-then-allreduce path for comparison. --check
                validates that every instrumented layer (including the
                checkpoint/fault layer) emitted spans and, in overlap mode,
                that allreduce launches interleave with backward in the
                wall-clock timeline; exits non-zero otherwise.
                --trace-sample caps the chrome export at the first N spans
                per (rank, category) to keep the artifact reviewable
                (default 24, at least one full step of every layer;
                0 exports everything)
  dlsr profile --compare [--steps S]
                hvprof Table-I comparison (default vs MPI-Opt, 4 GPUs)
  dlsr analyze  [--nodes N] [--steps S] [--scenario NAME] [--check]
                [--checkpoint-every K] [--no-validate] [--slowdown F]
                [--out FILE] [--baseline FILE] [--gate PCT]
                cross-rank critical-path attribution and scaling projection
                (see docs/OBSERVABILITY.md): walks the happens-before DAG of
                a traced run to attribute every critical-path microsecond to
                compute / exposed comm / straggler wait / fault / checkpoint,
                fits a cost model at 2 ranks, validates it against 4- and
                8-rank runs, projects efficiency at 64-512 ranks, and writes
                results/BENCH_analysis.json (virtual-clock only, so the file
                is identical on every machine). --baseline compares against a
                committed analysis and exits non-zero on any regression
                beyond --gate percent (default 10). --check verifies the
                attribution sums to the measured step time within 1% and
                agrees with the step report's exposed-comm accounting.
                --slowdown F stretches the measured trace by F (gate
                liveness testing). Unless --no-sim-check, the projection is
                also cross-validated against full event-driven simulations
                at 64-512 ranks and the agreement recorded in the report
                (gated against the baseline in efficiency points)
  dlsr verify   [--nodes N] [--gpus G] [--steps S] [--scenario NAME]
                run real training under the collective-matching verifier:
                every collective's per-rank signature is cross-checked at
                each rendezvous, fusion launch order is audited against
                the analytic schedule, and crossed nonblocking p2p is
                flagged as deadlock. Requires a `--features verify` build
  dlsr chaos    [--fault NAME] [--nodes N] [--gpus G] [--steps S] [--seed X]
                [--scenario NAME] [--checkpoint-every K]
                run the injected-fault suite (see docs/ROBUSTNESS.md): each
                fault class against a clean baseline, reporting retries,
                backoff, degraded time, checkpoint/restore cost and the
                timeline overhead — and verifying the training math stayed
                bitwise identical. Requires a `--features faults` build.
                Faults: degraded-link | lossy | straggler | rank-failure
                (default: all four)
  dlsr lint     [--json | --sarif] [--root DIR] [--self-test]
                static determinism & hot-path analysis of the workspace
                sources: parses every file, builds the cross-crate call
                graph, and checks wall-clock reads, hot-path allocation,
                determinism taint and collective-protocol divergence
                (see docs/CORRECTNESS.md). Exit 1 = findings, 2 = the
                analyzer itself failed. --self-test runs the seeded
                fixtures instead of the workspace
  dlsr info     calibration anchors and workload facts
  dlsr help     this text

Scenarios: mpi (broken default) | mpi-reg | mpi-opt (the paper's fix) | nccl"
    );
}

fn cmd_train(flags: &HashMap<String, String>) {
    let nodes: usize = get(flags, "nodes", 1);
    let gpus: usize = get(flags, "gpus", 4);
    let topo = ClusterTopology {
        name: format!("cli-{nodes}x{gpus}"),
        nodes,
        gpus_per_node: gpus,
    };
    let world = topo.total_gpus();
    let cfg = RealTrainConfig::builder()
        .steps(get(flags, "steps", 30))
        .global_batch(get(flags, "batch", world.max(4)))
        .augment(flags.contains_key("augment"))
        .warmup_steps(get(flags, "warmup", 0))
        .overlap(!flags.contains_key("sequential"))
        .tune_comm(flags.contains_key("tune-comm"))
        .eval_every(
            flags
                .get("eval-every")
                .map(|v| v.parse().unwrap_or_else(|_| die("bad --eval-every"))),
        )
        .build();
    let sc = scenario(flags);
    println!(
        "training EDSR(tiny) on {world} simulated GPUs ({}) for {} steps...",
        sc.label(),
        cfg.steps
    );
    let res = train_real(
        &topo,
        with_core(with_comm(sc.mpi_config(), flags), flags),
        &cfg,
    );
    println!(
        "loss: {:.4} -> {:.4}",
        res.losses.first().unwrap(),
        res.losses.last().unwrap()
    );
    for (step, p) in &res.psnr_curve {
        println!("  step {step:>4}: held-out PSNR {p:.2} dB");
    }
    println!(
        "held-out PSNR: EDSR {:.2} dB vs bicubic {:.2} dB",
        res.model_psnr, res.bicubic_psnr
    );
    println!("virtual makespan: {:.1} ms", res.makespan * 1e3);
    if flags.contains_key("digest") {
        println!("digest: {:016x}", train_digest(&res));
    }
}

/// FNV-1a over the exact bit patterns of the per-step losses and final
/// parameters: any single-ULP drift in the training math changes it.
fn train_digest(res: &RealTrainResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u32| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for l in &res.losses {
        eat(l.to_bits());
    }
    for p in &res.final_params {
        eat(p.to_bits());
    }
    h
}

fn cmd_simulate(flags: &HashMap<String, String>) {
    let nodes: usize = get(flags, "nodes", 8);
    let steps: usize = get(flags, "steps", 6);
    let batch: usize = get(flags, "batch", 4);
    let sc = scenario(flags);
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(nodes);
    println!(
        "simulating {} steps of {} on {} GPUs under {}...",
        steps,
        w.name,
        topo.total_gpus(),
        sc.label()
    );
    let run = dlsr::cluster::run_training_core(
        &topo,
        sc,
        &w,
        &tensors,
        batch,
        2,
        steps,
        2021,
        sim_core(flags),
    );
    println!("throughput : {:>10.1} img/s", run.images_per_sec);
    println!("efficiency : {:>9.1} %", run.efficiency * 100.0);
    println!("step time  : {:>9.1} ms", run.step_time * 1e3);
    if run.regcache_hit_rate > 0.0 {
        println!("reg cache  : {:>9.1} % hits", run.regcache_hit_rate * 100.0);
    }
    print!("{}", run.profile.render(Collective::Allreduce));
}

/// `dlsr simscale`: benchmark the simulator itself — wall-clock cost of
/// pushing the paper-scale workload through 64–4096 virtual ranks on the
/// event-driven core, against the thread-per-rank baseline.
fn cmd_simscale(flags: &HashMap<String, String>) {
    use dlsr::cluster::simscale;

    let sc = scenario(flags);
    let steps: usize = get(flags, "steps", 4);
    let warmup: usize = get(flags, "warmup", 1);
    let batch: usize = get(flags, "batch", 4);
    let seed: u64 = get(flags, "seed", 2021);
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_simscale.json".to_string());
    let nodes: Vec<usize> = match flags.get("nodes") {
        None => simscale::DEFAULT_NODES.to_vec(),
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --nodes entry: {s}")))
            })
            .collect(),
    };
    if nodes.is_empty() {
        die("--nodes needs at least one node count");
    }
    println!(
        "simulator scaling: {} steps (+{warmup} warmup) of the paper-scale EDSR \
         workload under {}, worlds {:?} ranks",
        steps,
        sc.label(),
        nodes.iter().map(|n| n * 4).collect::<Vec<_>>(),
    );
    let t1 = simscale::single_rank_step_s(sc, batch, warmup, steps, seed);
    let point_line = |label: &str, p: &dlsr::cluster::SimScalePoint| {
        println!(
            "  {label:>8} {:>5} ranks: virtual step {:>8.1} ms, eff {:>5.1} %, \
             wall {:>7.2} s, {:>9.0} rank-steps/s",
            p.world,
            p.virtual_step_s * 1e3,
            p.efficiency * 100.0,
            p.wall_s,
            p.rank_steps_per_s,
        );
    };
    // The smallest sweep world doubles as the speedup criterion of the
    // event-driven rewrite, so its driven and threaded walls are measured
    // as an interleaved best-of-N pair (noise-robust ratio); the rest of
    // the sweep only needs its own best-of-N.
    let (base_point, threaded) =
        simscale::measure_speedup_pair(nodes[0], sc, batch, warmup, steps, seed, t1, 5);
    let mut event = vec![base_point];
    point_line("event", &event[0]);
    for &n in &nodes[1..] {
        let p = simscale::measure_point(
            n,
            sc,
            batch,
            warmup,
            steps,
            seed,
            dlsr_mpi::SimCore::Event,
            t1,
            3,
        );
        point_line("event", &p);
        event.push(p);
    }
    point_line("threaded", &threaded);
    let speedup = event[0].rank_steps_per_s / threaded.rank_steps_per_s.max(1e-9);
    println!(
        "  driven vs threaded at {} ranks: {speedup:.1}x",
        threaded.world
    );
    if event[0].virtual_step_s.to_bits() != threaded.virtual_step_s.to_bits() {
        eprintln!(
            "simscale FAILED: cores disagree on the virtual step at {} ranks: \
             {} vs {}",
            threaded.world, event[0].virtual_step_s, threaded.virtual_step_s
        );
        std::process::exit(1);
    }
    let smoke = flags.contains_key("smoke").then(|| {
        // 4096-rank sanity: one warmup-free step through the full stack.
        let p =
            simscale::measure_point(1024, sc, batch, 0, 1, seed, dlsr_mpi::SimCore::Event, t1, 1);
        point_line("smoke", &p);
        p
    });
    let report = dlsr::cluster::SimScaleReport {
        scenario: sc.label().to_string(),
        batch,
        warmup,
        steps,
        event,
        threaded: Some(threaded),
        speedup_vs_threaded: Some(speedup),
        smoke,
    };
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, report.to_json()).expect("write simscale JSON");
    println!("simscale     : {out}");

    if flags.contains_key("check") {
        check_simscale(&report);
    }
    if let Some(basefile) = flags.get("baseline") {
        let tol: f64 = get(flags, "gate", 10.0);
        let text = std::fs::read_to_string(basefile)
            .unwrap_or_else(|e| die(&format!("cannot read --baseline {basefile}: {e}")));
        let base = dlsr::cluster::SimScaleReport::from_json(&text).unwrap_or_else(|e| die(&e));
        let violations = simscale::gate(&report, &base, tol);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("gate FAILED: {v}");
            }
            std::process::exit(1);
        }
        println!("gate: within {tol}% of {basefile}");
    }
}

/// `simscale --check`: the absolute acceptance criteria, on this machine.
fn check_simscale(report: &dlsr::cluster::SimScaleReport) {
    let mut failed = false;
    // 512-rank Fig 12/13 reproduction must complete in under a minute.
    if let Some(p512) = report.event.iter().find(|p| p.world == 512) {
        if p512.wall_s < 60.0 {
            println!(
                "check: 512-rank run took {:.2} s wall (< 60 s)",
                p512.wall_s
            );
        } else {
            eprintln!(
                "check FAILED: 512-rank run took {:.2} s wall (>= 60 s)",
                p512.wall_s
            );
            failed = true;
        }
    } else {
        eprintln!("check FAILED: no 512-rank point in the sweep");
        failed = true;
    }
    // The event-driven core must beat thread-per-rank by >= 10x.
    match report.speedup_vs_threaded {
        Some(s) if s >= 10.0 => {
            println!("check: driven core is {s:.1}x the threaded baseline (>= 10x)")
        }
        Some(s) => {
            eprintln!("check FAILED: driven core is only {s:.1}x the threaded baseline (< 10x)");
            failed = true;
        }
        None => {
            eprintln!("check FAILED: no threaded baseline measured");
            failed = true;
        }
    }
    if let Some(smoke) = &report.smoke {
        println!(
            "check: {}-rank smoke completed in {:.2} s wall",
            smoke.world, smoke.wall_s
        );
    }
    if failed {
        std::process::exit(1);
    }
}

fn cmd_profile(flags: &HashMap<String, String>) {
    if flags.contains_key("compare") {
        let steps: usize = get(flags, "steps", 100);
        let (w, tensors) = edsr_measured_workload();
        let topo = ClusterTopology::lassen(1);
        println!("profiling {steps} steps on 4 GPUs (default vs MPI-Opt)...");
        let d = run_training(&topo, Scenario::MpiDefault, &w, &tensors, 4, 2, steps, 2021);
        let o = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 2, steps, 2021);
        let rows = compare(&d.profile, &o.profile, Collective::Allreduce);
        print!("{}", render_table(&rows));
        println!(
            "\nthroughput: {:.1} -> {:.1} img/s",
            d.images_per_sec, o.images_per_sec
        );
        return;
    }
    if !dlsr::trace::COMPILED {
        die("this binary was built without the `trace` feature; rebuild with default features");
    }
    let nodes: usize = get(flags, "nodes", 2);
    let steps: usize = get(flags, "steps", 4);
    let sc = scenario(flags);
    let topo = ClusterTopology::lassen(nodes);
    let world = topo.total_gpus();
    let overlap = !flags.contains_key("sequential");
    // Checkpoint by default so the profile exercises the fault/checkpoint
    // layer too — `--check` requires its spans like any other layer.
    let cfg = RealTrainConfig::builder()
        .steps(steps)
        .global_batch(world)
        .overlap(overlap)
        .tune_comm(flags.contains_key("tune-comm"))
        .checkpoint_every(get(flags, "checkpoint-every", 2))
        .build();
    println!(
        "tracing {steps} real EDSR(tiny) training steps on {world} simulated GPUs ({}, {})...",
        sc.label(),
        if overlap { "overlapped" } else { "sequential" }
    );
    dlsr::trace::set_enabled(true);
    dlsr::trace::reset();
    let res = train_real(&topo, with_comm(sc.mpi_config(), flags), &cfg);
    dlsr::trace::set_enabled(false);
    let counters = dlsr::trace::counters_snapshot();
    let mut report = dlsr::trace::report::StepReport::build(&res.trace, &counters).with_context(
        sc.label(),
        world,
        steps,
        res.makespan / steps as f64,
    );
    report.set_regcache(
        res.regcache.hits,
        res.regcache.misses,
        res.regcache.evictions,
    );
    report.attach_critical_path(dlsr::trace::analyze::critical_path(&res.trace, steps));
    std::fs::create_dir_all("results").expect("create results/");
    let sampled = sample_trace(&res.trace, get(flags, "trace-sample", 24));
    let chrome = dlsr::trace::to_timeline(&sampled).to_chrome_trace();
    std::fs::write("results/profile_trace.json", &chrome).expect("write chrome trace");
    std::fs::write("results/profile_report.json", report.to_json()).expect("write step report");
    print!("{}", report.render());
    println!("\nchrome trace : results/profile_trace.json (chrome://tracing or Perfetto)");
    println!("step report  : results/profile_report.json");
    if flags.contains_key("check") {
        check_profile(&res.trace, &report);
        check_overlap_markers(&res.trace, report.world, overlap);
    }
}

/// Keep only the first `n` spans of every `(rank, category)` pair, in
/// recording order — a representative, reviewable chrome export instead of
/// a megabyte-per-step dump. `n == 0` keeps everything. Checks always run
/// on the full in-memory trace; sampling affects only the exported file.
fn sample_trace(events: &[dlsr::trace::TraceEvent], n: usize) -> Vec<dlsr::trace::TraceEvent> {
    if n == 0 {
        return events.to_vec();
    }
    let mut seen: HashMap<(usize, String), usize> = HashMap::new();
    events
        .iter()
        .filter(|e| {
            let k = seen.entry((e.rank, e.cat.clone())).or_insert(0);
            *k += 1;
            *k <= n
        })
        .cloned()
        .collect()
}

/// `--check`, overlap part: in overlap mode every rank's wall-clock
/// timeline must show allreduce launches *interleaved* with backward —
/// some `nn.backward` span ends before a launch starts and another starts
/// after it ends. The sequential path must record no launch markers.
fn check_overlap_markers(events: &[dlsr::trace::TraceEvent], world: usize, overlap: bool) {
    use dlsr::trace::cat;
    let launches: Vec<_> = events.iter().filter(|e| e.cat == cat::AR_LAUNCH).collect();
    if !overlap {
        if !launches.is_empty() {
            eprintln!(
                "check FAILED: sequential run recorded {} allreduce.launch markers",
                launches.len()
            );
            std::process::exit(1);
        }
        println!("check: sequential run recorded no launch markers (as expected)");
        return;
    }
    let mut failed = false;
    for rank in 0..world {
        let bwd: Vec<_> = events
            .iter()
            .filter(|e| e.rank == rank && e.cat == cat::NN_BWD)
            .collect();
        let interleaved = launches.iter().any(|l| {
            l.rank == rank
                && bwd.iter().any(|b| b.end_s <= l.start_s)
                && bwd.iter().any(|b| b.start_s >= l.end_s)
        });
        if !interleaved {
            eprintln!(
                "check FAILED: rank {rank} has no allreduce launch interleaved with backward"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("check: allreduce launches interleave with backward on all {world} ranks");
}

/// `--check`: every instrumented layer must have produced at least one
/// span, and the report must carry the headline counters (CI smoke).
fn check_profile(events: &[dlsr::trace::TraceEvent], report: &dlsr::trace::report::StepReport) {
    use dlsr::trace::cat;
    let mut failed = false;
    for c in [
        cat::GEMM,
        cat::IM2COL,
        cat::NN_FWD,
        cat::NN_BWD,
        cat::NEGOTIATE,
        cat::FUSION,
        cat::ALLREDUCE,
        cat::MPI,
        cat::NET,
        cat::FAULT,
    ] {
        let n = events.iter().filter(|e| e.cat == c).count();
        if n == 0 {
            eprintln!("check FAILED: no `{c}` spans recorded");
            failed = true;
        } else {
            println!("check: {n:>6} `{c}` spans");
        }
    }
    if report.regcache.hits + report.regcache.misses == 0 {
        eprintln!("check FAILED: no registration-cache activity in the report");
        failed = true;
    }
    if report.fusion.groups == 0 {
        eprintln!("check FAILED: no fusion groups counted");
        failed = true;
    }
    if report.faults.checkpoints == 0 {
        eprintln!("check FAILED: no checkpoints counted (checkpoint layer not exercised)");
        failed = true;
    }
    if report.ranks.len() != report.world {
        eprintln!(
            "check FAILED: report covers {} ranks, expected {}",
            report.ranks.len(),
            report.world
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("check: all instrumented layers reported spans");
}

/// `dlsr analyze`: cross-rank critical-path attribution, scaling-efficiency
/// projection and the bench regression gate. See docs/OBSERVABILITY.md.
fn cmd_analyze(flags: &HashMap<String, String>) {
    use dlsr::cluster::analysis;

    if !dlsr::trace::COMPILED {
        die("this binary was built without the `trace` feature; rebuild with default features");
    }
    let nodes: usize = get(flags, "nodes", 2);
    let steps: usize = get(flags, "steps", 4);
    let ckpt: usize = get(flags, "checkpoint-every", 2);
    let slowdown: f64 = get(flags, "slowdown", 1.0);
    let sc = scenario(flags);
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "results/BENCH_analysis.json".to_string());

    // Headline trace: the same 2-node weak-scaling run `dlsr profile`
    // records, walked backward along its happens-before DAG.
    let topo = ClusterTopology::lassen(nodes);
    let world = topo.total_gpus();
    println!(
        "analyzing {steps} traced EDSR(tiny) steps on {world} simulated GPUs ({})...",
        sc.label()
    );
    let mut run = analysis::traced_real_run(&topo, sc, steps, ckpt);
    if slowdown != 1.0 {
        // Stretch the measured timeline — a synthetic regression to prove
        // the gate trips (used by the CI liveness test).
        for e in &mut run.trace {
            e.start_s *= slowdown;
            e.end_s *= slowdown;
        }
        run.makespan *= slowdown;
    }
    let cp = dlsr::trace::analyze::critical_path(&run.trace, steps);
    print!("{}", cp.render());

    let s = steps.max(1) as f64;
    let attribution_per_step = dlsr::trace::analyze::Attribution {
        compute_s: cp.total.compute_s / s,
        exposed_comm_s: cp.total.exposed_comm_s / s,
        straggler_wait_s: cp.total.straggler_wait_s / s,
        fault_s: cp.total.fault_s / s,
        checkpoint_s: cp.total.checkpoint_s / s,
    };

    // Fit the cost model on a checkpoint-free 2-rank run (checkpoints are
    // a policy cost, not a scaling term), then validate the projection
    // against actual 4- and 8-rank runs before trusting it at 512.
    let fit_topo = ClusterTopology {
        name: "fit-1x2".to_string(),
        nodes: 1,
        gpus_per_node: 2,
    };
    let fit_run = analysis::traced_real_run(&fit_topo, sc, steps, 0);
    let (model, _) = analysis::fit_model(&fit_run, sc);
    println!(
        "\ncost model (fit at {} ranks): base {:.3} ms, negotiate {:.1} us, \
         comm {:.1} us/step ({:.1} us hidden by overlap)",
        model.fit_world,
        model.base_s * 1e3,
        model.negotiate_s * 1e6,
        model.comm_total_s * 1e6,
        model.hidden_s * 1e6,
    );
    let validation = if flags.contains_key("no-validate") {
        Vec::new()
    } else {
        analysis::validate(&model, sc, steps, &[4, 8])
    };
    for v in &validation {
        println!(
            "validate @ {:>3} ranks: predicted {:.3} ms, actual {:.3} ms ({:+.1}% error)",
            v.world,
            v.predicted_step_s * 1e3,
            v.actual_step_s * 1e3,
            (v.predicted_step_s / v.actual_step_s - 1.0) * 100.0,
        );
    }
    let projection = analysis::project(&model, &[64, 128, 256, 512]);
    println!("projection (weak scaling, {}):", sc.label());
    for p in &projection {
        println!(
            "  {:>3} ranks: step {:.3} ms, {:>9.1} img/s, efficiency {:>5.1} %",
            p.world,
            p.step_s * 1e3,
            p.images_per_sec,
            p.efficiency * 100.0,
        );
    }

    // Cross-validate the projection machinery against the event-driven
    // simulator at the worlds real training cannot reach: fit the same
    // model from a *simulated* 16-rank trace and hold its extrapolation
    // against actual driven-engine runs at 64-512 ranks.
    let sim = if flags.contains_key("no-sim-check") {
        None
    } else {
        let chk = analysis::sim_check(sc, 4, 1, steps, 4, &[64, 128, 256, 512], 2021);
        println!(
            "projection vs simulation (model fit on a {}-rank simulated trace):",
            chk.fit_world
        );
        for p in &chk.points {
            println!(
                "  {:>3} ranks: predicted {:>8.1} ms vs simulated {:>8.1} ms \
                 ({:+.1}% step error, efficiency {:>5.1}% vs {:>5.1}%, d {:.1} pts)",
                p.world,
                p.predicted_step_s * 1e3,
                p.simulated_step_s * 1e3,
                (p.predicted_step_s / p.simulated_step_s - 1.0) * 100.0,
                p.predicted_eff * 100.0,
                p.simulated_eff * 100.0,
                p.eff_abs_err * 100.0,
            );
        }
        Some(chk)
    };

    let wire_counter = |key: &str| run.counters.get(key).copied().unwrap_or(0.0);
    let areport = analysis::AnalysisReport {
        scenario: sc.label().to_string(),
        world,
        steps,
        measured_step_s: run.makespan / s,
        attribution_per_step,
        model,
        validation,
        projection,
        sim_check: sim,
        wire_bytes: wire_counter(dlsr::trace::report::keys::WIRE_BYTES),
        wire_dense_bytes: wire_counter(dlsr::trace::report::keys::WIRE_DENSE_BYTES),
    };
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, areport.to_json()).expect("write analysis JSON");
    println!("analysis     : {out}");

    if flags.contains_key("check") {
        check_analysis(&cp, &run, &areport);
    }
    if let Some(basefile) = flags.get("baseline") {
        let tol: f64 = get(flags, "gate", 10.0);
        let text = std::fs::read_to_string(basefile)
            .unwrap_or_else(|e| die(&format!("cannot read --baseline {basefile}: {e}")));
        let base = analysis::AnalysisReport::from_json(&text).unwrap_or_else(|e| die(&e));
        let violations = analysis::gate(&areport, &base, tol);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("gate FAILED: {v}");
            }
            std::process::exit(1);
        }
        println!("gate: within {tol}% of {basefile}");
    }
}

/// `analyze --check`: the attribution must account for the measured step
/// time (1% criterion), agree with the step report's independent
/// exposed-comm accounting, and the projection must have survived its
/// small-world validation.
fn check_analysis(
    cp: &dlsr::trace::analyze::CritPath,
    run: &dlsr::cluster::analysis::TracedRun,
    areport: &dlsr::cluster::analysis::AnalysisReport,
) {
    let mut failed = false;
    let sum = cp.total.total();
    if (sum - cp.makespan_s).abs() > 0.01 * cp.makespan_s {
        eprintln!(
            "check FAILED: attribution sums to {:.3} ms but the makespan is {:.3} ms",
            sum * 1e3,
            cp.makespan_s * 1e3
        );
        failed = true;
    } else {
        println!(
            "check: categories sum to the measured step time ({:.3} ms/step)",
            cp.step_time_s() * 1e3
        );
    }
    // Independent cross-check: the step report computes per-rank exposed
    // comm from span overlap, never from the DAG. The critical path's
    // exposed comm must land inside the per-rank envelope (the path can
    // only follow actual ranks; margin covers wait/comm boundary
    // reclassification at sync points).
    let report = dlsr::trace::report::StepReport::build(&run.trace, &run.counters);
    let (lo, hi) = (
        report.skew.exposed_comm.min * 0.5,
        report.skew.exposed_comm.max * 1.5 + 1e-6,
    );
    let exposed = cp.total.exposed_comm_s;
    if exposed < lo || exposed > hi {
        eprintln!(
            "check FAILED: critical-path exposed comm {:.3} ms outside the step report's \
             per-rank envelope [{:.3}, {:.3}] ms",
            exposed * 1e3,
            lo * 1e3,
            hi * 1e3
        );
        failed = true;
    } else {
        println!(
            "check: exposed comm agrees with the step report ({:.3} ms on the path, \
             per-rank mean {:.3} ms)",
            exposed * 1e3,
            report.skew.exposed_comm.mean * 1e3
        );
    }
    for v in &areport.validation {
        if v.rel_err > 0.10 {
            eprintln!(
                "check FAILED: projection off by {:.1}% at {} ranks (>10%)",
                v.rel_err * 100.0,
                v.world
            );
            failed = true;
        }
    }
    if !areport.validation.is_empty() && !failed {
        println!(
            "check: projection validated within 10% at {} world sizes",
            areport.validation.len()
        );
    }
    // Projection-vs-simulation: the analytic model must track the
    // event-driven simulator within 10% up to 256 ranks (512 is recorded
    // but unenforced — the extrapolation frontier).
    if let Some(chk) = &areport.sim_check {
        let mut ok = 0;
        for p in chk.points.iter().filter(|p| p.world <= 256) {
            if p.step_rel_err > 0.10 {
                eprintln!(
                    "check FAILED: projection off the simulation by {:.1}% at {} ranks (>10%)",
                    p.step_rel_err * 100.0,
                    p.world
                );
                failed = true;
            } else {
                ok += 1;
            }
        }
        if !failed {
            println!("check: projection tracks the simulator within 10% at {ok} world sizes");
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// `dlsr lint` — the workspace static analyzer, embedded so the main CLI
/// exposes the same contract as the standalone `dlsr-lint` binary:
/// exit 0 clean, 1 findings, 2 analyzer failure.
fn cmd_lint(flags: &HashMap<String, String>) {
    let root = match flags.get("root") {
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::current_dir()
            .ok()
            .and_then(|d| dlsr_lint::find_root(&d))
            .unwrap_or_else(|| die("could not locate the workspace root (pass --root)")),
    };

    if flags.contains_key("self-test") {
        let results = dlsr_lint::self_test(&root)
            .unwrap_or_else(|e| die(&format!("self-test failed to read fixtures: {e}")));
        let mut failed = false;
        for r in &results {
            let mark = if r.ok { "ok " } else { "FAIL" };
            println!(
                "{mark}  {:<28} expect {:<20} {}",
                r.file, r.expected, r.detail
            );
            failed |= !r.ok;
        }
        if failed {
            eprintln!("lint self-test: a seeded fixture did not trip its rule");
            std::process::exit(1);
        }
        println!("lint self-test: {} fixtures, all rules trip", results.len());
        return;
    }

    // An internal analyzer bug (parser panic on some file) must exit 2, not
    // look like a clean run or a finding.
    let analysis = match std::panic::catch_unwind(|| dlsr_lint::scan_workspace(&root)) {
        Ok(Ok(a)) => a,
        Ok(Err(e)) => die(&format!("lint scan failed: {e}")),
        Err(_) => die("internal analyzer panic"),
    };

    if flags.contains_key("json") {
        print!("{}", dlsr_lint::report::to_json(&analysis));
    } else if flags.contains_key("sarif") {
        print!("{}", dlsr_lint::report::to_sarif(&analysis));
    } else {
        for f in &analysis.findings {
            println!("{f}");
        }
        if analysis.findings.is_empty() {
            println!(
                "dlsr lint: workspace clean ({} files, {} fns, {} call edges, {} rules)",
                analysis.stats.files,
                analysis.stats.fns,
                analysis.stats.edges,
                dlsr_lint::rules::ALL_RULES.len()
            );
        } else {
            eprintln!("dlsr lint: {} violation(s)", analysis.findings.len());
        }
    }
    if !analysis.findings.is_empty() {
        std::process::exit(1);
    }
}

fn cmd_info() {
    let model = KernelCostModel::new(GpuSpec::v100());
    let (edsr, tensors) = edsr_measured_workload();
    let resnet = resnet50_workload();
    println!("device        : {}", model.spec().name);
    println!("EDSR workload : {}", edsr.name);
    println!(
        "  parameters  : {} ({} MB of gradients)",
        edsr.params,
        edsr.grad_bytes() >> 20
    );
    println!("  tensors     : {}", tensors.len());
    println!(
        "  throughput  : {:.1} img/s at batch 4 (paper: 10.3)",
        model.throughput(&edsr, 4, 1).unwrap()
    );
    println!(
        "ResNet-50     : {:.1} img/s at batch 64 (paper: ~360)",
        model.throughput(&resnet, 64, 1).unwrap()
    );
    // show the degradation pipeline works end to end
    let spec = SyntheticImageSpec {
        height: 32,
        width: 32,
        ..Default::default()
    };
    let hr = spec.generate(1, 0);
    let lr = resize::bicubic_downsample(&hr, 2).unwrap();
    println!(
        "data pipeline : HR {:?} -> LR {:?} (bicubic x2)",
        hr.shape().dims(),
        lr.shape().dims()
    );
}

fn cmd_verify(flags: &HashMap<String, String>) {
    if !dlsr_mpi::verify::COMPILED {
        eprintln!(
            "dlsr verify: the collective-matching verifier is compiled out of \
             this binary.\nRebuild with:  cargo run -p dlsr --features verify -- verify"
        );
        std::process::exit(2);
    }
    let nodes: usize = get(flags, "nodes", 1);
    let gpus: usize = get(flags, "gpus", 2);
    let topo = ClusterTopology {
        name: format!("verify-{nodes}x{gpus}"),
        nodes,
        gpus_per_node: gpus,
    };
    let world = topo.total_gpus();
    let cfg = RealTrainConfig::builder()
        .steps(get(flags, "steps", 6))
        .global_batch(world.max(4))
        .build();
    let sc = scenario(flags);
    println!(
        "verifying EDSR(tiny) training on {world} simulated GPUs ({}) for {} steps...",
        sc.label(),
        cfg.steps
    );
    // Any mismatch panics the world with the violation recorded; reaching
    // the summary line below means every rendezvous checked out.
    let res = train_real(&topo, sc.mpi_config(), &cfg);
    let summary = dlsr_mpi::verify::last_summary().expect("verified run stores a summary");
    println!(
        "ok: {} collectives and {} fusion launches cross-checked over {} ranks \
         (final loss {:.4})",
        summary.collectives_checked,
        summary.launches_checked,
        summary.ranks,
        res.losses.last().copied().unwrap_or(f32::NAN),
    );
}

#[cfg(not(feature = "faults"))]
fn cmd_chaos(_flags: &HashMap<String, String>) {
    eprintln!(
        "dlsr chaos: deterministic fault injection is compiled out of this \
         binary.\nRebuild with:  cargo run -p dlsr --features faults -- chaos"
    );
    std::process::exit(2);
}

/// The injected-fault suite: run each chaos scenario against a clean
/// baseline and report what the fault cost — while proving it cost only
/// virtual time, never accuracy.
#[cfg(feature = "faults")]
fn cmd_chaos(flags: &HashMap<String, String>) {
    use std::sync::Arc;

    use dlsr::faults::ChaosScenario;

    let nodes: usize = get(flags, "nodes", 2);
    let gpus: usize = get(flags, "gpus", 2);
    let steps: usize = get(flags, "steps", 10);
    let seed: u64 = get(flags, "seed", 42);
    let topo = ClusterTopology {
        name: format!("chaos-{nodes}x{gpus}"),
        nodes,
        gpus_per_node: gpus,
    };
    let world = topo.total_gpus();
    let sc = scenario(flags);
    let faults: Vec<ChaosScenario> = match flags.get("fault") {
        None => ChaosScenario::ALL.to_vec(),
        Some(name) => vec![name.parse().unwrap_or_else(|e: String| die(&e))],
    };
    let cfg = RealTrainConfig::builder()
        .steps(steps)
        .global_batch(world.max(4))
        .checkpoint_every(get(flags, "checkpoint-every", 3))
        .build();
    println!(
        "chaos suite: EDSR(tiny), {world} simulated GPUs ({}), {steps} steps, \
         checkpoint every {} steps, plan seed {seed}\n",
        sc.label(),
        cfg.checkpoint_every
    );
    let clean = train_real(&topo, sc.mpi_config(), &cfg);
    println!(
        "{:>15} {:>12} {:>10} {:>9} {:>12} {:>12} {:>6}",
        "fault", "makespan", "overhead", "retries", "backoff", "degraded", "math"
    );
    println!(
        "{:>15} {:>12} {:>10} {:>9} {:>12} {:>12} {:>6}",
        "(baseline)",
        format!("{:.1} ms", clean.makespan * 1e3),
        "-",
        clean.comm_stats.retries,
        "-",
        "-",
        "-"
    );
    let mut failed = false;
    for f in faults {
        let plan = f.plan(seed, world, steps);
        let mpi = sc
            .mpi_config()
            .to_builder()
            .fault_plan(Some(Arc::new(plan)))
            .build();
        let res = train_real(&topo, mpi, &cfg);
        let same_math = res.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
            == clean.losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>()
            && res
                .final_params
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>()
                == clean
                    .final_params
                    .iter()
                    .map(|p| p.to_bits())
                    .collect::<Vec<_>>();
        println!(
            "{:>15} {:>12} {:>9.1}% {:>9} {:>12} {:>12} {:>6}",
            f.label(),
            format!("{:.1} ms", res.makespan * 1e3),
            (res.makespan / clean.makespan - 1.0) * 100.0,
            res.comm_stats.retries,
            format!("{:.2} ms", res.comm_stats.backoff_seconds * 1e3),
            format!("{:.2} ms", res.comm_stats.degraded_seconds * 1e3),
            if same_math { "exact" } else { "DRIFT" }
        );
        failed |= !same_math;
    }
    if failed {
        eprintln!("\nchaos FAILED: an injected fault changed the training math");
        std::process::exit(1);
    }
    println!("\nok: every fault class cost only virtual time; the math is bitwise intact");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (flags, positional) = parse_flags(&args);
    match positional.first().map(String::as_str) {
        Some("train") => cmd_train(&flags),
        Some("simulate") => cmd_simulate(&flags),
        Some("simscale") => cmd_simscale(&flags),
        Some("profile") => cmd_profile(&flags),
        Some("analyze") => cmd_analyze(&flags),
        Some("verify") => cmd_verify(&flags),
        Some("chaos") => cmd_chaos(&flags),
        Some("lint") => cmd_lint(&flags),
        Some("info") => cmd_info(),
        Some("help") | None => usage(),
        Some(other) => die(&format!("unknown command `{other}`")),
    }
}
