//! EDSR — Enhanced Deep Super-Resolution network (Lim et al., CVPR-W 2017).
//!
//! Architecture (paper Fig 5b): MeanShift⁻ → head conv → B residual blocks
//! (+ body conv, with a global skip from the head) → upsampler
//! (conv + pixel-shuffle per ×2 stage) → output conv → MeanShift⁺.
//!
//! The scaling study trains the configuration of §IV-C: **32 residual
//! blocks, 64 feature maps, ×2 upscaling, residual scaling 0.1**.

use dlsr_nn::layers::{Conv2d, MeanShift, PixelShuffle, ResBlock};
use dlsr_nn::module::Module;
use dlsr_nn::param::Param;
use dlsr_nn::{Result, Tensor, TensorError};
use dlsr_tensor::conv::Conv2dParams;
use dlsr_tensor::elementwise;

use crate::DIV2K_RGB_MEANS;

/// EDSR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdsrConfig {
    /// Number of residual blocks (paper: 32).
    pub n_resblocks: usize,
    /// Feature-map width (paper: 64; the NTIRE-winning variant uses 256).
    pub n_feats: usize,
    /// Upscaling factor: 2, 3 or 4 (paper trains ×2).
    pub scale: usize,
    /// Residual scaling (paper: 0.1).
    pub res_scale: f32,
    /// Color channels (3 for RGB).
    pub colors: usize,
    /// Apply the DIV2K MeanShift at input/output (EDSR's default). Disable
    /// for non-RGB data or when training on residual targets (VDSR-style
    /// `HR − bicubic↑LR`), where the output must be zero-centered.
    pub mean_shift: bool,
}

impl EdsrConfig {
    /// The configuration the paper trains (§IV-C).
    pub fn paper() -> Self {
        EdsrConfig {
            n_resblocks: 32,
            n_feats: 64,
            scale: 2,
            res_scale: 0.1,
            colors: 3,
            mean_shift: true,
        }
    }

    /// The full-size NTIRE 2017 winner (B=32, F=256) — used by the Table I
    /// harness, where fused gradient messages must reach the 16–64 MB bins.
    pub fn full() -> Self {
        EdsrConfig {
            n_feats: 256,
            ..Self::paper()
        }
    }

    /// A tiny variant that trains in milliseconds on CPU (tests/examples).
    pub fn tiny() -> Self {
        EdsrConfig {
            n_resblocks: 2,
            n_feats: 8,
            ..Self::paper()
        }
    }

    /// Total trainable parameter count (closed form; must agree with the
    /// instantiated model — asserted in tests).
    pub fn num_params(&self) -> usize {
        let k = 3usize * 3;
        let conv = |cin: usize, cout: usize| cin * cout * k + cout;
        let head = conv(self.colors, self.n_feats);
        let body = self.n_resblocks * 2 * conv(self.n_feats, self.n_feats)
            + conv(self.n_feats, self.n_feats);
        let up: usize = upsample_stages(self.scale)
            .iter()
            .map(|&r| conv(self.n_feats, self.n_feats * r * r))
            .sum();
        let tail = conv(self.n_feats, self.colors);
        head + body + up + tail
    }

    /// Gradient payload in bytes (fp32), the quantity Horovod allreduces.
    pub fn grad_bytes(&self) -> usize {
        self.num_params() * 4
    }

    /// Per-parameter `(name, element count)` list in **forward visit
    /// order** (identical to `Edsr::visit_params` traversal), computed in
    /// closed form so scaling harnesses can plan tensor fusion for the
    /// full-size model without allocating it.
    pub fn param_shapes(&self) -> Vec<(String, usize)> {
        const K: usize = 9;
        let f = self.n_feats;
        let mut out: Vec<(String, usize)> = Vec::new();
        let conv = |out: &mut Vec<(String, usize)>, name: &str, cin: usize, cout: usize| {
            out.push((format!("{name}.weight"), cin * cout * K));
            out.push((format!("{name}.bias"), cout));
        };
        conv(&mut out, "head", self.colors, f);
        for i in 0..self.n_resblocks {
            conv(&mut out, &format!("body.{i}.conv1"), f, f);
            conv(&mut out, &format!("body.{i}.conv2"), f, f);
        }
        conv(&mut out, "body_conv", f, f);
        for (i, &r) in upsample_stages(self.scale).iter().enumerate() {
            conv(&mut out, &format!("tail.{i}.conv"), f, f * r * r);
        }
        conv(&mut out, "out_conv", f, self.colors);
        out
    }
}

/// The ×2/×3/×4 upsampler is built from pixel-shuffle stages: ×4 is two ×2
/// stages; ×2 and ×3 are single stages.
fn upsample_stages(scale: usize) -> Vec<usize> {
    match scale {
        2 => vec![2],
        3 => vec![3],
        4 => vec![2, 2],
        _ => panic!("EDSR supports scale 2, 3, 4 (got {scale})"),
    }
}

/// The EDSR network.
pub struct Edsr {
    cfg: EdsrConfig,
    sub_mean: MeanShift,
    add_mean: MeanShift,
    head: Conv2d,
    body: Vec<ResBlock>,
    body_conv: Conv2d,
    tail: Vec<(Conv2d, PixelShuffle)>,
    out_conv: Conv2d,
    /// cached head output for the global skip connection
    skip_cache: Option<Tensor>,
}

impl Edsr {
    /// Build an EDSR with deterministic seeded initialization.
    pub fn new(cfg: EdsrConfig, seed: u64) -> Self {
        let p = Conv2dParams::same(3);
        let f = cfg.n_feats;
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            s
        };
        let head = Conv2d::new("head", cfg.colors, f, 3, p, next());
        let body = (0..cfg.n_resblocks)
            .map(|i| ResBlock::new(&format!("body.{i}"), f, cfg.res_scale, next()))
            .collect();
        let body_conv = Conv2d::new("body_conv", f, f, 3, p, next());
        let tail = upsample_stages(cfg.scale)
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                (
                    Conv2d::new(&format!("tail.{i}.conv"), f, f * r * r, 3, p, next()),
                    PixelShuffle::new(r),
                )
            })
            .collect();
        let out_conv = Conv2d::new("out_conv", f, cfg.colors, 3, p, next());
        Edsr {
            cfg,
            sub_mean: MeanShift::subtract(&DIV2K_RGB_MEANS[..cfg.colors.min(3)]),
            add_mean: MeanShift::add(&DIV2K_RGB_MEANS[..cfg.colors.min(3)]),
            head,
            body,
            body_conv,
            tail,
            out_conv,
            skip_cache: None,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> EdsrConfig {
        self.cfg
    }

    /// Zero the output convolution so the freshly-initialized network is
    /// the zero map — the standard initialization for residual SR training
    /// (`SR = bicubic↑LR + f(LR)` starts exactly at the bicubic baseline
    /// and can only improve from there).
    pub fn zero_output_conv(&mut self) {
        self.out_conv
            .visit_params(&mut |p| p.value.data_mut().fill(0.0));
    }

    fn run(&mut self, x: &Tensor, train: bool) -> Result<Tensor> {
        let (_, c, _, _) = x.shape().as_nchw()?;
        if c != self.cfg.colors {
            return Err(TensorError::ShapeMismatch {
                expected: vec![self.cfg.colors],
                got: vec![c],
                context: "Edsr input channels",
            });
        }
        let fwd = |m: &mut dyn Module, t: &Tensor| if train { m.forward(t) } else { m.predict(t) };
        let x = if self.cfg.mean_shift {
            fwd(&mut self.sub_mean, x)?
        } else {
            x.clone()
        };
        let head_out = fwd(&mut self.head, &x)?;
        let mut h = head_out.clone();
        for b in &mut self.body {
            h = fwd(b, &h)?;
        }
        h = fwd(&mut self.body_conv, &h)?;
        // global skip: body output + head output
        h = elementwise::add(&h, &head_out)?;
        if train {
            self.skip_cache = Some(head_out);
        }
        for (conv, shuf) in &mut self.tail {
            h = fwd(conv, &h)?;
            h = fwd(shuf, &h)?;
        }
        let h = fwd(&mut self.out_conv, &h)?;
        if self.cfg.mean_shift {
            fwd(&mut self.add_mean, &h)
        } else {
            Ok(h)
        }
    }
}

impl Module for Edsr {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.run(x, true)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g = self.add_mean.backward(grad_out)?;
        let mut g = self.out_conv.backward(&g)?;
        for (conv, shuf) in self.tail.iter_mut().rev() {
            g = shuf.backward(&g)?;
            g = conv.backward(&g)?;
        }
        // split at the global skip: gradient flows both into the body chain
        // and directly back to the head output.
        let skip_grad = g.clone();
        let _ = self
            .skip_cache
            .take()
            .expect("Edsr::backward called without forward");
        let mut g = self.body_conv.backward(&g)?;
        for b in self.body.iter_mut().rev() {
            g = b.backward(&g)?;
        }
        let g = elementwise::add(&g, &skip_grad)?;
        let g = self.head.backward(&g)?;
        self.sub_mean.backward(&g)
    }

    fn backward_with_hook(
        &mut self,
        grad_out: &Tensor,
        hook: &mut dyn FnMut(&mut Param),
    ) -> Result<Tensor> {
        // Mirror of `backward` with readiness hooks on every param-bearing
        // child: hooks fire in exact reverse `visit_params` order.
        let g = self.add_mean.backward(grad_out)?;
        let mut g = self.out_conv.backward_with_hook(&g, hook)?;
        for (conv, shuf) in self.tail.iter_mut().rev() {
            g = shuf.backward(&g)?;
            g = conv.backward_with_hook(&g, hook)?;
        }
        let skip_grad = g.clone();
        let _ = self
            .skip_cache
            .take()
            .expect("Edsr::backward called without forward");
        let mut g = self.body_conv.backward_with_hook(&g, hook)?;
        for b in self.body.iter_mut().rev() {
            g = b.backward_with_hook(&g, hook)?;
        }
        let g = elementwise::add(&g, &skip_grad)?;
        let g = self.head.backward_with_hook(&g, hook)?;
        self.sub_mean.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.head.visit_params(f);
        for b in &mut self.body {
            b.visit_params(f);
        }
        self.body_conv.visit_params(f);
        for (conv, _) in &mut self.tail {
            conv.visit_params(f);
        }
        self.out_conv.visit_params(f);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.run(x, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_nn::module::ModuleExt;
    use dlsr_tensor::init;

    #[test]
    fn output_shape_is_upscaled() {
        for scale in [2usize, 3, 4] {
            let cfg = EdsrConfig {
                scale,
                ..EdsrConfig::tiny()
            };
            let mut m = Edsr::new(cfg, 1);
            let x = init::uniform([1, 3, 8, 6], 0.0, 1.0, 2);
            let y = m.forward(&x).unwrap();
            assert_eq!(y.shape().dims(), &[1, 3, 8 * scale, 6 * scale]);
        }
    }

    #[test]
    fn param_shapes_match_instance_traversal() {
        let cfg = EdsrConfig::tiny();
        let mut m = Edsr::new(cfg, 1);
        let mut actual = Vec::new();
        m.visit_params(&mut |p| actual.push((p.name.clone(), p.numel())));
        assert_eq!(cfg.param_shapes(), actual);
        // and for the full-size config, the totals agree with num_params
        let full = EdsrConfig::full();
        let total: usize = full.param_shapes().iter().map(|(_, n)| n).sum();
        assert_eq!(total, full.num_params());
    }

    #[test]
    fn closed_form_param_count_matches_instance() {
        for cfg in [
            EdsrConfig::tiny(),
            EdsrConfig {
                n_resblocks: 3,
                n_feats: 12,
                scale: 4,
                ..EdsrConfig::paper()
            },
        ] {
            let mut m = Edsr::new(cfg, 1);
            assert_eq!(m.num_params(), cfg.num_params(), "cfg {cfg:?}");
        }
    }

    #[test]
    fn paper_config_dimensions() {
        let cfg = EdsrConfig::paper();
        assert_eq!(cfg.n_resblocks, 32);
        assert_eq!(cfg.n_feats, 64);
        assert_eq!(cfg.scale, 2);
        // ~2.5M params ≈ 10 MB of gradients
        let params = cfg.num_params();
        assert!((2_000_000..3_000_000).contains(&params), "params {params}");
        // full-size variant lands in the tens of MB (Table I bins)
        assert!(EdsrConfig::full().grad_bytes() > 100 << 20);
    }

    #[test]
    fn backward_produces_input_gradient_of_input_shape() {
        let mut m = Edsr::new(EdsrConfig::tiny(), 3);
        let x = init::uniform([2, 3, 6, 6], 0.0, 1.0, 4);
        let y = m.forward(&x).unwrap();
        let g = m.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape().dims(), x.shape().dims());
    }

    #[test]
    fn one_adam_step_reduces_l1_loss() {
        use dlsr_nn::loss::l1_loss;
        use dlsr_nn::optim::{Adam, Optimizer};
        let mut m = Edsr::new(EdsrConfig::tiny(), 5);
        let lr = init::uniform([1, 3, 6, 6], 0.0, 1.0, 6);
        let hr = init::uniform([1, 3, 12, 12], 0.0, 1.0, 7);
        let mut opt = Adam::new(1e-3);
        let pred = m.forward(&lr).unwrap();
        let (loss0, grad) = l1_loss(&pred, &hr).unwrap();
        m.backward(&grad).unwrap();
        opt.step(&mut m);
        let pred1 = m.predict(&lr).unwrap();
        let (loss1, _) = l1_loss(&pred1, &hr).unwrap();
        assert!(loss1 < loss0, "loss did not decrease: {loss0} -> {loss1}");
    }

    #[test]
    fn wrong_channel_count_is_error() {
        let mut m = Edsr::new(EdsrConfig::tiny(), 1);
        assert!(m.forward(&Tensor::zeros([1, 1, 8, 8])).is_err());
    }

    #[test]
    fn backward_with_hook_matches_backward_bitwise_and_fires_all_params() {
        let x = init::uniform([1, 3, 6, 6], 0.0, 1.0, 8);
        let mut plain = Edsr::new(EdsrConfig::tiny(), 9);
        let y = plain.forward(&x).unwrap();
        let gy = init::uniform(y.shape().clone(), -1.0, 1.0, 10);
        let g_plain = plain.backward(&gy).unwrap();
        let plain_grads = plain.flatten_grads();

        let mut hooked = Edsr::new(EdsrConfig::tiny(), 9);
        hooked.forward(&x).unwrap();
        let mut fired = Vec::new();
        let g_hooked = hooked
            .backward_with_hook(&gy, &mut |p| fired.push(p.name.clone()))
            .unwrap();
        assert_eq!(g_plain.data(), g_hooked.data());
        assert_eq!(hooked.flatten_grads(), plain_grads);

        // hooks fire once per param, in exact reverse visit order
        let mut visit = Vec::new();
        hooked.visit_params(&mut |p| visit.push(p.name.clone()));
        visit.reverse();
        assert_eq!(fired, visit);
    }
}
