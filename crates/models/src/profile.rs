//! Closed-form model accounting: parameters, FLOPs, activation footprint and
//! kernel counts per training sample. These numbers drive the simulated-GPU
//! cost model (`dlsr-gpu`) and the Fig 1 / Fig 9 harnesses without needing
//! to instantiate full-size models in host memory.
//!
//! Conventions:
//! - conv FLOPs = `2·k²·C_in·C_out·H_out·W_out` (multiply–add = 2 FLOPs),
//! - backward ≈ 2× forward FLOPs (grad-input + grad-weight GEMMs), so a
//!   training step costs ≈ 3× forward — the standard estimate,
//! - activation footprint counts every layer output that must be retained
//!   for backward, in elements (4 bytes each in fp32).

use serde::{Deserialize, Serialize};

use crate::edsr::EdsrConfig;
use crate::resnet::ResNetConfig;

/// Per-sample compute/memory profile of a model at a given input size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Human-readable identifier, e.g. `"EDSR(B32,F64,x2)@96x96"`.
    pub name: String,
    /// Trainable parameter count.
    pub params: usize,
    /// Forward FLOPs per sample.
    pub fwd_flops: u64,
    /// Activation elements retained per sample for backward.
    pub activation_elems: u64,
    /// Number of device kernels launched per sample forward pass
    /// (backward launches ≈ 2× more). Drives launch-overhead costs.
    pub kernels: u32,
}

impl ModelProfile {
    /// Training FLOPs per sample (forward + backward ≈ 3× forward).
    pub fn train_flops(&self) -> u64 {
        self.fwd_flops * 3
    }

    /// Gradient payload in bytes (fp32) — what Horovod allreduces per step.
    pub fn grad_bytes(&self) -> usize {
        self.params * 4
    }

    /// Persistent device memory in bytes: parameters + gradients + Adam
    /// moments (fp32 each → 16 bytes per parameter).
    pub fn persistent_bytes(&self) -> usize {
        self.params * 16
    }

    /// Activation memory in bytes per sample: forward caches (4 bytes per
    /// element) plus ~50 % for backward workspace — calibrated so known
    /// batch ceilings hold (ResNet-50 fp32 fits batch 64–96 on a 16 GB
    /// V100; EDSR F=256 OOMs around batch 32, Fig 9).
    pub fn activation_bytes_per_sample(&self) -> usize {
        self.activation_elems as usize * 6
    }
}

/// Incremental accounting walker.
struct Accounter {
    params: usize,
    flops: u64,
    acts: u64,
    kernels: u32,
    h: usize,
    w: usize,
    c: usize,
}

impl Accounter {
    fn new(c: usize, h: usize, w: usize) -> Self {
        Accounter {
            params: 0,
            flops: 0,
            acts: 0,
            kernels: 0,
            h,
            w,
            c,
        }
    }

    fn conv(&mut self, c_out: usize, k: usize, stride: usize, padding: usize, bias: bool) {
        let h_out = (self.h + 2 * padding - k) / stride + 1;
        let w_out = (self.w + 2 * padding - k) / stride + 1;
        self.flops += 2 * (k * k * self.c * c_out * h_out * w_out) as u64;
        self.params += k * k * self.c * c_out + if bias { c_out } else { 0 };
        self.acts += (c_out * h_out * w_out) as u64;
        self.kernels += 1;
        self.c = c_out;
        self.h = h_out;
        self.w = w_out;
    }

    fn elementwise(&mut self) {
        // ReLU / add / scale: 1 FLOP per element, output retained
        self.flops += (self.c * self.h * self.w) as u64;
        self.acts += (self.c * self.h * self.w) as u64;
        self.kernels += 1;
    }

    fn batchnorm(&mut self) {
        self.flops += 4 * (self.c * self.h * self.w) as u64;
        self.params += 2 * self.c;
        self.acts += (self.c * self.h * self.w) as u64;
        self.kernels += 1;
    }

    fn pixel_shuffle(&mut self, r: usize) {
        self.c /= r * r;
        self.h *= r;
        self.w *= r;
        self.acts += (self.c * self.h * self.w) as u64;
        self.kernels += 1;
    }

    fn max_pool(&mut self, k: usize, stride: usize) {
        self.h = (self.h - k) / stride + 1;
        self.w = (self.w - k) / stride + 1;
        self.flops += (k * k * self.c * self.h * self.w) as u64;
        self.acts += (self.c * self.h * self.w) as u64;
        self.kernels += 1;
    }

    fn global_avg_pool(&mut self) {
        self.flops += (self.c * self.h * self.w) as u64;
        self.h = 1;
        self.w = 1;
        self.acts += self.c as u64;
        self.kernels += 1;
    }

    fn linear(&mut self, out: usize) {
        self.flops += 2 * (self.c * out) as u64;
        self.params += self.c * out + out;
        self.acts += out as u64;
        self.kernels += 1;
        self.c = out;
    }
}

/// Profile EDSR at an LR patch size (paper §IV-C trains LR 96×96 patches
/// for ×2 — the EDSR reference implementation's `--patch_size 192` is the
/// HR extent).
pub fn edsr_profile(cfg: &EdsrConfig, lr_h: usize, lr_w: usize) -> ModelProfile {
    let mut a = Accounter::new(cfg.colors, lr_h, lr_w);
    a.elementwise(); // sub_mean
    a.conv(cfg.n_feats, 3, 1, 1, true); // head
    for _ in 0..cfg.n_resblocks {
        a.conv(cfg.n_feats, 3, 1, 1, true);
        a.elementwise(); // relu
        a.conv(cfg.n_feats, 3, 1, 1, true);
        a.elementwise(); // scale + skip add
    }
    a.conv(cfg.n_feats, 3, 1, 1, true); // body conv
    a.elementwise(); // global skip add
    let stages: &[usize] = match cfg.scale {
        2 => &[2],
        3 => &[3],
        4 => &[2, 2],
        _ => panic!("unsupported scale"),
    };
    for &r in stages {
        a.conv(cfg.n_feats * r * r, 3, 1, 1, true);
        a.pixel_shuffle(r);
    }
    a.conv(cfg.colors, 3, 1, 1, true); // out conv
    a.elementwise(); // add_mean
    ModelProfile {
        name: format!(
            "EDSR(B{},F{},x{})@{}x{}",
            cfg.n_resblocks, cfg.n_feats, cfg.scale, lr_h, lr_w
        ),
        params: a.params,
        fwd_flops: a.flops,
        activation_elems: a.acts,
        kernels: a.kernels,
    }
}

/// Profile a ResNet at an input resolution (ImageNet: 224×224).
pub fn resnet_profile(cfg: &ResNetConfig, h: usize, w: usize) -> ModelProfile {
    let mut a = Accounter::new(3, h, w);
    a.conv(cfg.base_width, 7, 2, 3, false); // stem
    a.batchnorm();
    a.elementwise();
    a.max_pool(3, 2);
    let mut c_in = cfg.base_width;
    for (stage, &count) in cfg.stages.iter().enumerate() {
        let mid = cfg.base_width << stage;
        let c_out = mid * 4;
        for i in 0..count {
            let stride = if stage > 0 && i == 0 { 2 } else { 1 };
            let (h0, w0, _) = (a.h, a.w, a.c);
            a.conv(mid, 1, 1, 0, false);
            a.batchnorm();
            a.elementwise();
            a.conv(mid, 3, stride, 1, false);
            a.batchnorm();
            a.elementwise();
            a.conv(c_out, 1, 1, 0, false);
            a.batchnorm();
            if c_in != c_out || stride != 1 {
                // downsample conv on the skip path from the block input
                let (hc, wc, cc) = (a.h, a.w, a.c);
                a.h = h0;
                a.w = w0;
                a.c = c_in;
                a.conv(c_out, 1, stride, 0, false);
                a.batchnorm();
                a.h = hc;
                a.w = wc;
                a.c = cc;
            }
            a.elementwise(); // add + relu
            c_in = c_out;
        }
    }
    a.global_avg_pool();
    a.linear(cfg.classes);
    ModelProfile {
        name: format!(
            "ResNet(stages{:?},w{})@{}x{}",
            cfg.stages, cfg.base_width, h, w
        ),
        params: a.params,
        fwd_flops: a.flops,
        activation_elems: a.acts,
        kernels: a.kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_nn::module::ModuleExt;

    #[test]
    fn edsr_profile_params_match_instance() {
        let cfg = EdsrConfig::tiny();
        let prof = edsr_profile(&cfg, 8, 8);
        let mut m = crate::Edsr::new(cfg, 1);
        assert_eq!(prof.params, m.num_params());
        assert_eq!(prof.params, cfg.num_params());
    }

    #[test]
    fn resnet_profile_params_match_instance() {
        let cfg = ResNetConfig::tiny();
        let prof = resnet_profile(&cfg, 64, 64);
        let mut m = crate::ResNet::new(cfg, 1);
        assert_eq!(prof.params, m.num_params());
    }

    #[test]
    fn resnet50_flops_near_published_4_1_gmacs() {
        // Published "4.1 GFLOPs" for ResNet-50 counts multiply–adds; with
        // the 2-FLOPs-per-MAC convention used here that is ≈ 8.2 GFLOPs.
        let prof = resnet_profile(&ResNetConfig::resnet50(), 224, 224);
        let gf = prof.fwd_flops as f64 / 1e9;
        assert!((7.4..8.8).contains(&gf), "ResNet-50 fwd GFLOPs {gf}");
        assert!((25_000_000..26_200_000).contains(&prof.params));
    }

    #[test]
    fn edsr_paper_config_flops_scale_quadratically_with_patch() {
        let cfg = EdsrConfig::paper();
        let small = edsr_profile(&cfg, 48, 48);
        let large = edsr_profile(&cfg, 96, 96);
        let ratio = large.fwd_flops as f64 / small.fwd_flops as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
        // at 96×96 LR, EDSR forward is tens of GFLOPs — the paper's point
        // that SR models are far more compute-intensive than classification
        let gf = large.fwd_flops as f64 / 1e9;
        assert!(gf > 40.0, "EDSR fwd GFLOPs {gf}");
    }

    #[test]
    fn edsr_is_heavier_than_resnet_per_sample() {
        // Fig 1's motivation: EDSR ≈ 35× fewer images/sec than ResNet-50.
        let edsr = edsr_profile(&EdsrConfig::paper(), 96, 96);
        let rn = resnet_profile(&ResNetConfig::resnet50(), 224, 224);
        assert!(edsr.fwd_flops > 4 * rn.fwd_flops);
        assert!(edsr.activation_elems > rn.activation_elems);
    }

    #[test]
    fn grad_bytes_and_persistent_bytes() {
        let p = ModelProfile {
            name: "x".into(),
            params: 100,
            fwd_flops: 1,
            activation_elems: 10,
            kernels: 1,
        };
        assert_eq!(p.grad_bytes(), 400);
        assert_eq!(p.persistent_bytes(), 1600);
        assert_eq!(p.activation_bytes_per_sample(), 60);
        assert_eq!(p.train_flops(), 3);
    }
}
