//! VDSR (Kim et al. 2016) — "Accurate Image Super-Resolution Using Very
//! Deep Convolutional Networks". The architectural midpoint between SRCNN
//! and EDSR in the lineage §II-E sketches: a deep plain conv stack that
//! predicts the **residual over the bicubic-upsampled input** (the global
//! residual learning that also powers this workspace's fast-converging
//! training demos).

use dlsr_nn::layers::{Conv2d, ReLU};
use dlsr_nn::module::Module;
use dlsr_nn::param::Param;
use dlsr_nn::{Result, Tensor};
use dlsr_tensor::conv::Conv2dParams;
use dlsr_tensor::elementwise;

/// The VDSR network. Input is the bicubic-upsampled LR image (HR extent);
/// output is `input + residual` — the skip is part of the architecture.
pub struct Vdsr {
    layers: Vec<(Conv2d, ReLU)>,
    out_conv: Conv2d,
}

impl Vdsr {
    /// VDSR with `depth` conv layers (the paper uses 20) of `feats`
    /// channels (paper: 64).
    pub fn new(depth: usize, feats: usize, colors: usize, seed: u64) -> Self {
        assert!(depth >= 2, "VDSR needs at least input + output layers");
        let p = Conv2dParams::same(3);
        let mut layers = Vec::with_capacity(depth - 1);
        let mut c_in = colors;
        for i in 0..depth - 1 {
            layers.push((
                Conv2d::new(&format!("layer{i}"), c_in, feats, 3, p, seed + i as u64),
                ReLU::new(),
            ));
            c_in = feats;
        }
        let mut out_conv = Conv2d::new("out", feats, colors, 3, p, seed + depth as u64);
        // zero-init the output conv: the network starts as the identity map
        // over its bicubic input, which is what makes residual training
        // stable from step one
        out_conv.visit_params(&mut |p: &mut Param| p.value.data_mut().fill(0.0));
        Vdsr { layers, out_conv }
    }

    /// The standard 20-layer VDSR.
    pub fn vdsr20(colors: usize, seed: u64) -> Self {
        Self::new(20, 64, colors, seed)
    }
}

impl Module for Vdsr {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for (conv, relu) in &mut self.layers {
            h = relu.forward(&conv.forward(&h)?)?;
        }
        let residual = self.out_conv.forward(&h)?;
        elementwise::add(x, &residual)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = self.out_conv.backward(grad_out)?;
        for (conv, relu) in self.layers.iter_mut().rev() {
            g = relu.backward(&g)?;
            g = conv.backward(&g)?;
        }
        // the architectural skip adds the output gradient to the input path
        elementwise::add(&g, grad_out)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for (conv, _) in &mut self.layers {
            conv.visit_params(f);
        }
        self.out_conv.visit_params(f);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for (conv, relu) in &mut self.layers {
            h = relu.predict(&conv.predict(&h)?)?;
        }
        let residual = self.out_conv.predict(&h)?;
        elementwise::add(x, &residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_nn::module::ModuleExt;
    use dlsr_tensor::init;

    #[test]
    fn starts_as_the_identity_map() {
        let mut m = Vdsr::new(4, 8, 3, 1);
        let x = init::uniform([1, 3, 8, 8], 0.0, 1.0, 2);
        let y = m.predict(&x).unwrap();
        assert_eq!(y, x, "zero-init output conv must make VDSR the identity");
    }

    #[test]
    fn preserves_spatial_extent() {
        let mut m = Vdsr::new(3, 6, 1, 3);
        let x = init::uniform([2, 1, 10, 12], 0.0, 1.0, 4);
        assert_eq!(m.forward(&x).unwrap().shape().dims(), x.shape().dims());
    }

    #[test]
    fn vdsr20_has_the_published_depth() {
        let mut m = Vdsr::vdsr20(3, 1);
        // 19 hidden convs + output conv
        let params = m.param_summary();
        assert_eq!(params.len(), 20 * 2); // weight + bias each
                                          // published VDSR: ~665k params (20 layers, 64 feats, RGB in/out)
        let n = m.num_params();
        assert!((600_000..700_000).contains(&n), "params {n}");
    }

    #[test]
    fn one_step_reduces_residual_loss() {
        use dlsr_nn::loss::l1_loss;
        use dlsr_nn::optim::{Adam, Optimizer};
        let mut m = Vdsr::new(3, 8, 1, 5);
        let x = init::uniform([1, 1, 8, 8], 0.0, 1.0, 6);
        let target = init::uniform([1, 1, 8, 8], 0.0, 1.0, 7);
        let mut opt = Adam::new(1e-2);
        let y = m.forward(&x).unwrap();
        let (l0, g) = l1_loss(&y, &target).unwrap();
        m.backward(&g).unwrap();
        opt.step(&mut m);
        for _ in 0..5 {
            let y = m.forward(&x).unwrap();
            let (_, g) = l1_loss(&y, &target).unwrap();
            m.backward(&g).unwrap();
            opt.step(&mut m);
        }
        let (l1, _) = l1_loss(&m.predict(&x).unwrap(), &target).unwrap();
        assert!(l1 < l0, "{l0} -> {l1}");
    }

    #[test]
    fn backward_matches_finite_differences_through_the_skip() {
        let mut m = Vdsr::new(3, 4, 1, 9);
        // give the output conv real weights so the residual path carries
        // gradient as well as the skip
        m.out_conv.visit_params(&mut |p| {
            if p.name.contains("weight") {
                p.value = init::uniform(p.value.shape().clone(), -0.1, 0.1, 11);
            }
        });
        let x = init::uniform([1, 1, 5, 5], 0.0, 1.0, 10);
        let y = m.forward(&x).unwrap();
        let gy = Tensor::ones(y.shape().clone());
        let gx = m.backward(&gy).unwrap();
        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 13, 24] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = m.predict(&xp).unwrap().data().iter().sum();
            let lm: f32 = m.predict(&xm).unwrap().data().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (gx.data()[idx] - fd).abs() < 3e-2,
                "{} vs {fd}",
                gx.data()[idx]
            );
        }
    }
}
