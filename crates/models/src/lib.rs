//! `dlsr-models` — the model zoo of the workspace.
//!
//! - [`edsr`]: the paper's training target (Enhanced Deep Super-Resolution,
//!   Lim et al. 2017), configurable in depth/width/scale,
//! - [`srcnn`]: the early CNN-based SR baseline (§II-E),
//! - [`vdsr`]: the deep residual-over-bicubic network between them,
//! - [`srresnet`]: the BN-carrying predecessor EDSR simplifies (Fig 5a),
//! - [`resnet`]: ResNet-50, the image-classification comparator of Fig 1,
//! - [`profile`]: closed-form parameter/FLOP/activation accounting that
//!   drives the simulated-GPU cost model without instantiating full-size
//!   models.

#![forbid(unsafe_code)]
pub mod edsr;
pub mod profile;
pub mod resnet;
pub mod srcnn;
pub mod srresnet;
pub mod vdsr;

pub use edsr::{Edsr, EdsrConfig};
pub use profile::ModelProfile;
pub use resnet::{ResNet, ResNetConfig};
pub use srcnn::Srcnn;
pub use srresnet::SrResNet;
pub use vdsr::Vdsr;

/// DIV2K RGB channel means (images in `[0,1]`) used by EDSR MeanShift.
pub const DIV2K_RGB_MEANS: [f32; 3] = [0.4488, 0.4371, 0.4040];
