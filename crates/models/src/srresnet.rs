//! SRResNet (Ledig et al. 2017) — the residual SR network EDSR simplifies.
//! Its residual blocks carry batch normalization (paper Fig 5a, middle
//! column); EDSR removes BN, which both speeds training and lifts PSNR.
//! Included so the workspace can ablate exactly that architectural choice.

use dlsr_nn::layers::{BatchNorm2d, Conv2d, PixelShuffle, ReLU};
use dlsr_nn::module::Module;
use dlsr_nn::param::Param;
use dlsr_nn::{Result, Tensor};
use dlsr_tensor::conv::Conv2dParams;
use dlsr_tensor::elementwise;

/// SRResNet residual block: conv → BN → ReLU → conv → BN, plus skip.
struct SrResBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu: ReLU,
    conv2: Conv2d,
    bn2: BatchNorm2d,
}

impl SrResBlock {
    fn new(name: &str, f: usize, seed: u64) -> Self {
        let p = Conv2dParams::same(3);
        SrResBlock {
            conv1: Conv2d::new_no_bias(&format!("{name}.conv1"), f, f, 3, p, seed),
            bn1: BatchNorm2d::new(&format!("{name}.bn1"), f),
            relu: ReLU::new(),
            conv2: Conv2d::new_no_bias(&format!("{name}.conv2"), f, f, 3, p, seed + 1),
            bn2: BatchNorm2d::new(&format!("{name}.bn2"), f),
        }
    }
}

impl Module for SrResBlock {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.bn1.forward(&self.conv1.forward(x)?)?;
        let h = self.relu.forward(&h)?;
        let h = self.bn2.forward(&self.conv2.forward(&h)?)?;
        elementwise::add(x, &h)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g = self.bn2.backward(grad_out)?;
        let g = self.conv2.backward(&g)?;
        let g = self.relu.backward(&g)?;
        let g = self.bn1.backward(&g)?;
        let g = self.conv1.backward(&g)?;
        elementwise::add(grad_out, &g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.bn1.predict(&self.conv1.predict(x)?)?;
        let h = self.relu.predict(&h)?;
        let h = self.bn2.predict(&self.conv2.predict(&h)?)?;
        elementwise::add(x, &h)
    }
}

/// SRResNet generator (no adversarial loss here — the paper compares
/// architectures, not GAN training).
pub struct SrResNet {
    head: Conv2d,
    relu: ReLU,
    body: Vec<SrResBlock>,
    tail_conv: Conv2d,
    shuffle: PixelShuffle,
    out_conv: Conv2d,
}

impl SrResNet {
    /// SRResNet with `blocks` residual blocks over `feats` features, ×2.
    pub fn new(blocks: usize, feats: usize, colors: usize, seed: u64) -> Self {
        let p = Conv2dParams::same(3);
        SrResNet {
            head: Conv2d::new("head", colors, feats, 3, p, seed),
            relu: ReLU::new(),
            body: (0..blocks)
                .map(|i| SrResBlock::new(&format!("body.{i}"), feats, seed + 10 + 2 * i as u64))
                .collect(),
            tail_conv: Conv2d::new("tail", feats, feats * 4, 3, p, seed + 1),
            shuffle: PixelShuffle::new(2),
            out_conv: Conv2d::new("out", feats, colors, 3, p, seed + 2),
        }
    }
}

impl Module for SrResNet {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = self.relu.forward(&self.head.forward(x)?)?;
        for b in &mut self.body {
            h = b.forward(&h)?;
        }
        let h = self.tail_conv.forward(&h)?;
        let h = self.shuffle.forward(&h)?;
        self.out_conv.forward(&h)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g = self.out_conv.backward(grad_out)?;
        let g = self.shuffle.backward(&g)?;
        let mut g = self.tail_conv.backward(&g)?;
        for b in self.body.iter_mut().rev() {
            g = b.backward(&g)?;
        }
        let g = self.relu.backward(&g)?;
        self.head.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.head.visit_params(f);
        for b in &mut self.body {
            b.visit_params(f);
        }
        self.tail_conv.visit_params(f);
        self.out_conv.visit_params(f);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = self.relu.predict(&self.head.predict(x)?)?;
        for b in &mut self.body {
            h = b.predict(&h)?;
        }
        let h = self.tail_conv.predict(&h)?;
        let h = self.shuffle.predict(&h)?;
        self.out_conv.predict(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_tensor::init;

    #[test]
    fn upsamples_by_two() {
        let mut m = SrResNet::new(2, 8, 3, 1);
        let x = init::uniform([1, 3, 6, 6], 0.0, 1.0, 2);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3, 12, 12]);
    }

    #[test]
    fn backward_runs_and_shapes_match() {
        let mut m = SrResNet::new(1, 4, 3, 3);
        let x = init::uniform([2, 3, 4, 4], 0.0, 1.0, 4);
        let y = m.forward(&x).unwrap();
        let g = m.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape().dims(), x.shape().dims());
    }

    #[test]
    fn has_more_params_per_block_than_edsr_block_due_to_bn() {
        use dlsr_nn::module::ModuleExt;
        let mut sr_block = SrResBlock::new("b", 8, 1);
        let mut edsr_block = dlsr_nn::layers::ResBlock::new("b", 8, 0.1, 1);
        // BN γ/β add 4·f params; EDSR convs carry biases (2·f) instead.
        assert!(sr_block.num_params() > edsr_block.num_params());
    }
}
