//! SRCNN (Dong et al. 2014) — the earliest CNN super-resolution model,
//! included as the classical DL baseline of §II-E. SRCNN operates on a
//! bicubic-upsampled input (it refines rather than upsamples).

use dlsr_nn::layers::{Conv2d, ReLU};
use dlsr_nn::module::Module;
use dlsr_nn::param::Param;
use dlsr_nn::{Result, Tensor};
use dlsr_tensor::conv::Conv2dParams;

/// The standard 3-layer SRCNN (9-1-5 configuration, 64/32 features).
pub struct Srcnn {
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    relu1: ReLU,
    relu2: ReLU,
}

impl Srcnn {
    /// Build with seeded initialization.
    pub fn new(colors: usize, seed: u64) -> Self {
        Srcnn {
            conv1: Conv2d::new("conv1", colors, 64, 9, Conv2dParams::same(9), seed),
            conv2: Conv2d::new("conv2", 64, 32, 1, Conv2dParams::same(1), seed + 1),
            conv3: Conv2d::new("conv3", 32, colors, 5, Conv2dParams::same(5), seed + 2),
            relu1: ReLU::new(),
            relu2: ReLU::new(),
        }
    }
}

impl Module for Srcnn {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.relu1.forward(&self.conv1.forward(x)?)?;
        let h = self.relu2.forward(&self.conv2.forward(&h)?)?;
        self.conv3.forward(&h)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g = self.conv3.backward(grad_out)?;
        let g = self.relu2.backward(&g)?;
        let g = self.conv2.backward(&g)?;
        let g = self.relu1.backward(&g)?;
        self.conv1.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
        self.conv3.visit_params(f);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.relu1.predict(&self.conv1.predict(x)?)?;
        let h = self.relu2.predict(&self.conv2.predict(&h)?)?;
        self.conv3.predict(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_nn::module::ModuleExt;
    use dlsr_tensor::init;

    #[test]
    fn preserves_spatial_extent() {
        let mut m = Srcnn::new(3, 1);
        let x = init::uniform([1, 3, 16, 16], 0.0, 1.0, 2);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), x.shape().dims());
    }

    #[test]
    fn param_count_matches_known_srcnn() {
        let mut m = Srcnn::new(3, 1);
        // 9²·3·64+64 + 1²·64·32+32 + 5²·32·3+3 = 15,616 + 2,080 + 2,403
        assert_eq!(m.num_params(), 15_616 + 2_080 + 2_403);
    }

    #[test]
    fn trains_one_step() {
        use dlsr_nn::loss::mse_loss;
        use dlsr_nn::optim::{Optimizer, Sgd};
        let mut m = Srcnn::new(1, 3);
        let x = init::uniform([1, 1, 12, 12], 0.0, 1.0, 4);
        let t = init::uniform([1, 1, 12, 12], 0.0, 1.0, 5);
        let mut opt = Sgd::new(1e-3);
        let y = m.forward(&x).unwrap();
        let (l0, g) = mse_loss(&y, &t).unwrap();
        m.backward(&g).unwrap();
        opt.step(&mut m);
        for _ in 0..4 {
            let y = m.forward(&x).unwrap();
            let (_, g) = mse_loss(&y, &t).unwrap();
            m.backward(&g).unwrap();
            opt.step(&mut m);
        }
        let (l1, _) = mse_loss(&m.predict(&x).unwrap(), &t).unwrap();
        assert!(l1 < l0, "{l0} -> {l1}");
    }
}
