//! ResNet-50 (He et al. 2016) — the image-classification comparator of the
//! paper's Fig 1 (a V100 trains ResNet-50 at ≈360 img/s vs ≈10.3 img/s for
//! EDSR). The full 50-layer bottleneck network is implemented; a width
//! multiplier lets tests instantiate a narrow variant that runs fast on CPU.

use dlsr_nn::layers::{BatchNorm2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, ReLU};
use dlsr_nn::module::Module;
use dlsr_nn::param::Param;
use dlsr_nn::{Result, Tensor};
use dlsr_tensor::conv::Conv2dParams;
use dlsr_tensor::elementwise;

/// ResNet configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Bottleneck counts per stage — ResNet-50 is `[3, 4, 6, 3]`.
    pub stages: [usize; 4],
    /// Stem width; 64 for the real network. Stage widths are `base·2^i`
    /// with a 4× bottleneck expansion.
    pub base_width: usize,
    /// Classifier classes (ImageNet: 1000).
    pub classes: usize,
}

impl ResNetConfig {
    /// The real ResNet-50.
    pub fn resnet50() -> Self {
        ResNetConfig {
            stages: [3, 4, 6, 3],
            base_width: 64,
            classes: 1000,
        }
    }

    /// A narrow/shallow variant for CPU tests.
    pub fn tiny() -> Self {
        ResNetConfig {
            stages: [1, 1, 1, 1],
            base_width: 8,
            classes: 10,
        }
    }
}

/// Bottleneck residual block: 1×1 reduce → 3×3 (stride) → 1×1 expand,
/// each followed by BN; ReLU after the skip addition.
struct Bottleneck {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    conv3: Conv2d,
    bn3: BatchNorm2d,
    relu1: ReLU,
    relu2: ReLU,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    sum_cache: Option<Tensor>,
}

impl Bottleneck {
    fn new(name: &str, c_in: usize, mid: usize, c_out: usize, stride: usize, seed: u64) -> Self {
        let p1 = Conv2dParams {
            stride: 1,
            padding: 0,
        };
        let p2 = Conv2dParams { stride, padding: 1 };
        let downsample = (c_in != c_out || stride != 1).then(|| {
            (
                Conv2d::new_no_bias(
                    &format!("{name}.down.conv"),
                    c_in,
                    c_out,
                    1,
                    Conv2dParams { stride, padding: 0 },
                    seed + 6,
                ),
                BatchNorm2d::new(&format!("{name}.down.bn"), c_out),
            )
        });
        Bottleneck {
            conv1: Conv2d::new_no_bias(&format!("{name}.conv1"), c_in, mid, 1, p1, seed),
            bn1: BatchNorm2d::new(&format!("{name}.bn1"), mid),
            conv2: Conv2d::new_no_bias(&format!("{name}.conv2"), mid, mid, 3, p2, seed + 1),
            bn2: BatchNorm2d::new(&format!("{name}.bn2"), mid),
            conv3: Conv2d::new_no_bias(&format!("{name}.conv3"), mid, c_out, 1, p1, seed + 2),
            bn3: BatchNorm2d::new(&format!("{name}.bn3"), c_out),
            relu1: ReLU::new(),
            relu2: ReLU::new(),
            downsample,
            sum_cache: None,
        }
    }
}

impl Module for Bottleneck {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self
            .relu1
            .forward(&self.bn1.forward(&self.conv1.forward(x)?)?)?;
        let h = self
            .relu2
            .forward(&self.bn2.forward(&self.conv2.forward(&h)?)?)?;
        let h = self.bn3.forward(&self.conv3.forward(&h)?)?;
        let skip = match &mut self.downsample {
            Some((conv, bn)) => bn.forward(&conv.forward(x)?)?,
            None => x.clone(),
        };
        let sum = elementwise::add(&h, &skip)?;
        self.sum_cache = Some(sum.clone());
        Ok(elementwise::relu(&sum))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let sum = self
            .sum_cache
            .take()
            .expect("Bottleneck::backward called without forward");
        let g = elementwise::relu_backward(grad_out, &sum)?;
        // main branch
        let gm = self.bn3.backward(&g)?;
        let gm = self.conv3.backward(&gm)?;
        let gm = self.relu2.backward(&gm)?;
        let gm = self.bn2.backward(&gm)?;
        let gm = self.conv2.backward(&gm)?;
        let gm = self.relu1.backward(&gm)?;
        let gm = self.bn1.backward(&gm)?;
        let gm = self.conv1.backward(&gm)?;
        // skip branch
        let gs = match &mut self.downsample {
            Some((conv, bn)) => {
                let t = bn.backward(&g)?;
                conv.backward(&t)?
            }
            None => g,
        };
        elementwise::add(&gm, &gs)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        self.conv3.visit_params(f);
        self.bn3.visit_params(f);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self
            .relu1
            .predict(&self.bn1.predict(&self.conv1.predict(x)?)?)?;
        let h = self
            .relu2
            .predict(&self.bn2.predict(&self.conv2.predict(&h)?)?)?;
        let h = self.bn3.predict(&self.conv3.predict(&h)?)?;
        let skip = match &mut self.downsample {
            Some((conv, bn)) => bn.predict(&conv.predict(x)?)?,
            None => x.clone(),
        };
        Ok(elementwise::relu(&elementwise::add(&h, &skip)?))
    }
}

/// The ResNet classifier.
pub struct ResNet {
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_relu: ReLU,
    stem_pool: MaxPool2d,
    blocks: Vec<Bottleneck>,
    gap: GlobalAvgPool,
    fc: Linear,
    cfg: ResNetConfig,
}

impl ResNet {
    /// Build a ResNet from a configuration with seeded initialization.
    pub fn new(cfg: ResNetConfig, seed: u64) -> Self {
        let b = cfg.base_width;
        let stem_conv = Conv2d::new_no_bias(
            "stem.conv",
            3,
            b,
            7,
            Conv2dParams {
                stride: 2,
                padding: 3,
            },
            seed,
        );
        let mut blocks = Vec::new();
        let mut c_in = b;
        let mut s = seed + 100;
        for (stage, &count) in cfg.stages.iter().enumerate() {
            let mid = b << stage;
            let c_out = mid * 4;
            for i in 0..count {
                let stride = if stage > 0 && i == 0 { 2 } else { 1 };
                blocks.push(Bottleneck::new(
                    &format!("layer{}.{}", stage + 1, i),
                    c_in,
                    mid,
                    c_out,
                    stride,
                    s,
                ));
                c_in = c_out;
                s += 10;
            }
        }
        let fc = Linear::new("fc", c_in, cfg.classes, seed + 7);
        ResNet {
            stem_conv,
            stem_bn: BatchNorm2d::new("stem.bn", b),
            stem_relu: ReLU::new(),
            stem_pool: MaxPool2d::new(3, 2),
            blocks,
            gap: GlobalAvgPool::new(),
            fc,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> ResNetConfig {
        self.cfg
    }
}

impl Module for ResNet {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.stem_conv.forward(x)?;
        let h = self.stem_bn.forward(&h)?;
        let h = self.stem_relu.forward(&h)?;
        let mut h = self.stem_pool.forward(&h)?;
        for b in &mut self.blocks {
            h = b.forward(&h)?;
        }
        let h = self.gap.forward(&h)?;
        self.fc.forward(&h)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g = self.fc.backward(grad_out)?;
        let mut g = self.gap.backward(&g)?;
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g)?;
        }
        let g = self.stem_pool.backward(&g)?;
        let g = self.stem_relu.backward(&g)?;
        let g = self.stem_bn.backward(&g)?;
        self.stem_conv.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem_conv.visit_params(f);
        self.stem_bn.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.fc.visit_params(f);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.stem_conv.predict(x)?;
        let h = self.stem_bn.predict(&h)?;
        let h = self.stem_relu.predict(&h)?;
        let mut h = self.stem_pool.predict(&h)?;
        for b in &mut self.blocks {
            h = b.predict(&h)?;
        }
        let h = self.gap.predict(&h)?;
        self.fc.predict(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_nn::module::ModuleExt;
    use dlsr_tensor::init;

    #[test]
    fn tiny_variant_classifies_shape() {
        let mut m = ResNet::new(ResNetConfig::tiny(), 1);
        let x = init::uniform([2, 3, 64, 64], 0.0, 1.0, 2);
        let y = m.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn backward_reaches_input() {
        let mut m = ResNet::new(ResNetConfig::tiny(), 3);
        let x = init::uniform([1, 3, 64, 64], 0.0, 1.0, 4);
        let y = m.forward(&x).unwrap();
        let g = m.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape().dims(), x.shape().dims());
    }

    #[test]
    fn resnet50_param_count_close_to_25m() {
        // The canonical ResNet-50 has ~25.56M params; our BN layers carry
        // γ/β only (no running-stat params), matching that count.
        let mut m = ResNet::new(ResNetConfig::resnet50(), 1);
        let n = m.num_params();
        assert!(
            (25_000_000..26_200_000).contains(&n),
            "ResNet-50 params {n} out of expected range"
        );
    }

    #[test]
    fn cross_entropy_step_reduces_loss() {
        use dlsr_nn::loss::cross_entropy;
        use dlsr_nn::optim::{Optimizer, Sgd};
        let mut m = ResNet::new(ResNetConfig::tiny(), 5);
        let x = init::uniform([2, 3, 64, 64], 0.0, 1.0, 6);
        let labels = [1usize, 3];
        let mut opt = Sgd::new(0.05);
        let logits = m.forward(&x).unwrap();
        let (l0, g) = cross_entropy(&logits, &labels).unwrap();
        m.backward(&g).unwrap();
        opt.step(&mut m);
        let (l1, _) = cross_entropy(&m.forward(&x).unwrap(), &labels).unwrap();
        assert!(l1 < l0, "loss did not decrease: {l0} -> {l1}");
    }
}
