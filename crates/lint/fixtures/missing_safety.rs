//~ crate: tensor
//~ expect: undocumented-unsafe
//! Seeded fixture: an `unsafe` block with no `// SAFETY:` comment directly
//! above it must trip `undocumented-unsafe`.

pub fn read_first(xs: &[f32]) -> f32 {
    unsafe { *xs.as_ptr() }
}
