//~ crate: mpi
//~ expect: waiver
//! Seeded fixture: a waiver that suppresses nothing is itself a finding.
//! The `HashMap` this waiver once guarded was replaced by the `Vec` below;
//! the leftover `allow` must be reported instead of rotting in place.

// dlsr-lint: allow(hash-collections) -- guards a map that no longer exists
pub fn tidy() -> Vec<u64> {
    Vec::new()
}
