//~ crate: tensor
//~ expect: hot-alloc
//! Seeded fixture: the allocation hides one call below the `#[dlsr::hot]`
//! kernel — `kernel -> stage -> scratch_vec -> Vec::new`. The transitive
//! rule scans every fn reachable from a hot root, so laundering an
//! allocation through a helper no longer passes.

use dlsr_attr as dlsr;

#[dlsr::hot]
pub fn microkernel_entry(dst: &mut [f32]) {
    stage(dst);
}

fn stage(dst: &mut [f32]) {
    let v = scratch_vec(dst.len());
    dst.copy_from_slice(&v);
}

fn scratch_vec(n: usize) -> Vec<f32> {
    let mut v = Vec::new();
    v.resize(n, 0.0);
    v
}
