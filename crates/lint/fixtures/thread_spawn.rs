//~ crate: mpi
//~ expect: thread-spawn
//! Seeded fixture: OS-thread creation outside the sanctioned executor
//! module must trip `thread-spawn`. Pretends to live in dlsr-mpi (but not
//! under `crates/mpi/src/executor/`, the one allowlisted module).

use std::thread::JoinHandle;

pub fn sneak_a_worker() -> JoinHandle<()> {
    std::thread::spawn(|| {})
}

pub fn sneak_a_scope(ranks: usize) {
    std::thread::scope(|s| {
        for _ in 0..ranks {
            s.spawn(|| {});
        }
    });
}
