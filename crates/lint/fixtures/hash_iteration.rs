//~ crate: mpi
//~ expect: hash-collections
//! Seeded fixture: hash collections in a rank-deterministic crate must
//! trip `hash-collections`. Pretends to live in dlsr-mpi: iterating a
//! HashMap there would give each rank its own order and diverge the
//! collective schedule.

use std::collections::{HashMap, HashSet};

pub fn gradient_order(grads: &HashMap<String, f64>) -> Vec<f64> {
    // Iteration order here is process-random: rank 0 and rank 1 would
    // launch allreduces for different tensors at the same step.
    grads.values().copied().collect()
}

pub fn seen_tags() -> HashSet<u64> {
    HashSet::default()
}
