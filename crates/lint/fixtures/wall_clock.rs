//~ crate: cluster
//~ expect: wall-clock
//! Seeded fixture: wall-clock reads in a fn that is not under any
//! `#[dlsr::wall]` boundary must trip `wall-clock`. Pretends to live in
//! dlsr-cluster, which is strictly virtual-time.

use std::time::{Instant, SystemTime};

pub fn step_duration() -> f64 {
    let t0 = Instant::now();
    busy();
    t0.elapsed().as_secs_f64()
}

pub fn epoch_stamp() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn busy() {}
