//~ crate: cluster
//~ expect: wall-clock
//! Seeded fixture: the wall-clock read is buried two calls below an
//! unmarked entry point — the transitive rule must follow the call graph
//! down to it. PR 4's token rule only saw reads in the file it scanned;
//! this layering was exactly its blind spot.

use std::time::Instant;

pub fn run_epoch() -> f64 {
    measure_step()
}

fn measure_step() -> f64 {
    raw_clock()
}

fn raw_clock() -> f64 {
    Instant::now().elapsed().as_secs_f64()
}
