//~ crate: mpi
//~ expect: collective-order
//! Seeded fixture: a `RankProgram` whose step fn is statically
//! rank-divergent. Even ranks allreduce while odd ranks barrier — the
//! protocol skeletons of the two arms differ, so some rank blocks forever
//! waiting for a partner that went elsewhere. The rank-bounded loop below
//! desynchronizes the same way: ranks issue different collective counts.

struct HalfAndHalf {
    steps: usize,
}

impl RankProgram for HalfAndHalf {
    fn next(&mut self, rank: usize) {
        if rank % 2 == 0 {
            allreduce(rank);
        } else {
            barrier(rank);
        }
        for _ in 0..rank {
            barrier(rank);
        }
    }
}

fn allreduce(_rank: usize) {}
fn barrier(_rank: usize) {}
