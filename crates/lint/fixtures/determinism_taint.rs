//~ crate: nn
//~ expect: determinism-taint
//! Seeded fixture: a `#[dlsr::deterministic]` root reaches a helper that
//! builds a `HashMap`. dlsr-nn is not a rank-deterministic crate, so the
//! file-local `hash-collections` rule stays silent — only the
//! interprocedural taint rule can see that rank-visible state one call
//! away now depends on process-random iteration order.

use dlsr_attr as dlsr;
use std::collections::HashMap;

#[dlsr::deterministic]
pub fn apply_updates(names: &[String]) -> Vec<String> {
    let reg = registry(names);
    order_of(&reg)
}

fn registry(names: &[String]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for (i, n) in names.iter().enumerate() {
        m.insert(n.clone(), i);
    }
    m
}

fn order_of(m: &HashMap<String, usize>) -> Vec<String> {
    m.keys().cloned().collect()
}
