//~ crate: tensor
//~ expect: hot-markers
// A kernel-convention function in crates/tensor/src without `#[dlsr::hot]`:
// the hot-alloc rule would never scan its body, so the naming rule trips.

fn pack_block_rows(dst: &mut [f32]) {
    dst.fill(0.0);
}

fn microkernel_avx2_4x16(acc: &mut [f32]) {
    acc.fill(0.0);
}
