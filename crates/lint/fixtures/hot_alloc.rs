//~ crate: tensor
//~ expect: hot-alloc
//! Seeded fixture: allocating calls inside a `#[dlsr::hot]` function must
//! trip `hot-alloc`. The identical calls in the unannotated neighbour are
//! fine — the rule scopes to annotated bodies only.

use dlsr_attr as dlsr;

#[dlsr::hot]
pub fn microkernel_like(dst: &mut [f32], a: &[f32], b: &[f32]) {
    let mut acc = Vec::new();
    acc.extend(vec![0.0f32; 4]);
    let copied = a.to_vec();
    let owned = b.clone();
    let doubled: Vec<f32> = copied.iter().map(|x| x * 2.0).collect();
    let label = format!("{}x{}", dst.len(), doubled.len());
    let _ = (acc, owned, label);
}

pub fn cold_setup(a: &[f32]) -> Vec<f32> {
    // Not annotated: setup code may allocate freely.
    a.to_vec()
}
