//~ crate: mpi
//~ expect: none
//! Seeded fixture: idiomatic simulator code must pass every rule clean —
//! deterministic collections, virtual time only, documented unsafe,
//! allocation-free hot body, and the strings/comments below must not
//! confuse the lexer into false positives.

// The words Instant, SystemTime, HashMap and HashSet in this comment are
// not code. Neither are the ones in the strings below.

use dlsr_attr as dlsr;
use std::collections::BTreeMap;

pub fn deterministic_order(grads: &BTreeMap<String, f64>) -> Vec<f64> {
    grads.values().copied().collect()
}

pub fn describe() -> &'static str {
    "prefer BTreeMap over HashMap; never call Instant::now in rank code"
}

#[dlsr::hot]
pub fn axpy(dst: &mut [f32], x: &[f32], alpha: f32) {
    for (d, &v) in dst.iter_mut().zip(x.iter()) {
        *d += alpha * v;
    }
}

pub fn documented(xs: &[f32]) -> f32 {
    // SAFETY: `xs` is checked non-empty by the caller, so index 0 is in
    // bounds and the pointer read is valid.
    unsafe { *xs.as_ptr() }
}
