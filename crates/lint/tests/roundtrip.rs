//! Parser round-trip over the real workspace corpus: every file in the
//! scan set must lex and parse without panicking, and the top-level item
//! spans must tile the token stream exactly — no token is silently
//! dropped, none is claimed twice. This is the guard that keeps the
//! recursive-descent parser honest as the codebase underneath it grows.

use std::path::Path;

use dlsr_lint::parser::{self, Item, ItemKind};
use dlsr_lint::{collect_workspace, find_root, lexer};

fn count_other(items: &[Item], other: &mut Vec<(usize, usize)>) {
    for it in items {
        match &it.kind {
            ItemKind::Container { items, .. } => count_other(items, other),
            ItemKind::Plain { kw } if *kw == "other" => other.push((it.line, it.span.0)),
            _ => {}
        }
    }
}

fn count_fns(items: &[Item]) -> usize {
    items
        .iter()
        .map(|it| match &it.kind {
            ItemKind::Fn(_) => 1,
            ItemKind::Container { items, .. } => count_fns(items),
            _ => 0,
        })
        .sum()
}

#[test]
fn workspace_corpus_parses_with_total_span_coverage() {
    let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let files = collect_workspace(&root).expect("workspace readable");
    assert!(
        files.len() > 100,
        "scan set suspiciously small: {}",
        files.len()
    );

    let mut fns = 0usize;
    for f in &files {
        let lexed = lexer::lex(&f.text);
        let ast = parser::parse(&lexed);

        // Top-level spans tile [0, toks.len()) in order, gap-free.
        let mut cursor = 0usize;
        for item in &ast.items {
            assert_eq!(
                item.span.0, cursor,
                "{}: gap or overlap before item at line {} (token {} != {})",
                f.path, item.line, item.span.0, cursor
            );
            assert!(
                item.span.1 >= item.span.0,
                "{}: inverted span at line {}",
                f.path,
                item.line
            );
            cursor = item.span.1;
        }
        assert_eq!(
            cursor,
            lexed.toks.len(),
            "{}: trailing tokens not covered by any item",
            f.path
        );

        // Nothing in the tree fell back to the unknown-item kind.
        let mut other = Vec::new();
        count_other(&ast.items, &mut other);
        assert!(
            other.is_empty(),
            "{}: unrecognized items at (line, token): {:?}",
            f.path,
            other
        );

        fns += count_fns(&ast.items);
    }
    assert!(fns > 500, "expected a real corpus, found only {fns} fns");
}
