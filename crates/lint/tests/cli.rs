//! End-to-end CLI contract: exit codes (0 clean / 1 findings / 2 analyzer
//! failure) and machine-readable output (`--json`, `--sarif`) straight
//! from the built binary — the same interface CI gates on.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dlsr-lint")
}

fn root() -> PathBuf {
    dlsr_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

/// A throwaway pseudo-workspace with one seeded violation. `tag` keeps
/// concurrently running tests out of each other's directories.
fn violation_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dlsr-lint-cli-{}-{tag}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn leak() -> f64 {\n    std::time::Instant::now().elapsed().as_secs_f64()\n}\n",
    )
    .expect("write source");
    dir
}

#[test]
fn clean_workspace_exits_zero() {
    let out = run(&["--root", root().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("workspace clean"), "{stdout}");
}

#[test]
fn findings_exit_one() {
    let ws = violation_workspace("text");
    let out = run(&["--root", ws.to_str().unwrap()]);
    std::fs::remove_dir_all(&ws).ok();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[wall-clock]"), "{stdout}");
}

#[test]
fn analyzer_failure_exits_two() {
    // Unreadable root: the scan itself fails, distinct from "findings".
    let out = run(&["--root", "/nonexistent/definitely/not/here"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Bad usage is an analyzer failure too.
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn self_test_exits_zero_and_lists_fixtures() {
    let out = run(&["--self-test", "--root", root().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all rules trip"), "{stdout}");
}

#[test]
fn json_output_is_valid_and_carries_protocols() {
    let out = run(&["--json", "--root", root().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("stdout is valid JSON");
    assert!(v["stats"]["fns"].as_u64().unwrap() > 500);
    assert_eq!(v["findings"].as_array().unwrap().len(), 0);
    assert!(v["protocols"].as_array().is_some());
}

#[test]
fn sarif_output_validates_and_reports_findings() {
    // Clean tree: valid SARIF, zero results.
    let out = run(&["--sarif", "--root", root().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("stdout is valid SARIF JSON");
    assert_eq!(v["version"], "2.1.0");
    assert_eq!(v["runs"][0]["tool"]["driver"]["name"], "dlsr-lint");
    assert_eq!(v["runs"][0]["results"].as_array().unwrap().len(), 0);

    // Seeded violation: exit 1 and the finding appears as a SARIF result.
    let ws = violation_workspace("sarif");
    let out = run(&["--sarif", "--root", ws.to_str().unwrap()]);
    std::fs::remove_dir_all(&ws).ok();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid SARIF");
    let results = v["runs"][0]["results"].as_array().unwrap();
    assert_eq!(results.len(), 1, "{results:?}");
    assert_eq!(results[0]["ruleId"], "wall-clock");
    assert_eq!(
        results[0]["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
        "crates/demo/src/lib.rs"
    );
}
