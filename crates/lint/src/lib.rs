//! `dlsr-lint` — the workspace static analyzer.
//!
//! A two-stage pipeline, zero dependencies, fully deterministic:
//!
//! 1. **Per file**: lex ([`lexer`]), collect waivers, run the file-local
//!    lexical rules ([`rules`]), and parse an item/expression-level AST
//!    ([`parser`]).
//! 2. **Workspace-wide**: build the call graph ([`callgraph`]) and run the
//!    interprocedural dataflow rules ([`flow`]): transitive `wall-clock`,
//!    transitive `hot-alloc`, `determinism-taint`, and static
//!    `collective-order` protocol checking.
//!
//! The scan set is every `crates/*/{src,benches,examples}` tree plus the
//! workspace-root `examples/` (which `crates/core/Cargo.toml` declares as
//! its own targets). Findings flow through one waiver table, so a waiver
//! that suppresses nothing is itself reported (stale-waiver detection).
//!
//! Run as `dlsr lint` or `cargo run -p dlsr-lint`; `--json` / `--sarif`
//! emit machine-readable reports ([`report`]); `--self-test` checks the
//! true-positive fixtures under `crates/lint/fixtures/`. Exit codes:
//! 0 clean, 1 findings, 2 analyzer failure.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use flow::Protocol;
pub use rules::Finding;

/// One source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Crate the file belongs to (`mpi`, `tensor`, ...).
    pub crate_name: String,
    pub text: String,
}

/// Corpus-size counters, for the report header.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    pub files: usize,
    pub fns: usize,
    pub edges: usize,
}

/// The full result of one analyzer run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// All findings, sorted by `(path, line, rule)` and deduplicated.
    pub findings: Vec<Finding>,
    /// Collective protocol skeletons of the rank-program roots.
    pub protocols: Vec<Protocol>,
    pub stats: Stats,
}

/// Run the whole pipeline over an in-memory corpus. This is the one entry
/// point both the workspace scan and the fixture self-test go through, so
/// fixtures exercise exactly the production path.
pub fn analyze_files(files: &[SourceFile]) -> Analysis {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|f| lexer::lex(&f.text)).collect();
    let token_lines: Vec<Vec<usize>> = lexed.iter().map(lexer::Lexed::token_lines).collect();

    let mut findings = Vec::new();
    let mut per_file = Vec::with_capacity(files.len());
    for (i, f) in files.iter().enumerate() {
        let (waivers, mut bad) = rules::collect_waivers(&f.path, &lexed[i], &token_lines[i]);
        findings.append(&mut bad);
        per_file.push(rules::FileWaivers {
            path: f.path.clone(),
            waivers,
        });
    }
    let mut table = rules::WaiverTable::new(per_file);

    for (i, f) in files.iter().enumerate() {
        let mut waived = |rule: &str, line: usize| table.check(i, rule, line);
        rules::local_rules(
            &f.path,
            &f.crate_name,
            &lexed[i],
            &token_lines[i],
            &mut waived,
            &mut findings,
        );
    }

    let graph = callgraph::Graph::build(
        files
            .iter()
            .zip(&lexed)
            .map(|(f, lx)| (f.path.clone(), f.crate_name.clone(), parser::parse(lx)))
            .collect(),
    );
    let stats = Stats {
        files: files.len(),
        fns: graph.defs.len(),
        edges: graph.edges.iter().map(Vec::len).sum(),
    };

    let protocols = flow::run_flow_rules(&graph, &lexed, &mut table, &mut findings);
    findings.extend(table.stale_findings());

    findings
        .sort_by(|a, b| (&a.path, a.line, a.rule, &a.msg).cmp(&(&b.path, b.line, b.rule, &b.msg)));
    // Nested fns are scanned both as their own def and as part of the
    // enclosing body span; keep one finding per site.
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.rule == b.rule);

    Analysis {
        findings,
        protocols,
        stats,
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Collect the workspace scan set under `root`: every
/// `crates/*/{src,benches,examples}` tree, plus the workspace-root
/// `examples/` attributed to crate `core` (whose Cargo.toml declares those
/// files as example/test targets).
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        for sub in ["src", "benches", "examples"] {
            let dir = crate_dir.join(sub);
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            rs_files(&dir, &mut files)?;
            for file in files {
                out.push(SourceFile {
                    path: rel_path(root, &file),
                    crate_name: crate_name.clone(),
                    text: fs::read_to_string(&file)?,
                });
            }
        }
    }
    let root_examples = root.join("examples");
    if root_examples.is_dir() {
        let mut files = Vec::new();
        rs_files(&root_examples, &mut files)?;
        for file in files {
            out.push(SourceFile {
                path: rel_path(root, &file),
                crate_name: String::from("core"),
                text: fs::read_to_string(&file)?,
            });
        }
    }
    Ok(out)
}

/// Scan the whole workspace under `root`.
pub fn scan_workspace(root: &Path) -> io::Result<Analysis> {
    Ok(analyze_files(&collect_workspace(root)?))
}

/// Repo-relative path with `/` separators (for stable report output and
/// path-prefix matching on every platform).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Outcome of checking one fixture.
#[derive(Debug)]
pub struct FixtureResult {
    pub file: String,
    pub expected: String,
    pub findings: Vec<Finding>,
    pub ok: bool,
    pub detail: String,
}

/// Run the true-positive self-test over `crates/lint/fixtures/*.rs`.
///
/// Each fixture declares, in `//~` directives, the crate it pretends to
/// live in and the single rule it must trip:
///
/// ```text
/// //~ crate: mpi
/// //~ expect: hash-collections
/// ```
///
/// `//~ expect: none` asserts a clean scan. A fixture passes when it
/// produces at least one finding, all of the expected rule (or zero
/// findings for `none`). Fixtures run through [`analyze_files`] one at a
/// time, so the interprocedural rules see each fixture as a tiny
/// self-contained workspace.
pub fn self_test(root: &Path) -> io::Result<Vec<FixtureResult>> {
    let fixtures_dir = root.join("crates/lint/fixtures");
    let mut files = Vec::new();
    rs_files(&fixtures_dir, &mut files)?;
    let mut results = Vec::new();
    for file in files {
        let text = fs::read_to_string(&file)?;
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("fixture.rs")
            .to_string();
        let mut crate_name = String::from("fixturecrate");
        let mut expected = String::new();
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("//~ crate:") {
                crate_name = v.trim().to_string();
            } else if let Some(v) = line.strip_prefix("//~ expect:") {
                expected = v.trim().to_string();
            }
        }
        if expected.is_empty() {
            results.push(FixtureResult {
                file: name.clone(),
                expected,
                findings: Vec::new(),
                ok: false,
                detail: String::from("fixture is missing an `//~ expect:` directive"),
            });
            continue;
        }
        // Analyze under a pseudo-path inside the declared crate so
        // path-scoped rules behave exactly as they would in the real tree.
        let pseudo = format!("crates/{crate_name}/src/{name}");
        let analysis = analyze_files(&[SourceFile {
            path: pseudo,
            crate_name,
            text,
        }]);
        let findings = analysis.findings;
        let (ok, detail) = if expected == "none" {
            if findings.is_empty() {
                (true, String::from("clean, as expected"))
            } else {
                (
                    false,
                    format!("expected clean, got {} findings", findings.len()),
                )
            }
        } else if findings.is_empty() {
            (false, format!("expected `{expected}` to trip, got nothing"))
        } else if findings.iter().all(|f| f.rule == expected) {
            (true, format!("tripped {} × `{expected}`", findings.len()))
        } else {
            let stray: Vec<&str> = findings
                .iter()
                .map(|f| f.rule)
                .filter(|r| *r != expected)
                .collect();
            (false, format!("unexpected rules fired: {stray:?}"))
        };
        results.push(FixtureResult {
            file: name,
            expected,
            findings,
            ok,
            detail,
        });
    }
    Ok(results)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
    }

    /// Every seeded fixture must trip exactly its rule (true-positive
    /// self-test), and the clean fixture must stay clean.
    #[test]
    fn fixtures_trip_their_rules() {
        let results = self_test(&root()).expect("fixtures readable");
        assert!(
            results.len() >= 12,
            "expected at least one fixture per rule plus transitive and \
             clean variants, got {}",
            results.len()
        );
        for r in &results {
            assert!(r.ok, "{}: {}", r.file, r.detail);
        }
        for rule in rules::ALL_RULES {
            assert!(
                results.iter().any(|r| r.expected == rule),
                "no fixture covers rule `{rule}`"
            );
        }
        // stale-waiver detection has its own fixture too
        assert!(
            results.iter().any(|r| r.expected == rules::RULE_WAIVER),
            "no fixture covers stale-waiver detection"
        );
    }

    /// The workspace itself must pass every rule. This is the tier-1
    /// enforcement point: a wall-clock leak, a hot-path allocation, a
    /// nondeterminism source reachable from rank code, or a rank-divergent
    /// collective sequence anywhere in the scan set fails `cargo test`.
    #[test]
    fn workspace_is_clean() {
        let analysis = scan_workspace(&root()).expect("workspace readable");
        let report: Vec<String> = analysis.findings.iter().map(|f| f.to_string()).collect();
        assert!(
            analysis.findings.is_empty(),
            "workspace lint violations:\n{}",
            report.join("\n")
        );
    }

    /// The widened scan set actually contains the benches, the bench-crate
    /// binaries, and the root examples, and the call graph is non-trivial.
    #[test]
    fn scan_set_is_widened() {
        let files = collect_workspace(&root()).expect("workspace readable");
        let has = |prefix: &str| files.iter().any(|f| f.path.starts_with(prefix));
        assert!(
            has("crates/bench/benches/"),
            "benches missing from scan set"
        );
        assert!(has("crates/bench/src/bin/"), "bench bins missing");
        assert!(has("examples/"), "root examples missing");
        assert!(
            files
                .iter()
                .filter(|f| f.path.starts_with("examples/"))
                .all(|f| f.crate_name == "core"),
            "root examples must be attributed to crate core"
        );
        let analysis = analyze_files(&files);
        assert!(analysis.stats.fns > 500, "stats: {:?}", analysis.stats);
        assert!(analysis.stats.edges > 500, "stats: {:?}", analysis.stats);
    }

    /// Rank-program protocol skeletons are extracted from the real tree:
    /// the driven executor's collective programs must surface at least one
    /// protocol, and report rendering must be deterministic.
    #[test]
    fn workspace_protocols_are_extracted() {
        let a1 = scan_workspace(&root()).expect("workspace readable");
        let a2 = scan_workspace(&root()).expect("workspace readable");
        let render = |a: &Analysis| {
            a.protocols
                .iter()
                .map(|p| format!("{}:{} {} {}", p.path, p.line, p.root, p.skeleton))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            render(&a1),
            render(&a2),
            "protocol extraction must be stable"
        );
    }
}
