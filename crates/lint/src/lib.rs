//! `dlsr-lint` — the workspace invariant lint pass.
//!
//! Run as `cargo run -p dlsr-lint` from the workspace root. Walks every
//! `crates/*/src` tree, lexes each `.rs` file ([`lexer`]) and applies the
//! invariant rules ([`rules`]): wall-clock reads outside the wall domain,
//! hash collections in rank-deterministic crates, allocating calls inside
//! `#[dlsr::hot]` functions, undocumented `unsafe`, and kernel-convention
//! functions in `crates/tensor/src` missing their `#[dlsr::hot]` marker.
//!
//! `cargo run -p dlsr-lint -- --self-test` runs the true-positive check:
//! every fixture under `crates/lint/fixtures/` must trip exactly the rule
//! it was seeded for. The same checks run as ordinary `cargo test` tests,
//! so tier-1 CI enforces both "fixtures trip" and "workspace is clean".

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::Finding;

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// output.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan every `crates/*/src` tree under `root` (the workspace root).
/// Returns all findings, sorted by path then line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rs_files(&src, &mut files)?;
        for file in files {
            let text = fs::read_to_string(&file)?;
            let rel = rel_path(root, &file);
            let lexed = lexer::lex(&text);
            findings.extend(rules::scan_file(&rel, &crate_name, &lexed));
        }
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(findings)
}

/// Repo-relative path with `/` separators (for stable report output and
/// allowlist matching on every platform).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Outcome of checking one fixture.
#[derive(Debug)]
pub struct FixtureResult {
    pub file: String,
    pub expected: String,
    pub findings: Vec<Finding>,
    pub ok: bool,
    pub detail: String,
}

/// Run the true-positive self-test over `crates/lint/fixtures/*.rs`.
///
/// Each fixture declares, in `//~` directives, the crate it pretends to
/// live in and the single rule it must trip:
///
/// ```text
/// //~ crate: mpi
/// //~ expect: hash-collections
/// ```
///
/// `//~ expect: none` asserts a clean scan. A fixture passes when it
/// produces at least one finding, all of the expected rule (or zero
/// findings for `none`).
pub fn self_test(root: &Path) -> io::Result<Vec<FixtureResult>> {
    let fixtures_dir = root.join("crates/lint/fixtures");
    let mut files = Vec::new();
    rs_files(&fixtures_dir, &mut files)?;
    let mut results = Vec::new();
    for file in files {
        let text = fs::read_to_string(&file)?;
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("fixture.rs")
            .to_string();
        let mut crate_name = String::from("fixturecrate");
        let mut expected = String::new();
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("//~ crate:") {
                crate_name = v.trim().to_string();
            } else if let Some(v) = line.strip_prefix("//~ expect:") {
                expected = v.trim().to_string();
            }
        }
        if expected.is_empty() {
            results.push(FixtureResult {
                file: name.clone(),
                expected,
                findings: Vec::new(),
                ok: false,
                detail: String::from("fixture is missing an `//~ expect:` directive"),
            });
            continue;
        }
        // Scan under a pseudo-path inside the declared crate so path-based
        // allowlists behave exactly as they would in the real tree.
        let pseudo = format!("crates/{crate_name}/src/{name}");
        let findings = rules::scan_file(&pseudo, &crate_name, &lexer::lex(&text));
        let (ok, detail) = if expected == "none" {
            if findings.is_empty() {
                (true, String::from("clean, as expected"))
            } else {
                (
                    false,
                    format!("expected clean, got {} findings", findings.len()),
                )
            }
        } else if findings.is_empty() {
            (false, format!("expected `{expected}` to trip, got nothing"))
        } else if findings.iter().all(|f| f.rule == expected) {
            (true, format!("tripped {} × `{expected}`", findings.len()))
        } else {
            let stray: Vec<&str> = findings
                .iter()
                .map(|f| f.rule)
                .filter(|r| *r != expected)
                .collect();
            (false, format!("unexpected rules fired: {stray:?}"))
        };
        results.push(FixtureResult {
            file: name,
            expected,
            findings,
            ok,
            detail,
        });
    }
    Ok(results)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
    }

    /// Every seeded fixture must trip exactly its rule (true-positive
    /// self-test), and the clean fixture must stay clean.
    #[test]
    fn fixtures_trip_their_rules() {
        let results = self_test(&root()).expect("fixtures readable");
        assert!(
            results.len() >= 6,
            "expected one fixture per rule plus a clean one, got {}",
            results.len()
        );
        for r in &results {
            assert!(r.ok, "{}: {}", r.file, r.detail);
        }
        for rule in rules::ALL_RULES {
            assert!(
                results.iter().any(|r| r.expected == rule),
                "no fixture covers rule `{rule}`"
            );
        }
    }

    /// The workspace itself must pass every rule. This is the tier-1
    /// enforcement point: a wall-clock leak or a hot-path allocation
    /// anywhere in `crates/*/src` fails `cargo test`.
    #[test]
    fn workspace_is_clean() {
        let findings = scan_workspace(&root()).expect("workspace readable");
        let report: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(
            findings.is_empty(),
            "workspace lint violations:\n{}",
            report.join("\n")
        );
    }
}
