//! The invariant rules enforced over the lexed token stream.
//!
//! Six rules, each guarding one of the simulator's load-bearing
//! assumptions (see docs/CORRECTNESS.md for the full catalogue):
//!
//! - `wall-clock` — no `Instant` / `SystemTime` outside the allowlisted
//!   wall-clock modules (the dlsr-trace wall domain and the bench mains).
//!   Virtual time must come from `Comm::now()` / `VClock`; a wall-clock
//!   read feeding rank-visible state breaks cross-rank determinism.
//! - `hash-collections` — no `HashMap` / `HashSet` in rank-deterministic
//!   crates (mpi, horovod, cluster, nccl). Their iteration order is
//!   randomized per process, so any use risks rank-divergent schedules;
//!   `BTreeMap` / `BTreeSet` / `Vec` are the deterministic replacements.
//! - `hot-alloc` — no allocating calls inside functions annotated
//!   `#[dlsr::hot]` (the GEMM/im2col steady-state paths). Scratch must be
//!   passed in by the caller.
//! - `undocumented-unsafe` — every `unsafe` token needs a `// SAFETY:`
//!   comment immediately above it (or trailing on the same line).
//! - `hot-markers` — in `crates/tensor/src`, functions following the hot
//!   kernel naming convention (`microkernel_*`, `pack_*`) must carry
//!   `#[dlsr::hot]`, so the `hot-alloc` rule actually covers them; an
//!   unmarked kernel silently escapes the allocation scan.
//! - `thread-spawn` — in the rank-execution crates (mpi, cluster), no
//!   `thread::spawn` / `thread::scope` / `JoinHandle` outside the
//!   sanctioned executor module (`crates/mpi/src/executor/`). All rank
//!   parallelism flows through the execution cores; anything else breaks
//!   the driven engine's zero-thread guarantee.
//!
//! Waivers: a comment `dlsr-lint: allow(<rule>) -- <reason>` suppresses
//! that rule on the next source line (or its own line when trailing). The
//! reason is mandatory; a waiver without one is itself a violation.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_HASH: &str = "hash-collections";
pub const RULE_HOT_ALLOC: &str = "hot-alloc";
pub const RULE_UNSAFE: &str = "undocumented-unsafe";
pub const RULE_HOT_MARKERS: &str = "hot-markers";
pub const RULE_THREAD: &str = "thread-spawn";
pub const RULE_WAIVER: &str = "waiver";

pub const ALL_RULES: [&str; 6] = [
    RULE_WALL_CLOCK,
    RULE_HASH,
    RULE_HOT_ALLOC,
    RULE_UNSAFE,
    RULE_HOT_MARKERS,
    RULE_THREAD,
];

/// Files (path prefixes, `/`-separated, relative to the repo root) where
/// wall-clock reads are legitimate: the trace crate owns the wall domain,
/// and bench mains measure real elapsed time by definition.
const WALL_CLOCK_ALLOWLIST: [&str; 2] = ["crates/trace/src/", "crates/bench/src/bin/"];

/// Crates whose code runs identically on every rank; hash-order
/// nondeterminism there can diverge schedules.
const RANK_DETERMINISTIC_CRATES: [&str; 5] = ["mpi", "horovod", "cluster", "nccl", "faults"];

/// Identifiers banned inside `#[dlsr::hot]` bodies regardless of receiver.
const HOT_BANNED_IDENTS: [&str; 6] = [
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "clone",
    "with_capacity",
];

/// `Type :: new`-style paths banned inside `#[dlsr::hot]` bodies.
const HOT_BANNED_PATHS: [(&str, &str); 2] = [("Vec", "new"), ("Box", "new")];

/// Macros banned inside `#[dlsr::hot]` bodies.
const HOT_BANNED_MACROS: [&str; 2] = ["vec", "format"];

/// Path prefix where the hot-kernel naming convention is enforced, and the
/// fn-name prefixes that convention covers.
const HOT_MARKER_PATH: &str = "crates/tensor/src/";
const HOT_MARKER_FN_PREFIXES: [&str; 2] = ["microkernel_", "pack_"];

/// Crates where rank execution is the executor's exclusive business:
/// spawning OS threads anywhere else would bypass the execution-core
/// contract (one sanctioned module owns all parallelism, so the driven
/// engine's zero-thread guarantee is auditable).
const THREAD_CRATES: [&str; 2] = ["mpi", "cluster"];

/// The one module allowed to create rank threads: the executor that
/// implements the threaded/context cores.
const THREAD_ALLOWLIST: [&str; 1] = ["crates/mpi/src/executor/"];

/// A waiver parsed from a `dlsr-lint: allow(<rule>)` comment.
struct Waiver {
    rule: String,
    /// Source line the waiver applies to.
    target_line: usize,
}

/// Run every rule over one lexed file. `path` is the repo-relative path
/// with `/` separators; `crate_name` is the `crates/<name>` directory name.
pub fn scan_file(path: &str, crate_name: &str, lexed: &Lexed) -> Vec<Finding> {
    let token_lines = lexed.token_lines();
    let (waivers, mut findings) = collect_waivers(path, lexed, &token_lines);

    let waived = |rule: &str, line: usize| {
        waivers
            .iter()
            .any(|w| w.rule == rule && w.target_line == line)
    };

    rule_wall_clock(path, lexed, &waived, &mut findings);
    rule_hash_collections(path, crate_name, lexed, &waived, &mut findings);
    rule_hot_alloc(path, lexed, &waived, &mut findings);
    rule_undocumented_unsafe(path, lexed, &token_lines, &waived, &mut findings);
    rule_hot_markers(path, lexed, &waived, &mut findings);
    rule_thread_spawn(path, crate_name, lexed, &waived, &mut findings);

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Parse waiver comments. A waiver with no `-- reason` text is reported
/// as a violation of the `waiver` rule. Waivers naming an unknown rule are
/// reported too, so a typo cannot silently disable nothing.
fn collect_waivers(
    path: &str,
    lexed: &Lexed,
    token_lines: &[usize],
) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        // A waiver must be the comment's first content (after the `//`,
        // `//!`, `/*` markers) — prose that merely mentions the syntax,
        // like this crate's own docs, is not a waiver.
        let content = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix("dlsr-lint: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: RULE_WAIVER,
                msg: String::from("malformed waiver: missing `)`"),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !ALL_RULES.contains(&rule.as_str()) {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: RULE_WAIVER,
                msg: format!("waiver names unknown rule `{rule}`"),
            });
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after
            .trim_start()
            .strip_prefix("--")
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: RULE_WAIVER,
                msg: format!("waiver for `{rule}` has no `-- <reason>`"),
            });
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            token_lines
                .iter()
                .copied()
                .find(|&l| l > c.end_line)
                .unwrap_or(c.end_line + 1)
        };
        waivers.push(Waiver { rule, target_line });
    }
    (waivers, findings)
}

fn rule_wall_clock(
    path: &str,
    lexed: &Lexed,
    waived: &dyn Fn(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if WALL_CLOCK_ALLOWLIST.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for t in &lexed.toks {
        if t.kind == TokKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && !waived(RULE_WALL_CLOCK, t.line)
        {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: RULE_WALL_CLOCK,
                msg: format!(
                    "`{}` outside the wall-clock allowlist; virtual time must come \
                     from the simulator clock (Comm::now / VClock)",
                    t.text
                ),
            });
        }
    }
}

fn rule_hash_collections(
    path: &str,
    crate_name: &str,
    lexed: &Lexed,
    waived: &dyn Fn(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !RANK_DETERMINISTIC_CRATES.contains(&crate_name) {
        return;
    }
    for t in &lexed.toks {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !waived(RULE_HASH, t.line)
        {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: RULE_HASH,
                msg: format!(
                    "`{}` in rank-deterministic crate `{}`; iteration order is \
                     process-random — use BTreeMap/BTreeSet/Vec",
                    t.text, crate_name
                ),
            });
        }
    }
}

fn rule_hot_alloc(
    path: &str,
    lexed: &Lexed,
    waived: &dyn Fn(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !is_hot_attr(toks, i) {
            i += 1;
            continue;
        }
        // Find the fn this attribute annotates, then its body.
        let Some(body) = hot_fn_body(toks, i + 7) else {
            i += 7;
            continue;
        };
        let (name, lo, hi) = body;
        for j in lo..hi {
            let t = &toks[j];
            if t.kind != TokKind::Ident || waived(RULE_HOT_ALLOC, t.line) {
                continue;
            }
            let banned: Option<String> = if HOT_BANNED_IDENTS.contains(&t.text.as_str()) {
                Some(t.text.clone())
            } else if HOT_BANNED_MACROS.contains(&t.text.as_str())
                && toks.get(j + 1).is_some_and(|n| n.text == "!")
            {
                Some(format!("{}!", t.text))
            } else if HOT_BANNED_PATHS.iter().any(|(ty, m)| {
                t.text == *ty
                    && toks.get(j + 1).is_some_and(|a| a.text == ":")
                    && toks.get(j + 2).is_some_and(|b| b.text == ":")
                    && toks.get(j + 3).is_some_and(|c| c.text == *m)
            }) {
                Some(format!("{}::new", t.text))
            } else {
                None
            };
            if let Some(what) = banned {
                findings.push(Finding {
                    path: path.to_string(),
                    line: t.line,
                    rule: RULE_HOT_ALLOC,
                    msg: format!(
                        "allocating call `{what}` inside `#[dlsr::hot]` fn `{name}`; \
                         hot paths must take scratch from the caller"
                    ),
                });
            }
        }
        i = hi;
    }
}

/// Does the token sequence at `i` spell `# [ dlsr :: hot ]`?
fn is_hot_attr(toks: &[Tok], i: usize) -> bool {
    let want = ["#", "[", "dlsr", ":", ":", "hot", "]"];
    toks.len() >= i + want.len() && want.iter().enumerate().all(|(k, w)| toks[i + k].text == *w)
}

/// From just past a `#[dlsr::hot]` attribute, locate the annotated fn's
/// name and body token range `(name, body_start, body_end_exclusive)`.
/// Tolerates further attributes and visibility/qualifier keywords between
/// the attribute and `fn`; gives up at `;` or end of stream.
fn hot_fn_body(toks: &[Tok], mut i: usize) -> Option<(String, usize, usize)> {
    while i < toks.len() && toks[i].text != "fn" {
        if toks[i].text == ";" || toks[i].text == "}" {
            return None;
        }
        i += 1;
    }
    let name = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident)?;
    let mut j = i + 2;
    while j < toks.len() && toks[j].text != "{" {
        if toks[j].text == ";" {
            return None; // trait method signature, no body
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let lo = j + 1;
    let mut depth = 1usize;
    let mut k = lo;
    while k < toks.len() && depth > 0 {
        match toks[k].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    Some((name.text.clone(), lo, k.saturating_sub(1)))
}

/// `hot-markers`: inside `crates/tensor/src`, any fn whose name follows
/// the kernel naming convention must be annotated `#[dlsr::hot]` —
/// otherwise the `hot-alloc` scan never sees its body.
fn rule_hot_markers(
    path: &str,
    lexed: &Lexed,
    waived: &dyn Fn(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !path.starts_with(HOT_MARKER_PATH) {
        return;
    }
    let toks = &lexed.toks;
    // Indices of `fn` keywords reached by walking forward from a
    // `#[dlsr::hot]` attribute (skipping any further attributes and
    // qualifier keywords in between).
    let mut hot_fns = Vec::new();
    for i in 0..toks.len() {
        if !is_hot_attr(toks, i) {
            continue;
        }
        let mut j = i + 7;
        while j < toks.len() && toks[j].text != "fn" {
            if toks[j].text == ";" || toks[j].text == "}" {
                break;
            }
            j += 1;
        }
        if j < toks.len() && toks[j].text == "fn" {
            hot_fns.push(j);
        }
    }
    for (j, t) in toks.iter().enumerate() {
        if t.text != "fn" {
            continue;
        }
        let Some(name) = toks.get(j + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        if !HOT_MARKER_FN_PREFIXES
            .iter()
            .any(|p| name.text.starts_with(p))
        {
            continue;
        }
        if hot_fns.contains(&j) || waived(RULE_HOT_MARKERS, name.line) {
            continue;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: name.line,
            rule: RULE_HOT_MARKERS,
            msg: format!(
                "kernel-convention fn `{}` lacks `#[dlsr::hot]`; unmarked kernels \
                 escape the hot-alloc scan",
                name.text
            ),
        });
    }
}

/// `thread-spawn`: in the rank-execution crates, OS threads may only be
/// created by the sanctioned executor module. `thread::spawn`,
/// `thread::scope` and `JoinHandle` anywhere else are violations — a rank
/// path that quietly spawns its own thread breaks the driven core's
/// zero-thread guarantee and reintroduces scheduling nondeterminism the
/// execution cores exist to contain.
fn rule_thread_spawn(
    path: &str,
    crate_name: &str,
    lexed: &Lexed,
    waived: &dyn Fn(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !THREAD_CRATES.contains(&crate_name) {
        return;
    }
    if THREAD_ALLOWLIST.iter().any(|p| path.starts_with(p)) {
        return;
    }
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || waived(RULE_THREAD, t.line) {
            continue;
        }
        let what = if t.text == "JoinHandle" {
            Some("JoinHandle")
        } else if (t.text == "spawn" || t.text == "scope")
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "thread"
        {
            Some(if t.text == "spawn" {
                "thread::spawn"
            } else {
                "thread::scope"
            })
        } else {
            None
        };
        if let Some(what) = what {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: RULE_THREAD,
                msg: format!(
                    "`{what}` outside the sanctioned executor module; rank \
                     parallelism belongs to crates/mpi/src/executor/ only"
                ),
            });
        }
    }
}

fn rule_undocumented_unsafe(
    path: &str,
    lexed: &Lexed,
    token_lines: &[usize],
    waived: &dyn Fn(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for t in &lexed.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if has_safety_comment(lexed, token_lines, t.line) || waived(RULE_UNSAFE, t.line) {
            continue;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: t.line,
            rule: RULE_UNSAFE,
            msg: String::from("`unsafe` without a `// SAFETY:` comment directly above"),
        });
    }
}

/// A `SAFETY:` comment counts when it trails the same line, or ends on a
/// line whose next token line is exactly the `unsafe` line (i.e. nothing
/// but blank/comment lines in between).
fn has_safety_comment(lexed: &Lexed, token_lines: &[usize], line: usize) -> bool {
    let covers = |c: &Comment| {
        if !c.text.contains("SAFETY:") {
            return false;
        }
        if c.trailing && c.line == line {
            return true;
        }
        c.end_line < line
            && token_lines
                .iter()
                .copied()
                .find(|&l| l > c.end_line)
                .is_some_and(|next| next == line)
    };
    lexed.comments.iter().any(covers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        scan_file(path, crate_name, &lex(src))
    }

    #[test]
    fn wall_clock_trips_and_allowlists() {
        let src = "let t0 = std::time::Instant::now();";
        assert_eq!(run("crates/mpi/src/x.rs", "mpi", src).len(), 1);
        assert!(run("crates/trace/src/lib.rs", "trace", src).is_empty());
        assert!(run("crates/bench/src/bin/b.rs", "bench", src).is_empty());
    }

    #[test]
    fn wall_clock_waiver_needs_reason() {
        let waived = "// dlsr-lint: allow(wall-clock) -- measured readiness is wall-domain\n\
                      let t0 = Instant::now();";
        assert!(run("crates/mpi/src/x.rs", "mpi", waived).is_empty());

        let bare = "// dlsr-lint: allow(wall-clock)\nlet t0 = Instant::now();";
        let f = run("crates/mpi/src/x.rs", "mpi", bare);
        assert!(f.iter().any(|f| f.rule == RULE_WAIVER));
        assert!(f.iter().any(|f| f.rule == RULE_WALL_CLOCK));
    }

    #[test]
    fn trailing_waiver_applies_to_its_own_line() {
        let src = "let t = Instant::now(); // dlsr-lint: allow(wall-clock) -- bench-only path";
        assert!(run("crates/mpi/src/x.rs", "mpi", src).is_empty());
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let src = "// dlsr-lint: allow(wallclock) -- typo\nlet x = 1;";
        let f = run("crates/mpi/src/x.rs", "mpi", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_WAIVER);
    }

    #[test]
    fn hash_rule_only_in_rank_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run("crates/horovod/src/x.rs", "horovod", src).len(), 1);
        assert!(run("crates/nn/src/x.rs", "nn", src).is_empty());
    }

    #[test]
    fn hot_alloc_scopes_to_annotated_fn_only() {
        let src = "
            #[dlsr::hot]
            fn hot_one(dst: &mut [f32]) { let v = Vec::new(); let s = vec![1]; }
            fn cold(xs: &[f32]) -> Vec<f32> { xs.to_vec() }
        ";
        let f = run("crates/tensor/src/x.rs", "tensor", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == RULE_HOT_ALLOC));
        assert!(f.iter().all(|f| f.msg.contains("hot_one")));
    }

    #[test]
    fn hot_alloc_sees_method_calls() {
        let src =
            "#[dlsr::hot]\nfn h(xs: &[f32]) { let _ = xs.iter().map(|x| x).collect::<Vec<_>>(); }";
        let f = run("crates/tensor/src/x.rs", "tensor", src);
        assert!(f.iter().any(|f| f.msg.contains("collect")));
    }

    #[test]
    fn hot_markers_enforced_in_tensor_only() {
        let src = "fn pack_b_block(dst: &mut [f32]) {}";
        let f = run("crates/tensor/src/x.rs", "tensor", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_HOT_MARKERS);
        // outside crates/tensor/src the convention is not enforced
        assert!(run("crates/bench/src/x.rs", "bench", src).is_empty());

        let marked = "#[dlsr::hot]\nfn microkernel_scalar(acc: &mut [f32]) {}";
        assert!(run("crates/tensor/src/x.rs", "tensor", marked).is_empty());

        // other attributes between #[dlsr::hot] and the fn are tolerated
        let stacked = "#[dlsr::hot]\n#[inline]\nfn pack_a(dst: &mut [f32]) {}";
        assert!(run("crates/tensor/src/x.rs", "tensor", stacked).is_empty());

        let waivered = "// dlsr-lint: allow(hot-markers) -- setup-only packer\n\
                        fn pack_setup_table(dst: &mut [f32]) {}";
        assert!(run("crates/tensor/src/x.rs", "tensor", waivered).is_empty());
    }

    #[test]
    fn thread_spawn_scoped_to_executor_module() {
        let spawn = "let h = std::thread::spawn(|| {});";
        let handle = "fn park(h: std::thread::JoinHandle<()>) {}";
        let scope = "std::thread::scope(|s| {});";
        for src in [spawn, handle, scope] {
            let f = run("crates/mpi/src/comm.rs", "mpi", src);
            assert_eq!(f.len(), 1, "{src}: {f:?}");
            assert_eq!(f[0].rule, RULE_THREAD);
            // the executor module owns rank parallelism
            assert!(
                run("crates/mpi/src/executor/context.rs", "mpi", src).is_empty(),
                "{src}"
            );
        }
        // only rank-execution crates are in scope
        assert!(run("crates/bench/src/x.rs", "bench", spawn).is_empty());
        // thread::sleep and similar non-spawning calls are fine
        assert!(run("crates/mpi/src/verify.rs", "mpi", "std::thread::sleep(d);").is_empty());
        // waivers work like everywhere else
        let waived = "// dlsr-lint: allow(thread-spawn) -- test-only stress harness\n\
                      let h = std::thread::spawn(|| {});";
        assert!(run("crates/mpi/src/x.rs", "mpi", waived).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert_eq!(run("crates/tensor/src/x.rs", "tensor", bad).len(), 1);

        let good = "fn f() {\n    // SAFETY: the caller proved the index is in bounds.\n    unsafe { core::hint::unreachable_unchecked() }\n}";
        assert!(run("crates/tensor/src/x.rs", "tensor", good).is_empty());

        let trailing = "fn f() { unsafe { x() } } // SAFETY: trivially in bounds";
        assert!(run("crates/tensor/src/x.rs", "tensor", trailing).is_empty());
    }

    #[test]
    fn unsafe_in_string_is_not_flagged() {
        let src = "fn f() { let s = \"unsafe\"; }";
        assert!(run("crates/tensor/src/x.rs", "tensor", src).is_empty());
    }
}
