//! Findings, waivers, and the file-local lexical rules.
//!
//! Eight rules guard the simulator's load-bearing assumptions (see
//! docs/CORRECTNESS.md for the full catalogue). Four are file-local and
//! live here:
//!
//! - `hash-collections` — no `HashMap` / `HashSet` in rank-deterministic
//!   crates (mpi, horovod, cluster, nccl, faults). Their iteration order
//!   is randomized per process; `BTreeMap` / `BTreeSet` / `Vec` are the
//!   deterministic replacements.
//! - `undocumented-unsafe` — every `unsafe` token needs a `// SAFETY:`
//!   comment immediately above it (or trailing on the same line).
//! - `hot-markers` — in `crates/tensor/src`, functions following the hot
//!   kernel naming convention (`microkernel_*`, `pack_*`) must carry
//!   `#[dlsr::hot]`, so the `hot-alloc` rule actually covers them.
//! - `thread-spawn` — in the rank-execution crates (mpi, cluster), no
//!   `thread::spawn` / `thread::scope` / `JoinHandle` outside the
//!   sanctioned executor module (`crates/mpi/src/executor/`).
//!
//! The other four are interprocedural and live in [`flow`](crate::flow):
//! `wall-clock` (transitive; `#[dlsr::wall]` marks the wall domain),
//! `hot-alloc` (allocation reachable from a `#[dlsr::hot]` fn through the
//! call graph), `determinism-taint` (nondeterminism sources reachable from
//! rank-deterministic roots) and `collective-order` (statically
//! rank-divergent collective sequences).
//!
//! Waivers: a comment `dlsr-lint: allow(<rule>[, <rule>...]) -- <reason>`
//! suppresses the named rules on the next source line (or its own line
//! when trailing). The reason is mandatory. A waiver that suppresses
//! nothing is itself reported (stale-waiver detection), so waivers cannot
//! rot as code moves.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

pub const RULE_WALL_CLOCK: &str = "wall-clock";
pub const RULE_HASH: &str = "hash-collections";
pub const RULE_HOT_ALLOC: &str = "hot-alloc";
pub const RULE_UNSAFE: &str = "undocumented-unsafe";
pub const RULE_HOT_MARKERS: &str = "hot-markers";
pub const RULE_THREAD: &str = "thread-spawn";
pub const RULE_TAINT: &str = "determinism-taint";
pub const RULE_ORDER: &str = "collective-order";
pub const RULE_WAIVER: &str = "waiver";

pub const ALL_RULES: [&str; 8] = [
    RULE_WALL_CLOCK,
    RULE_HASH,
    RULE_HOT_ALLOC,
    RULE_UNSAFE,
    RULE_HOT_MARKERS,
    RULE_THREAD,
    RULE_TAINT,
    RULE_ORDER,
];

/// Crates whose code runs identically on every rank; hash-order
/// nondeterminism there can diverge schedules.
pub const RANK_DETERMINISTIC_CRATES: [&str; 5] = ["mpi", "horovod", "cluster", "nccl", "faults"];

/// Identifiers banned inside (and transitively below) `#[dlsr::hot]`
/// bodies regardless of receiver.
pub const HOT_BANNED_IDENTS: [&str; 6] = [
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "clone",
    "with_capacity",
];

/// `Type :: new`-style paths banned inside hot bodies.
pub const HOT_BANNED_PATHS: [(&str, &str); 2] = [("Vec", "new"), ("Box", "new")];

/// Macros banned inside hot bodies.
pub const HOT_BANNED_MACROS: [&str; 2] = ["vec", "format"];

/// Path prefix where the hot-kernel naming convention is enforced, and the
/// fn-name prefixes that convention covers.
pub const HOT_MARKER_PATH: &str = "crates/tensor/src/";
pub const HOT_MARKER_FN_PREFIXES: [&str; 2] = ["microkernel_", "pack_"];

/// Crates where rank execution is the executor's exclusive business.
pub const THREAD_CRATES: [&str; 2] = ["mpi", "cluster"];

/// The one module allowed to create rank threads.
pub const THREAD_ALLOWLIST: [&str; 1] = ["crates/mpi/src/executor/"];

/// A waiver parsed from a `dlsr-lint: allow(<rules>) -- <reason>` comment.
#[derive(Debug)]
pub struct Waiver {
    /// Rules the waiver names (comma-separated in the comment).
    pub rules: Vec<String>,
    /// Source line the waiver applies to.
    pub target_line: usize,
    /// Line of the waiver comment itself (for stale-waiver findings).
    pub comment_line: usize,
    /// Per-rule usage flags, parallel to `rules`; a listed rule that never
    /// suppresses a finding makes the waiver stale.
    pub used: Vec<bool>,
}

/// Waivers for every analyzed file, with usage tracking. Rules consult it
/// through [`WaiverTable::check`], which both answers "is this finding
/// waived?" and records the use for stale detection.
#[derive(Debug, Default)]
pub struct WaiverTable {
    files: Vec<FileWaivers>,
}

/// One file's waivers.
#[derive(Debug)]
pub struct FileWaivers {
    pub path: String,
    pub waivers: Vec<Waiver>,
}

impl WaiverTable {
    pub fn new(files: Vec<FileWaivers>) -> WaiverTable {
        WaiverTable { files }
    }

    /// Is `rule` waived on `line` of file `file`? Marks the waiver used.
    pub fn check(&mut self, file: usize, rule: &str, line: usize) -> bool {
        let Some(fw) = self.files.get_mut(file) else {
            return false;
        };
        let mut hit = false;
        for w in &mut fw.waivers {
            if w.target_line != line {
                continue;
            }
            for (i, r) in w.rules.iter().enumerate() {
                if r == rule {
                    w.used[i] = true;
                    hit = true;
                }
            }
        }
        hit
    }

    /// Findings for every waiver rule that suppressed nothing.
    pub fn stale_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for fw in &self.files {
            for w in &fw.waivers {
                for (i, r) in w.rules.iter().enumerate() {
                    if !w.used[i] {
                        out.push(Finding {
                            path: fw.path.clone(),
                            line: w.comment_line,
                            rule: RULE_WAIVER,
                            msg: format!(
                                "stale waiver: `allow({r})` suppresses nothing on line {}",
                                w.target_line
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Parse waiver comments from one file. A waiver with no `-- reason` text
/// is reported as a violation of the `waiver` rule; so is one naming an
/// unknown rule, so a typo cannot silently disable nothing.
pub fn collect_waivers(
    path: &str,
    lexed: &Lexed,
    token_lines: &[usize],
) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        // A waiver must be the comment's first content (after the `//`,
        // `//!`, `/*` markers) — prose that merely mentions the syntax,
        // like this crate's own docs, is not a waiver.
        let content = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix("dlsr-lint: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: RULE_WAIVER,
                msg: String::from("malformed waiver: missing `)`"),
            });
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !ALL_RULES.contains(&r.as_str()))
            .collect();
        if rules.is_empty() || !unknown.is_empty() {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: RULE_WAIVER,
                msg: format!("waiver names unknown rule(s) {unknown:?}"),
            });
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after
            .trim_start()
            .strip_prefix("--")
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: RULE_WAIVER,
                msg: format!("waiver for {rules:?} has no `-- <reason>`"),
            });
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            token_lines
                .iter()
                .copied()
                .find(|&l| l > c.end_line)
                .unwrap_or(c.end_line + 1)
        };
        let used = vec![false; rules.len()];
        waivers.push(Waiver {
            rules,
            target_line,
            comment_line: c.line,
            used,
        });
    }
    (waivers, findings)
}

/// Run the file-local rules over one lexed file. `waived` is consulted
/// (and usage recorded) per candidate finding.
pub fn local_rules(
    path: &str,
    crate_name: &str,
    lexed: &Lexed,
    token_lines: &[usize],
    waived: &mut dyn FnMut(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    rule_hash_collections(path, crate_name, lexed, waived, findings);
    rule_undocumented_unsafe(path, lexed, token_lines, waived, findings);
    rule_hot_markers(path, lexed, waived, findings);
    rule_thread_spawn(path, crate_name, lexed, waived, findings);
}

fn rule_hash_collections(
    path: &str,
    crate_name: &str,
    lexed: &Lexed,
    waived: &mut dyn FnMut(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !RANK_DETERMINISTIC_CRATES.contains(&crate_name) {
        return;
    }
    for t in &lexed.toks {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !waived(RULE_HASH, t.line)
        {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: RULE_HASH,
                msg: format!(
                    "`{}` in rank-deterministic crate `{}`; iteration order is \
                     process-random — use BTreeMap/BTreeSet/Vec",
                    t.text, crate_name
                ),
            });
        }
    }
}

/// Does the token sequence at `i` spell `# [ dlsr :: hot ]`?
pub fn is_hot_attr(toks: &[Tok], i: usize) -> bool {
    let want = ["#", "[", "dlsr", ":", ":", "hot", "]"];
    toks.len() >= i + want.len() && want.iter().enumerate().all(|(k, w)| toks[i + k].text == *w)
}

/// `hot-markers`: inside `crates/tensor/src`, any fn whose name follows
/// the kernel naming convention must be annotated `#[dlsr::hot]` —
/// otherwise the `hot-alloc` scan never sees its body.
fn rule_hot_markers(
    path: &str,
    lexed: &Lexed,
    waived: &mut dyn FnMut(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !path.starts_with(HOT_MARKER_PATH) {
        return;
    }
    let toks = &lexed.toks;
    // Indices of `fn` keywords reached by walking forward from a
    // `#[dlsr::hot]` attribute (skipping any further attributes and
    // qualifier keywords in between).
    let mut hot_fns = Vec::new();
    for i in 0..toks.len() {
        if !is_hot_attr(toks, i) {
            continue;
        }
        let mut j = i + 7;
        while j < toks.len() && toks[j].text != "fn" {
            if toks[j].text == ";" || toks[j].text == "}" {
                break;
            }
            j += 1;
        }
        if j < toks.len() && toks[j].text == "fn" {
            hot_fns.push(j);
        }
    }
    for (j, t) in toks.iter().enumerate() {
        if t.text != "fn" {
            continue;
        }
        let Some(name) = toks.get(j + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        if !HOT_MARKER_FN_PREFIXES
            .iter()
            .any(|p| name.text.starts_with(p))
        {
            continue;
        }
        if hot_fns.contains(&j) || waived(RULE_HOT_MARKERS, name.line) {
            continue;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: name.line,
            rule: RULE_HOT_MARKERS,
            msg: format!(
                "kernel-convention fn `{}` lacks `#[dlsr::hot]`; unmarked kernels \
                 escape the hot-alloc scan",
                name.text
            ),
        });
    }
}

/// `thread-spawn`: in the rank-execution crates, OS threads may only be
/// created by the sanctioned executor module. `thread::spawn`,
/// `thread::scope` and `JoinHandle` anywhere else are violations — a rank
/// path that quietly spawns its own thread breaks the driven core's
/// zero-thread guarantee and reintroduces scheduling nondeterminism the
/// execution cores exist to contain.
fn rule_thread_spawn(
    path: &str,
    crate_name: &str,
    lexed: &Lexed,
    waived: &mut dyn FnMut(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !THREAD_CRATES.contains(&crate_name) {
        return;
    }
    if THREAD_ALLOWLIST.iter().any(|p| path.starts_with(p)) {
        return;
    }
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = if t.text == "JoinHandle" {
            Some("JoinHandle")
        } else if (t.text == "spawn" || t.text == "scope")
            && i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].text == "thread"
        {
            Some(if t.text == "spawn" {
                "thread::spawn"
            } else {
                "thread::scope"
            })
        } else {
            None
        };
        if let Some(what) = what {
            if waived(RULE_THREAD, t.line) {
                continue;
            }
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: RULE_THREAD,
                msg: format!(
                    "`{what}` outside the sanctioned executor module; rank \
                     parallelism belongs to crates/mpi/src/executor/ only"
                ),
            });
        }
    }
}

fn rule_undocumented_unsafe(
    path: &str,
    lexed: &Lexed,
    token_lines: &[usize],
    waived: &mut dyn FnMut(&str, usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for t in &lexed.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if has_safety_comment(lexed, token_lines, t.line) || waived(RULE_UNSAFE, t.line) {
            continue;
        }
        findings.push(Finding {
            path: path.to_string(),
            line: t.line,
            rule: RULE_UNSAFE,
            msg: String::from("`unsafe` without a `// SAFETY:` comment directly above"),
        });
    }
}

/// A `SAFETY:` comment counts when it trails the same line, or ends on a
/// line whose next token line is exactly the `unsafe` line (i.e. nothing
/// but blank/comment lines in between).
fn has_safety_comment(lexed: &Lexed, token_lines: &[usize], line: usize) -> bool {
    let covers = |c: &Comment| {
        if !c.text.contains("SAFETY:") {
            return false;
        }
        if c.trailing && c.line == line {
            return true;
        }
        c.end_line < line
            && token_lines
                .iter()
                .copied()
                .find(|&l| l > c.end_line)
                .is_some_and(|next| next == line)
    };
    lexed.comments.iter().any(covers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    /// Run waiver collection + the local rules over one pseudo-file, the
    /// way `analyze_files` does, including stale-waiver detection.
    fn run(path: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let token_lines = lexed.token_lines();
        let (waivers, mut findings) = collect_waivers(path, &lexed, &token_lines);
        let mut table = WaiverTable::new(vec![FileWaivers {
            path: path.to_string(),
            waivers,
        }]);
        let mut waived = |rule: &str, line: usize| table.check(0, rule, line);
        local_rules(
            path,
            crate_name,
            &lexed,
            &token_lines,
            &mut waived,
            &mut findings,
        );
        findings.extend(table.stale_findings());
        findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        findings
    }

    #[test]
    fn hash_rule_only_in_rank_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(run("crates/horovod/src/x.rs", "horovod", src).len(), 1);
        assert!(run("crates/nn/src/x.rs", "nn", src).is_empty());
    }

    #[test]
    fn hash_waiver_needs_reason_and_is_tracked() {
        let waived = "// dlsr-lint: allow(hash-collections) -- fixed deterministic hasher\n\
                      use std::collections::HashMap;";
        assert!(run("crates/mpi/src/x.rs", "mpi", waived).is_empty());

        let bare = "// dlsr-lint: allow(hash-collections)\nuse std::collections::HashMap;";
        let f = run("crates/mpi/src/x.rs", "mpi", bare);
        assert!(f.iter().any(|f| f.rule == RULE_WAIVER));
        assert!(f.iter().any(|f| f.rule == RULE_HASH));
    }

    #[test]
    fn trailing_waiver_applies_to_its_own_line() {
        let src = "use std::collections::HashSet; // dlsr-lint: allow(hash-collections) -- scratch";
        assert!(run("crates/mpi/src/x.rs", "mpi", src).is_empty());
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let src = "// dlsr-lint: allow(wallclock) -- typo\nlet x = 1;";
        let f = run("crates/mpi/src/x.rs", "mpi", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_WAIVER);
    }

    #[test]
    fn stale_waiver_is_flagged() {
        let src = "// dlsr-lint: allow(hash-collections) -- nothing here anymore\nlet x = 1;";
        let f = run("crates/mpi/src/x.rs", "mpi", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_WAIVER);
        assert!(f[0].msg.contains("stale"), "{}", f[0].msg);
    }

    #[test]
    fn multi_rule_waiver_partial_use_is_stale() {
        // hash-collections fires and is waived; thread-spawn never fires,
        // so its half of the waiver is stale.
        let src = "// dlsr-lint: allow(hash-collections, thread-spawn) -- both claimed\n\
                   use std::collections::HashMap;";
        let f = run("crates/mpi/src/x.rs", "mpi", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_WAIVER);
        assert!(f[0].msg.contains("thread-spawn"), "{}", f[0].msg);
    }

    #[test]
    fn hot_markers_enforced_in_tensor_only() {
        let src = "fn pack_b_block(dst: &mut [f32]) {}";
        let f = run("crates/tensor/src/x.rs", "tensor", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_HOT_MARKERS);
        // outside crates/tensor/src the convention is not enforced
        assert!(run("crates/bench/src/x.rs", "bench", src).is_empty());

        let marked = "#[dlsr::hot]\nfn microkernel_scalar(acc: &mut [f32]) {}";
        assert!(run("crates/tensor/src/x.rs", "tensor", marked).is_empty());

        // other attributes between #[dlsr::hot] and the fn are tolerated
        let stacked = "#[dlsr::hot]\n#[inline]\nfn pack_a(dst: &mut [f32]) {}";
        assert!(run("crates/tensor/src/x.rs", "tensor", stacked).is_empty());

        let waivered = "// dlsr-lint: allow(hot-markers) -- setup-only packer\n\
                        fn pack_setup_table(dst: &mut [f32]) {}";
        assert!(run("crates/tensor/src/x.rs", "tensor", waivered).is_empty());
    }

    #[test]
    fn thread_spawn_scoped_to_executor_module() {
        let spawn = "let h = std::thread::spawn(|| {});";
        let handle = "fn park(h: std::thread::JoinHandle<()>) {}";
        let scope = "std::thread::scope(|s| {});";
        for src in [spawn, handle, scope] {
            let f = run("crates/mpi/src/comm.rs", "mpi", src);
            assert_eq!(f.len(), 1, "{src}: {f:?}");
            assert_eq!(f[0].rule, RULE_THREAD);
            // the executor module owns rank parallelism
            assert!(
                run("crates/mpi/src/executor/context.rs", "mpi", src).is_empty(),
                "{src}"
            );
        }
        // only rank-execution crates are in scope
        assert!(run("crates/bench/src/x.rs", "bench", spawn).is_empty());
        // thread::sleep and similar non-spawning calls are fine
        assert!(run("crates/mpi/src/verify.rs", "mpi", "std::thread::sleep(d);").is_empty());
        // waivers work like everywhere else
        let waived = "// dlsr-lint: allow(thread-spawn) -- test-only stress harness\n\
                      let h = std::thread::spawn(|| {});";
        assert!(run("crates/mpi/src/x.rs", "mpi", waived).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        assert_eq!(run("crates/tensor/src/x.rs", "tensor", bad).len(), 1);

        let good = "fn f() {\n    // SAFETY: the caller proved the index is in bounds.\n    unsafe { core::hint::unreachable_unchecked() }\n}";
        assert!(run("crates/tensor/src/x.rs", "tensor", good).is_empty());

        let trailing = "fn f() { unsafe { x() } } // SAFETY: trivially in bounds";
        assert!(run("crates/tensor/src/x.rs", "tensor", trailing).is_empty());
    }

    #[test]
    fn unsafe_in_string_is_not_flagged() {
        let src = "fn f() { let s = \"unsafe\"; }";
        assert!(run("crates/tensor/src/x.rs", "tensor", src).is_empty());
    }
}
