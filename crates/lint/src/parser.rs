//! A small recursive-descent parser over the [`lexer`](crate::lexer)
//! token stream.
//!
//! The vendored dependency set has no `syn`, so this parser exists to give
//! the interprocedural rules just enough structure: items (fns, impls,
//! traits, mods) with their attributes, fn bodies as statement lists that
//! preserve calls, branches, loops and `unsafe` blocks, and exact token
//! spans so lexical sub-scans (banned identifiers, wall-clock reads) can
//! run over a single fn's body.
//!
//! It is *not* a full Rust grammar. Everything it does not model (struct
//! fields, type aliases, expressions that contain no calls) is consumed as
//! an opaque [`ItemKind::Plain`] item or skipped token-by-token — but the
//! parse is total: every token of every file belongs to exactly one
//! top-level item, and the round-trip test in `tests/parser_roundtrip.rs`
//! asserts that no item of the workspace corpus falls back to the
//! `other` kind.

use crate::lexer::{Lexed, Tok, TokKind};

/// Parsed file: the top-level item list. Item spans tile the token stream
/// exactly (item N+1 starts where item N ends).
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item (top-level or nested).
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Outer attributes, rendered with all whitespace removed:
    /// `dlsr::hot`, `cfg(test)`, `inline(always)`.
    pub attrs: Vec<String>,
    /// Token index range `[start, end)` the item occupies.
    pub span: (usize, usize),
    /// Source line of the item's first token.
    pub line: usize,
}

/// Item kinds the rules care about; everything else is [`ItemKind::Plain`].
#[derive(Debug)]
pub enum ItemKind {
    /// A function (free, method, or trait signature without a body).
    Fn(FnItem),
    /// An item that contains further items: `mod`, `trait`, or `impl`.
    Container {
        /// `"mod"`, `"trait"` or `"impl"`.
        kw: &'static str,
        /// Module/trait name, or the implemented type's head identifier
        /// (`Vec` for `impl<T> Foo for Vec<T>`); empty when unnameable.
        name: String,
        /// For `impl Trait for Type`, the trait's head identifier.
        trait_name: Option<String>,
        /// Items inside the braces.
        items: Vec<Item>,
    },
    /// An item consumed without structure; `kw` records what it was
    /// (`use`, `struct`, `macro_rules`, `attr`, ... or `other` for the
    /// give-up path the round-trip test forbids).
    Plain {
        /// The leading keyword (or pseudo-kind) of the consumed item.
        kw: &'static str,
    },
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Parsed body, `None` for bodyless signatures (trait methods,
    /// foreign fns).
    pub body: Option<Block>,
    /// Token index range `[start, end)` of the body *inside* the braces
    /// (empty range when there is no body).
    pub body_span: (usize, usize),
}

/// A statement list (fn body, branch arm, loop body, unsafe block).
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement-level construct the dataflow rules consume.
#[derive(Debug)]
pub enum Stmt {
    /// A call expression.
    Call(Call),
    /// An `if`/`else` chain or a `match`: control flow that selects one of
    /// `arms`. An `if` without `else` carries an implicit empty arm.
    Branch {
        /// True when the condition / scrutinee / a guard mentions a
        /// rank-valued identifier (`rank`, `*_rank`, `rank_*`) — the
        /// signal the static collective-order check keys on.
        rank_dep: bool,
        /// The alternative bodies.
        arms: Vec<Block>,
        /// Line of the `if`/`match` keyword.
        line: usize,
    },
    /// A `loop`/`while`/`for` body.
    Loop {
        /// True when the loop header mentions a rank-valued identifier.
        rank_dep: bool,
        /// The loop body.
        body: Block,
        /// Line of the loop keyword.
        line: usize,
    },
    /// An `unsafe { ... }` block.
    Unsafe {
        /// Line of the `unsafe` keyword.
        line: usize,
        /// The block body.
        body: Block,
    },
    /// A nested item (fn inside fn, `use`, nested `impl`, ...).
    Item(Item),
}

/// A call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Called name: last path segment for `a::b::f(...)`, the method name
    /// for `.f(...)`.
    pub name: String,
    /// For path calls, the segment before the name (`b` above, `Vec` for
    /// `Vec::new`); `None` for bare and method calls.
    pub qualifier: Option<String>,
    /// True for method-call syntax `recv.f(...)`.
    pub method: bool,
    /// True for `self.f(...)` specifically.
    pub recv_self: bool,
    /// Source line of the called name.
    pub line: usize,
}

/// Does this identifier look rank-valued? The collective-order check
/// treats control flow over such values as potentially rank-divergent.
pub fn is_rank_ident(text: &str) -> bool {
    text == "rank" || text.starts_with("rank_") || text.ends_with("_rank")
}

/// Parse one lexed file.
pub fn parse(lexed: &Lexed) -> Ast {
    let mut p = Parser {
        toks: &lexed.toks,
        pos: 0,
    };
    let items = p.items_until_close(false);
    Ast { items }
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn cur(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn cur_text(&self) -> &'a str {
        self.toks
            .get(self.pos)
            .map(|t| t.text.as_str())
            .unwrap_or("")
    }

    fn peek_text(&self, ahead: usize) -> &'a str {
        self.toks
            .get(self.pos + ahead)
            .map(|t| t.text.as_str())
            .unwrap_or("")
    }

    fn cur_line(&self) -> usize {
        self.toks.get(self.pos).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.cur_text() == text {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `::` is two adjacent `:` tokens.
    fn at_path_sep(&self) -> bool {
        self.cur_text() == ":" && self.peek_text(1) == ":"
    }

    /// Items until end of stream (`inside == false`) or until a `}`
    /// closing the container (`inside == true`; the `}` is not consumed).
    fn items_until_close(&mut self, inside: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.at_end() {
            if inside && self.cur_text() == "}" {
                break;
            }
            items.push(self.parse_item());
        }
        items
    }

    /// Parse one item starting at the current token. Always makes
    /// progress.
    fn parse_item(&mut self) -> Item {
        let start = self.pos;
        let line = self.cur_line();
        let mut attrs = Vec::new();

        // Leading attributes. An inner attribute (`#![...]`) attaches to
        // the enclosing scope, not a following item: emit it on its own.
        while self.cur_text() == "#" {
            let inner = self.peek_text(1) == "!";
            let rendered = self.parse_attr();
            if inner && attrs.is_empty() {
                return Item {
                    kind: ItemKind::Plain { kw: "attr" },
                    attrs: vec![rendered],
                    span: (start, self.pos),
                    line,
                };
            }
            attrs.push(rendered);
        }

        // Qualifiers before the deciding keyword.
        loop {
            match self.cur_text() {
                "pub" => {
                    self.bump();
                    if self.cur_text() == "(" {
                        self.skip_balanced("(", ")");
                    }
                }
                "default" | "async" => self.bump(),
                "unsafe" => {
                    self.bump();
                }
                "const" => {
                    // `const fn` / `const unsafe fn` are qualifiers; a
                    // `const NAME: ...` item ends at `;`.
                    match self.peek_text(1) {
                        "fn" | "unsafe" | "extern" | "async" => self.bump(),
                        _ => {
                            self.skip_to_semi();
                            return self.finish(
                                start,
                                line,
                                attrs,
                                ItemKind::Plain { kw: "const" },
                            );
                        }
                    }
                }
                "extern" => {
                    self.bump();
                    if self.cur_text() == "crate" {
                        self.skip_to_semi();
                        return self.finish(start, line, attrs, ItemKind::Plain { kw: "extern" });
                    }
                    if self.cur().is_some_and(|t| t.kind == TokKind::Literal) {
                        self.bump(); // ABI string
                    }
                    if self.cur_text() == "{" {
                        self.skip_balanced("{", "}");
                        return self.finish(start, line, attrs, ItemKind::Plain { kw: "extern" });
                    }
                }
                _ => break,
            }
        }

        let kind = match self.cur_text() {
            "fn" => {
                let f = self.parse_fn();
                ItemKind::Fn(f)
            }
            "mod" => {
                self.bump();
                let name = self.take_ident();
                if self.eat(";") {
                    ItemKind::Plain { kw: "mod" }
                } else {
                    self.eat("{");
                    let items = self.items_until_close(true);
                    self.eat("}");
                    ItemKind::Container {
                        kw: "mod",
                        name,
                        trait_name: None,
                        items,
                    }
                }
            }
            "trait" => {
                self.bump();
                let name = self.take_ident();
                self.skip_header_to_brace();
                if self.eat("{") {
                    let items = self.items_until_close(true);
                    self.eat("}");
                    ItemKind::Container {
                        kw: "trait",
                        name,
                        trait_name: None,
                        items,
                    }
                } else {
                    // `trait Alias = ...;` or malformed: already consumed
                    // to `;` by the header skip.
                    ItemKind::Plain { kw: "trait" }
                }
            }
            "impl" => {
                self.bump();
                let (name, trait_name) = self.parse_impl_header();
                if self.eat("{") {
                    let items = self.items_until_close(true);
                    self.eat("}");
                    ItemKind::Container {
                        kw: "impl",
                        name,
                        trait_name,
                        items,
                    }
                } else {
                    ItemKind::Plain { kw: "impl" }
                }
            }
            "struct" | "enum" | "union" => {
                let kw = if self.cur_text() == "struct" {
                    "struct"
                } else if self.cur_text() == "enum" {
                    "enum"
                } else {
                    "union"
                };
                self.bump();
                self.skip_struct_like();
                ItemKind::Plain { kw }
            }
            "use" => {
                self.skip_to_semi();
                ItemKind::Plain { kw: "use" }
            }
            "type" => {
                self.skip_to_semi();
                ItemKind::Plain { kw: "type" }
            }
            "static" => {
                self.skip_to_semi();
                ItemKind::Plain { kw: "static" }
            }
            "macro_rules" => {
                self.bump();
                self.eat("!");
                self.take_ident();
                self.skip_balanced("{", "}");
                ItemKind::Plain { kw: "macro_rules" }
            }
            ";" => {
                self.bump();
                ItemKind::Plain { kw: "semi" }
            }
            _ => {
                // Item-level macro invocation: `path ! delim`.
                if self.cur().is_some_and(|t| t.kind == TokKind::Ident) && self.macro_invocation() {
                    ItemKind::Plain { kw: "macro" }
                } else {
                    // Give-up path: consume one token so the parse always
                    // terminates. The round-trip test asserts the corpus
                    // never lands here.
                    self.bump();
                    ItemKind::Plain { kw: "other" }
                }
            }
        };
        self.finish(start, line, attrs, kind)
    }

    fn finish(&mut self, start: usize, line: usize, attrs: Vec<String>, kind: ItemKind) -> Item {
        // Guarantee progress even on degenerate input.
        if self.pos == start {
            self.bump();
        }
        Item {
            kind,
            attrs,
            span: (start, self.pos),
            line,
        }
    }

    /// At an ident: if it starts `path ! delim`, consume the whole macro
    /// invocation (plus a trailing `;` for `()`/`[]` delimiters) and
    /// return true; otherwise restore the position and return false.
    fn macro_invocation(&mut self) -> bool {
        let save = self.pos;
        while self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
            self.bump();
            if self.at_path_sep() {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        if !self.eat("!") {
            self.pos = save;
            return false;
        }
        match self.cur_text() {
            "(" => {
                self.skip_balanced("(", ")");
                self.eat(";");
            }
            "[" => {
                self.skip_balanced("[", "]");
                self.eat(";");
            }
            "{" => {
                self.skip_balanced("{", "}");
            }
            _ => {
                self.pos = save;
                return false;
            }
        }
        true
    }

    /// Consume `#[...]` / `#![...]` and render its inside with all
    /// whitespace removed (`dlsr::hot`, `cfg(test)`).
    fn parse_attr(&mut self) -> String {
        self.eat("#");
        self.eat("!");
        let mut out = String::new();
        if self.cur_text() == "[" {
            self.bump();
            let mut depth = 1usize;
            while !self.at_end() && depth > 0 {
                match self.cur_text() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            self.bump();
                            break;
                        }
                    }
                    _ => {}
                }
                out.push_str(self.cur_text());
                self.bump();
            }
        }
        out
    }

    fn take_ident(&mut self) -> String {
        if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
            let s = self.cur_text().to_string();
            self.bump();
            s
        } else {
            String::new()
        }
    }

    /// Skip a balanced `open ... close` group (consumes both delimiters).
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if self.cur_text() != open {
            return;
        }
        self.bump();
        let mut depth = 1usize;
        while !self.at_end() && depth > 0 {
            let t = self.cur_text();
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Skip to the `;` ending a simple item, honouring nested
    /// `()`/`[]`/`{}` groups (consumes the `;`).
    fn skip_to_semi(&mut self) {
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut brace = 0usize;
        while !self.at_end() {
            match self.cur_text() {
                "(" => paren += 1,
                ")" => paren = paren.saturating_sub(1),
                "[" => bracket += 1,
                "]" => bracket = bracket.saturating_sub(1),
                "{" => brace += 1,
                "}" => {
                    if brace == 0 {
                        // Ran into the enclosing container's close: stop
                        // without consuming it.
                        return;
                    }
                    brace -= 1;
                }
                ";" if paren == 0 && bracket == 0 && brace == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip a struct/enum/union definition body: ends at a depth-0 `;`
    /// (unit/tuple struct) or after a depth-0 `{...}` group.
    fn skip_struct_like(&mut self) {
        let mut angle = 0usize;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut prev = "";
        while !self.at_end() {
            let t = self.cur_text();
            match t {
                "<" => angle += 1,
                ">" if prev != "-" => angle = angle.saturating_sub(1),
                "(" => paren += 1,
                ")" => paren = paren.saturating_sub(1),
                "[" => bracket += 1,
                "]" => bracket = bracket.saturating_sub(1),
                ";" if angle == 0 && paren == 0 && bracket == 0 => {
                    self.bump();
                    return;
                }
                "{" if angle == 0 && paren == 0 && bracket == 0 => {
                    self.skip_balanced("{", "}");
                    return;
                }
                "}" => return, // enclosing close: malformed, bail
                _ => {}
            }
            prev = t;
            self.bump();
        }
    }

    /// Skip header tokens (bounds, where clauses) up to a depth-0 `{`,
    /// arrow-aware so `Fn() -> T` bounds do not corrupt the angle count.
    /// Stops *at* the `{` (or consumes a terminating `;`).
    fn skip_header_to_brace(&mut self) {
        let mut angle = 0usize;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        let mut prev = "";
        while !self.at_end() {
            let t = self.cur_text();
            match t {
                "<" => angle += 1,
                ">" if prev != "-" => angle = angle.saturating_sub(1),
                "(" => paren += 1,
                ")" => paren = paren.saturating_sub(1),
                "[" => bracket += 1,
                "]" => bracket = bracket.saturating_sub(1),
                "{" if angle == 0 && paren == 0 && bracket == 0 => return,
                "}" => return,
                ";" if angle == 0 && paren == 0 && bracket == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            prev = t;
            self.bump();
        }
    }

    /// After `impl`: skip generics, then split the header at a depth-0
    /// `for` into trait and type parts. Returns `(type_name, trait_name)`.
    fn parse_impl_header(&mut self) -> (String, Option<String>) {
        if self.cur_text() == "<" {
            self.skip_generics();
        }
        let lo = self.pos;
        self.skip_header_to_brace();
        let hdr = &self.toks[lo..self.pos];
        let mut for_at = None;
        let mut angle = 0usize;
        let mut paren = 0usize;
        let mut prev = "";
        for (i, t) in hdr.iter().enumerate() {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" if prev != "-" => angle = angle.saturating_sub(1),
                "(" => paren += 1,
                ")" => paren = paren.saturating_sub(1),
                "for" if angle == 0 && paren == 0 => {
                    for_at = Some(i);
                    break;
                }
                _ => {}
            }
            prev = t.text.as_str();
        }
        let head_ident = |toks: &[Tok]| -> String {
            let mut angle = 0usize;
            let mut paren = 0usize;
            let mut bracket = 0usize;
            let mut prev = "";
            let mut last = String::new();
            for t in toks {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" if prev != "-" => angle = angle.saturating_sub(1),
                    "(" => paren += 1,
                    ")" => paren = paren.saturating_sub(1),
                    "[" => bracket += 1,
                    "]" => bracket = bracket.saturating_sub(1),
                    "where" if angle == 0 && paren == 0 && bracket == 0 => break,
                    txt => {
                        if angle == 0
                            && paren == 0
                            && bracket == 0
                            && t.kind == TokKind::Ident
                            && txt != "dyn"
                            && txt != "mut"
                            && txt != "const"
                        {
                            last = txt.to_string();
                        }
                    }
                }
                prev = t.text.as_str();
            }
            last
        };
        match for_at {
            Some(i) => (head_ident(&hdr[i + 1..]), Some(head_ident(&hdr[..i]))),
            None => (head_ident(hdr), None),
        }
    }

    /// Skip a `<...>` generics group, arrow-aware.
    fn skip_generics(&mut self) {
        if self.cur_text() != "<" {
            return;
        }
        self.bump();
        let mut depth = 1usize;
        let mut prev = "<";
        while !self.at_end() && depth > 0 {
            let t = self.cur_text();
            if t == "<" {
                depth += 1;
            } else if t == ">" && prev != "-" {
                depth -= 1;
            }
            prev = t;
            self.bump();
        }
    }

    /// At the `fn` keyword.
    fn parse_fn(&mut self) -> FnItem {
        let line = self.cur_line();
        self.eat("fn");
        let name = self.take_ident();
        if self.cur_text() == "<" {
            self.skip_generics();
        }
        self.skip_balanced("(", ")");
        // Return type / where clause up to the body `{` or a `;`.
        self.skip_header_to_brace();
        if self.cur_text() != "{" {
            return FnItem {
                name,
                line,
                body: None,
                body_span: (self.pos, self.pos),
            };
        }
        self.bump();
        let lo = self.pos;
        let body = self.parse_stmts(Stop::Brace);
        let hi = self.pos.saturating_sub(1); // exclude the consumed `}`
        FnItem {
            name,
            line,
            body: Some(body),
            body_span: (lo, hi.max(lo)),
        }
    }

    /// Parse statements until the stop condition. `Stop::Brace` consumes
    /// the terminating `}`; `Stop::MatchArm` consumes a terminating
    /// depth-0 `,` but leaves a terminating `}` for the caller.
    fn parse_stmts(&mut self, stop: Stop) -> Block {
        let mut stmts = Vec::new();
        // Paren/bracket depth for the MatchArm `,` terminator only; brace
        // nesting is handled structurally (nested `{}` recurse).
        let mut pdepth = 0usize;
        while !self.at_end() {
            match self.cur_text() {
                "}" => {
                    if stop == Stop::Brace {
                        self.bump();
                    }
                    break;
                }
                "," if stop == Stop::MatchArm && pdepth == 0 => {
                    self.bump();
                    break;
                }
                "(" | "[" => {
                    pdepth += 1;
                    self.bump();
                }
                ")" | "]" => {
                    pdepth = pdepth.saturating_sub(1);
                    self.bump();
                }
                "{" => {
                    // Bare block / struct literal body: parse and splice.
                    self.bump();
                    let inner = self.parse_stmts(Stop::Brace);
                    stmts.extend(inner.stmts);
                }
                "if" => {
                    let s = self.parse_if_chain(&mut stmts);
                    stmts.push(s);
                }
                "match" => {
                    let s = self.parse_match(&mut stmts);
                    stmts.push(s);
                }
                "loop" => {
                    let line = self.cur_line();
                    self.bump();
                    if self.eat("{") {
                        let body = self.parse_stmts(Stop::Brace);
                        stmts.push(Stmt::Loop {
                            rank_dep: false,
                            body,
                            line,
                        });
                    }
                }
                "while" | "for" => {
                    let line = self.cur_line();
                    self.bump();
                    let (rank_dep, _) = self.scan_cond(&mut stmts);
                    if self.eat("{") {
                        let body = self.parse_stmts(Stop::Brace);
                        stmts.push(Stmt::Loop {
                            rank_dep,
                            body,
                            line,
                        });
                    }
                }
                "unsafe" => {
                    if self.peek_text(1) == "{" {
                        let line = self.cur_line();
                        self.bump();
                        self.bump();
                        let body = self.parse_stmts(Stop::Brace);
                        stmts.push(Stmt::Unsafe { line, body });
                    } else {
                        stmts.push(Stmt::Item(self.parse_item()));
                    }
                }
                "const" => {
                    if self.peek_text(1) == "{" {
                        // Inline-const block: splice.
                        self.bump();
                        self.bump();
                        let inner = self.parse_stmts(Stop::Brace);
                        stmts.extend(inner.stmts);
                    } else {
                        stmts.push(Stmt::Item(self.parse_item()));
                    }
                }
                "fn" | "struct" | "enum" | "trait" | "impl" | "mod" | "use" | "static"
                | "macro_rules" => {
                    stmts.push(Stmt::Item(self.parse_item()));
                }
                "let" | "return" | "break" | "continue" | "move" | "in" | "as" | "mut" | "ref"
                | "else" => {
                    self.bump();
                }
                "#" => {
                    // Statement-level attribute (`#[cfg(...)]` on a stmt
                    // or expression): consume, attach to nothing.
                    self.parse_attr();
                }
                "." => {
                    let recv_self = self.pos > 0 && self.toks[self.pos - 1].text == "self";
                    self.bump();
                    if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                        let name = self.cur_text().to_string();
                        let line = self.cur_line();
                        self.bump();
                        if self.at_path_sep() && self.peek_text(2) == "<" {
                            self.bump();
                            self.bump();
                            self.skip_generics();
                        }
                        if self.cur_text() == "(" {
                            stmts.push(Stmt::Call(Call {
                                name,
                                qualifier: None,
                                method: true,
                                recv_self,
                                line,
                            }));
                        }
                    }
                }
                _ => {
                    if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                        if let Some(call) = self.parse_path_call() {
                            stmts.push(Stmt::Call(call));
                        }
                    } else {
                        self.bump();
                    }
                }
            }
        }
        Block { stmts }
    }

    /// At an ident inside a body: consume the path (`a::b::c`, with
    /// turbofish) and return a call when a `(` follows. Macro invocations
    /// (`path!`) consume only the `!`; their contents parse inline.
    fn parse_path_call(&mut self) -> Option<Call> {
        let mut segs: Vec<String> = Vec::new();
        let mut line = self.cur_line();
        loop {
            if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                line = self.cur_line();
                segs.push(self.cur_text().to_string());
                self.bump();
            } else {
                break;
            }
            if self.at_path_sep() {
                if self.peek_text(2) == "<" {
                    self.bump();
                    self.bump();
                    self.skip_generics();
                    if self.at_path_sep() {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                self.bump();
                self.bump();
                if !self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                    break;
                }
            } else {
                break;
            }
        }
        if segs.is_empty() {
            self.bump(); // defensive: guarantee progress
            return None;
        }
        if self.cur_text() == "!" {
            self.bump(); // macro invocation: contents parse inline
            return None;
        }
        if self.cur_text() != "(" {
            return None;
        }
        let name = segs.pop().unwrap_or_default();
        let qualifier = segs
            .pop()
            .filter(|q| q != "self" && q != "super" && q != "std" && q != "core" && q != "alloc");
        Some(Call {
            name,
            qualifier,
            method: false,
            recv_self: false,
            line,
        })
    }

    /// Scan a condition / loop header up to (not consuming) the depth-0
    /// block `{`. Emits calls found in the header into `stmts` (they run
    /// unconditionally before the branch) and returns
    /// `(rank_dep, had_tokens)`.
    fn scan_cond(&mut self, stmts: &mut Vec<Stmt>) -> (bool, bool) {
        let mut rank_dep = false;
        let mut any = false;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        // In `if let PAT = expr` / `while let`, struct-pattern braces may
        // appear between `let` and the depth-0 `=`; skip them there.
        let mut in_pattern = false;
        loop {
            if self.at_end() {
                break;
            }
            let t = self.cur_text();
            match t {
                "{" => {
                    if paren == 0 && bracket == 0 {
                        if in_pattern {
                            self.skip_balanced("{", "}");
                            continue;
                        }
                        break;
                    }
                    // A brace nested inside parens/brackets in the header
                    // is an expression brace (struct literal in an array,
                    // closure body, block arg) — never the loop/if body.
                    self.skip_balanced("{", "}");
                    continue;
                }
                "}" => break,
                "let" => {
                    in_pattern = true;
                    self.bump();
                }
                "=" if paren == 0 && bracket == 0 && self.peek_text(1) != "=" => {
                    in_pattern = false;
                    self.bump();
                }
                "(" => {
                    paren += 1;
                    self.bump();
                }
                ")" => {
                    paren = paren.saturating_sub(1);
                    self.bump();
                }
                "[" => {
                    bracket += 1;
                    self.bump();
                }
                "]" => {
                    bracket = bracket.saturating_sub(1);
                    self.bump();
                }
                "." => {
                    let recv_self = self.pos > 0 && self.toks[self.pos - 1].text == "self";
                    self.bump();
                    if self.cur().is_some_and(|t| t.kind == TokKind::Ident) {
                        let name = self.cur_text().to_string();
                        let line = self.cur_line();
                        if is_rank_ident(&name) {
                            rank_dep = true;
                        }
                        self.bump();
                        if self.at_path_sep() && self.peek_text(2) == "<" {
                            self.bump();
                            self.bump();
                            self.skip_generics();
                        }
                        if self.cur_text() == "(" {
                            stmts.push(Stmt::Call(Call {
                                name,
                                qualifier: None,
                                method: true,
                                recv_self,
                                line,
                            }));
                        }
                    }
                }
                _ => {
                    if self.cur().is_some_and(|tok| tok.kind == TokKind::Ident) {
                        if is_rank_ident(t) {
                            rank_dep = true;
                        }
                        if let Some(call) = self.parse_path_call() {
                            if is_rank_ident(&call.name) {
                                rank_dep = true;
                            }
                            stmts.push(Stmt::Call(call));
                        }
                        any = true;
                        continue;
                    }
                    self.bump();
                }
            }
            any = true;
        }
        (rank_dep, any)
    }

    /// At `if`: parse the whole `if` / `else if` / `else` chain into one
    /// Branch. Header calls are emitted into `stmts`.
    fn parse_if_chain(&mut self, stmts: &mut Vec<Stmt>) -> Stmt {
        let line = self.cur_line();
        self.eat("if");
        let (rank_dep, _) = self.scan_cond(stmts);
        let mut arms = Vec::new();
        if self.eat("{") {
            arms.push(self.parse_stmts(Stop::Brace));
        } else {
            arms.push(Block::default());
        }
        if self.cur_text() == "else" {
            self.bump();
            if self.cur_text() == "if" {
                // Nest the rest of the chain as the second arm.
                let nested = self.parse_if_chain(stmts);
                arms.push(Block {
                    stmts: vec![nested],
                });
            } else if self.eat("{") {
                arms.push(self.parse_stmts(Stop::Brace));
            } else {
                arms.push(Block::default());
            }
        } else {
            arms.push(Block::default());
        }
        Stmt::Branch {
            rank_dep,
            arms,
            line,
        }
    }

    /// At `match`: scrutinee, then one arm per `pattern => body`.
    fn parse_match(&mut self, stmts: &mut Vec<Stmt>) -> Stmt {
        let line = self.cur_line();
        self.eat("match");
        let (mut rank_dep, _) = self.scan_cond(stmts);
        let mut arms = Vec::new();
        if self.eat("{") {
            while !self.at_end() && self.cur_text() != "}" {
                // Pattern (and optional guard) up to the `=>`.
                let mut paren = 0usize;
                let mut bracket = 0usize;
                let mut brace = 0usize;
                let mut guard_calls: Vec<Stmt> = Vec::new();
                while !self.at_end() {
                    let t = self.cur_text();
                    match t {
                        "(" => paren += 1,
                        ")" => {
                            if paren == 0 {
                                break;
                            }
                            paren -= 1;
                        }
                        "[" => bracket += 1,
                        "]" => bracket = bracket.saturating_sub(1),
                        "{" => brace += 1,
                        "}" => {
                            if brace == 0 {
                                break; // match close: trailing tokens done
                            }
                            brace -= 1;
                        }
                        "=" if paren == 0
                            && bracket == 0
                            && brace == 0
                            && self.peek_text(1) == ">" =>
                        {
                            self.bump();
                            self.bump();
                            break;
                        }
                        _ => {
                            if self.cur().is_some_and(|tok| tok.kind == TokKind::Ident)
                                && is_rank_ident(t)
                            {
                                rank_dep = true;
                            }
                            // Guard calls (`Some(x) if x.rank() == 0 =>`):
                            // the `.` + ident + `(` shape inside pattern
                            // position can only be a guard expression.
                            if t == "."
                                && self.peek_text(2) == "("
                                && self
                                    .toks
                                    .get(self.pos + 1)
                                    .is_some_and(|n| n.kind == TokKind::Ident)
                            {
                                let name = self.peek_text(1).to_string();
                                if !name.is_empty() {
                                    if is_rank_ident(&name) {
                                        rank_dep = true;
                                    }
                                    guard_calls.push(Stmt::Call(Call {
                                        name,
                                        qualifier: None,
                                        method: true,
                                        recv_self: self.pos > 0
                                            && self.toks[self.pos - 1].text == "self",
                                        line: self.cur_line(),
                                    }));
                                }
                            }
                        }
                    }
                    self.bump();
                }
                if self.cur_text() == "}" {
                    break;
                }
                // Arm body.
                let mut body = if self.cur_text() == "{" {
                    self.bump();
                    let b = self.parse_stmts(Stop::Brace);
                    self.eat(",");
                    b
                } else {
                    self.parse_stmts(Stop::MatchArm)
                };
                if !guard_calls.is_empty() {
                    let mut merged = guard_calls;
                    merged.extend(body.stmts);
                    body = Block { stmts: merged };
                }
                arms.push(body);
            }
            self.eat("}");
        }
        if arms.is_empty() {
            arms.push(Block::default());
        }
        Stmt::Branch {
            rank_dep,
            arms,
            line,
        }
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Stop {
    Brace,
    MatchArm,
}

/// Walk every statement in a block tree, depth-first, in source order.
pub fn walk_stmts<'b>(block: &'b Block, f: &mut dyn FnMut(&'b Stmt)) {
    for s in &block.stmts {
        f(s);
        match s {
            Stmt::Branch { arms, .. } => {
                for a in arms {
                    walk_stmts(a, f);
                }
            }
            Stmt::Loop { body, .. } => walk_stmts(body, f),
            Stmt::Unsafe { body, .. } => walk_stmts(body, f),
            Stmt::Item(item) => walk_item_stmts(item, f),
            Stmt::Call(_) => {}
        }
    }
}

/// Walk every statement inside an item (recursing through containers and
/// nested fns).
pub fn walk_item_stmts<'b>(item: &'b Item, f: &mut dyn FnMut(&'b Stmt)) {
    match &item.kind {
        ItemKind::Fn(fi) => {
            if let Some(b) = &fi.body {
                walk_stmts(b, f);
            }
        }
        ItemKind::Container { items, .. } => {
            for it in items {
                walk_item_stmts(it, f);
            }
        }
        ItemKind::Plain { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    fn flat_fns(ast: &Ast) -> Vec<String> {
        let mut out = Vec::new();
        fn rec(items: &[Item], out: &mut Vec<String>) {
            for it in items {
                match &it.kind {
                    ItemKind::Fn(f) => out.push(f.name.clone()),
                    ItemKind::Container { items, .. } => rec(items, out),
                    _ => {}
                }
            }
        }
        rec(&ast.items, &mut out);
        out
    }

    fn calls_of(ast: &Ast, fn_name: &str) -> Vec<String> {
        let mut out = Vec::new();
        fn rec(items: &[Item], fn_name: &str, out: &mut Vec<String>) {
            for it in items {
                match &it.kind {
                    ItemKind::Fn(f) if f.name == fn_name => {
                        if let Some(b) = &f.body {
                            walk_stmts(b, &mut |s| {
                                if let Stmt::Call(c) = s {
                                    out.push(c.name.clone());
                                }
                            });
                        }
                    }
                    ItemKind::Container { items, .. } => rec(items, fn_name, out),
                    _ => {}
                }
            }
        }
        rec(&ast.items, fn_name, &mut out);
        out
    }

    #[test]
    fn items_tile_the_token_stream() {
        let src = r#"
            #![allow(dead_code)]
            use std::fmt;
            const N: usize = 4;
            struct Foo { a: u32 }
            enum E { A, B(u32) }
            pub(crate) fn f(x: u32) -> u32 { x + 1 }
            mod inner { pub fn g() {} }
            impl Foo { fn m(&self) -> u32 { self.a } }
            impl fmt::Display for Foo {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
            }
            trait T { fn sig(&self); fn with_default(&self) {} }
            static S: u32 = 1;
            type Alias = Vec<u32>;
            macro_rules! mk { () => {} }
            thread_local! { static TL: u32 = 0; }
        "#;
        let lexed = lex(src);
        let ast = parse(&lexed);
        let mut at = 0usize;
        for it in &ast.items {
            assert_eq!(it.span.0, at, "gap before item {it:?}");
            assert!(it.span.1 > it.span.0);
            at = it.span.1;
            assert!(
                !matches!(it.kind, ItemKind::Plain { kw: "other" }),
                "{it:?}"
            );
        }
        assert_eq!(at, lexed.toks.len(), "items must cover every token");
        let fns = flat_fns(&ast);
        for f in ["f", "g", "m", "fmt", "sig", "with_default"] {
            assert!(fns.contains(&f.to_string()), "missing fn {f}: {fns:?}");
        }
    }

    #[test]
    fn attrs_render_without_whitespace() {
        let src = "#[dlsr::hot]\n#[inline(always)]\nfn k() {}";
        let ast = parse_src(src);
        let attrs = &ast.items[0].attrs;
        assert_eq!(attrs, &["dlsr::hot", "inline(always)"]);
    }

    #[test]
    fn impl_header_names() {
        let src = "
            impl<T: Clone> From<Box<T>> for Wrapper<T> { fn from(b: Box<T>) -> Self { todo!() } }
            impl Wrapper<u32> { fn plain(&self) {} }
            impl Iterator for Counter where Counter: Sized { fn next(&mut self) -> Option<u32> { None } }
        ";
        let ast = parse_src(src);
        let heads: Vec<(String, Option<String>)> = ast
            .items
            .iter()
            .filter_map(|it| match &it.kind {
                ItemKind::Container {
                    kw: "impl",
                    name,
                    trait_name,
                    ..
                } => Some((name.clone(), trait_name.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            heads,
            vec![
                ("Wrapper".into(), Some("From".into())),
                ("Wrapper".into(), None),
                ("Counter".into(), Some("Iterator".into())),
            ]
        );
    }

    #[test]
    fn calls_paths_methods_and_conditions() {
        let src = "
            fn f(xs: &[f32]) {
                let v = helper(xs);
                let w = crate::util::shape(xs);
                let s = xs.iter().sum::<f32>();
                if self_check(v) { other(w); }
                Vec::with_capacity(4);
            }
        ";
        let ast = parse_src(src);
        let calls = calls_of(&ast, "f");
        for c in [
            "helper",
            "shape",
            "iter",
            "sum",
            "self_check",
            "other",
            "with_capacity",
        ] {
            assert!(calls.contains(&c.to_string()), "missing {c}: {calls:?}");
        }
    }

    #[test]
    fn branches_and_rank_dependence() {
        let src = "
            fn step(rank: usize) {
                if rank % 2 == 0 { allreduce(); } else { barrier(); }
                if ready { go(); }
                for peer_rank in 0..4 { send(peer_rank); }
                match rank { 0 => bcast(), _ => recv(), }
            }
        ";
        let ast = parse_src(src);
        let mut branches = Vec::new();
        walk_item_stmts(&ast.items[0], &mut |s| {
            if let Stmt::Branch { rank_dep, arms, .. } = s {
                branches.push((*rank_dep, arms.len()));
            }
        });
        assert_eq!(branches, vec![(true, 2), (false, 2), (true, 2)]);
        let mut loops = Vec::new();
        walk_item_stmts(&ast.items[0], &mut |s| {
            if let Stmt::Loop { rank_dep, .. } = s {
                loops.push(*rank_dep);
            }
        });
        assert_eq!(loops, vec![true]);
    }

    #[test]
    fn if_let_struct_pattern_does_not_eat_the_block() {
        let src = "
            fn f(e: Event) {
                if let Event { kind, .. } = e { handle(kind); }
                after();
            }
        ";
        let calls = calls_of(&parse_src(src), "f");
        assert!(calls.contains(&"handle".to_string()), "{calls:?}");
        assert!(calls.contains(&"after".to_string()), "{calls:?}");
    }

    #[test]
    fn unsafe_blocks_and_nested_fns() {
        let src = "
            fn outer() {
                // SAFETY: test input
                unsafe { raw(); }
                fn inner() { deep(); }
                inner();
            }
        ";
        let ast = parse_src(src);
        let mut saw_unsafe = false;
        walk_item_stmts(&ast.items[0], &mut |s| {
            if matches!(s, Stmt::Unsafe { .. }) {
                saw_unsafe = true;
            }
        });
        assert!(saw_unsafe);
        let fns = flat_fns(&ast);
        assert_eq!(fns, vec!["outer".to_string()]);
        let calls = calls_of(&ast, "outer");
        assert!(calls.contains(&"raw".to_string()));
        assert!(calls.contains(&"deep".to_string()), "{calls:?}");
        assert!(calls.contains(&"inner".to_string()));
    }

    #[test]
    fn self_method_calls_are_marked() {
        let src = "
            impl W { fn run(&mut self) { self.step(); free(); } }
        ";
        let ast = parse_src(src);
        let mut self_calls = Vec::new();
        walk_item_stmts(&ast.items[0], &mut |s| {
            if let Stmt::Call(c) = s {
                if c.recv_self {
                    self_calls.push(c.name.clone());
                }
            }
        });
        assert_eq!(self_calls, vec!["step".to_string()]);
    }

    #[test]
    fn match_arms_with_expressions() {
        let src = "
            fn f(s: Step) -> u32 {
                match s {
                    Step::Task(t) => run(t),
                    Step::Pair => (a(), b()).0,
                    Step::Done => { finish(); 0 }
                }
            }
        ";
        let ast = parse_src(src);
        let calls = calls_of(&ast, "f");
        for c in ["run", "a", "b", "finish"] {
            assert!(calls.contains(&c.to_string()), "missing {c}: {calls:?}");
        }
        let mut arm_counts = Vec::new();
        walk_item_stmts(&ast.items[0], &mut |s| {
            if let Stmt::Branch { arms, .. } = s {
                arm_counts.push(arms.len());
            }
        });
        assert_eq!(arm_counts, vec![3]);
    }

    #[test]
    fn turbofish_and_macros_do_not_derail() {
        let src = "
            fn f(xs: &[u32]) {
                let v = xs.iter().collect::<Vec<_>>();
                let m = Vec::<u32>::new();
                println!(\"{} {}\", v.len(), helper());
                assert_eq!(helper(), 3);
            }
        ";
        let calls = calls_of(&parse_src(src), "f");
        assert!(calls.contains(&"collect".to_string()), "{calls:?}");
        assert!(calls.contains(&"new".to_string()), "{calls:?}");
        assert!(calls.contains(&"helper".to_string()), "{calls:?}");
        assert!(calls.contains(&"len".to_string()), "{calls:?}");
    }

    #[test]
    fn bodyless_trait_fns_have_no_body() {
        let src = "trait T { fn sig(&self, n: usize) -> usize; }";
        let ast = parse_src(src);
        let ItemKind::Container { items, .. } = &ast.items[0].kind else {
            panic!("expected trait container");
        };
        let ItemKind::Fn(f) = &items[0].kind else {
            panic!("expected fn");
        };
        assert!(f.body.is_none());
        assert_eq!(f.body_span.0, f.body_span.1);
    }
}
