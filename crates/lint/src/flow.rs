//! The interprocedural dataflow rules over the call graph.
//!
//! Four rules, each a reachability problem on [`Graph`]:
//!
//! - **`wall-clock`** (transitive): a wall-clock read (`Instant`,
//!   `SystemTime`) may only happen in code that is unreachable from
//!   non-wall entry points. `#[dlsr::wall]` marks a fn as a wall-domain
//!   boundary (trace epoch, bench mains, simscale measurement): reads
//!   inside it are fine, and traversal never crosses into it. This
//!   replaces PR 4's path allowlist — the allowlist is now an annotation
//!   the call graph understands, so a helper called only from bench mains
//!   is covered automatically and a helper that leaks into rank code is
//!   not.
//! - **`hot-alloc`** (transitive): the allocation scan runs over every fn
//!   reachable from a `#[dlsr::hot]` fn, not just the annotated body —
//!   `gemm -> helper -> Vec::new` no longer passes silently.
//! - **`determinism-taint`**: nondeterminism sources (`HashMap`/`HashSet`,
//!   `thread::current`, `thread_rng`, rayon's `par_bridge`) reachable
//!   from rank-deterministic roots: everything in
//!   `crates/mpi/src/executor/` and `crates/mpi/src/collectives/`, every
//!   `RankProgram`/`EventTask` impl, and every `#[dlsr::deterministic]`
//!   fn (the `DistributedOptimizer` launch path, the fusion/readiness
//!   schedule, and the comm tuner's `tune_begin`/`tune_end` carry the
//!   marker — the tuner's measurements must stay virtual-clock
//!   Max-allreduce agreements, so a wall-clock read or hashed iteration
//!   sneaking into its observe path is exactly what this rule exists to
//!   catch; see `docs/WIRE.md`). `#[dlsr::wall]` fns are trusted
//!   boundaries and are not entered. Waivable per call edge or per source
//!   line.
//! - **`collective-order`**: for every fn whose call closure contains a
//!   collective call, extract the sequence of collective call sites as a
//!   protocol skeleton and reject statically rank-divergent shapes: a
//!   rank-dependent branch whose arms run different collective sequences,
//!   or a rank-dependent loop around a collective. This is the static
//!   complement of the runtime `verify` feature — it fires before any
//!   rank runs.
//!
//! All traversal is index-ordered (no hashing), so reports are
//! bitwise-stable.

use crate::callgraph::{FnDef, Graph};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::{Block, Stmt};
use crate::rules::{
    Finding, WaiverTable, HOT_BANNED_IDENTS, HOT_BANNED_MACROS, HOT_BANNED_PATHS, RULE_HOT_ALLOC,
    RULE_ORDER, RULE_TAINT, RULE_WALL_CLOCK,
};

/// Workspace collective entry points, as callable names. A call to any of
/// these is a protocol event for the `collective-order` rule.
pub const COLLECTIVE_FNS: &[&str] = &[
    "allgather",
    "allreduce",
    "allreduce_auto",
    "allreduce_auto_labeled",
    "allreduce_elems",
    "allreduce_op",
    "allreduce_with",
    "barrier",
    "bcast",
    "bcast_elems",
    "broadcast_parameters",
    "negotiate",
    "negotiate_with_cost",
];

fn is_collective(name: &str) -> bool {
    COLLECTIVE_FNS.binary_search(&name).is_ok()
}

/// One rendered per-rank collective protocol, for `--json` output.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Display name of the root fn (`Prog::next`).
    pub root: String,
    /// File the root lives in.
    pub path: String,
    /// Line of the root fn.
    pub line: usize,
    /// Rendered skeleton, e.g. `[negotiate, loop{allreduce_elems}]`.
    pub skeleton: String,
}

/// Run all four interprocedural rules. Returns the protocol skeletons of
/// the rank-program roots (for reporting).
pub fn run_flow_rules(
    graph: &Graph,
    lexed: &[Lexed],
    waivers: &mut WaiverTable,
    findings: &mut Vec<Finding>,
) -> Vec<Protocol> {
    rule_wall_clock(graph, lexed, waivers, findings);
    rule_hot_alloc(graph, lexed, waivers, findings);
    rule_determinism_taint(graph, lexed, waivers, findings);
    rule_collective_order(graph, waivers, findings)
}

/// Reachability with parent tracking. Expands from `roots` in index
/// order; `enter(def)` gates whether a def may be entered at all;
/// `prune(caller, edge)` drops individual edges (waivers). Returns
/// `(reached, parent)` where `parent[d] = Some((caller, call_line))`.
#[allow(clippy::type_complexity)]
fn reach(
    graph: &Graph,
    roots: &[usize],
    enter: &mut dyn FnMut(&FnDef) -> bool,
    prune: &mut dyn FnMut(usize, usize, usize) -> bool, // (caller, callee, line)
) -> (Vec<bool>, Vec<Option<(usize, usize)>>) {
    let n = graph.defs.len();
    let mut reached = vec![false; n];
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for &r in roots {
        if !reached[r] {
            reached[r] = true;
            queue.push(r);
        }
    }
    let mut at = 0usize;
    while at < queue.len() {
        let d = queue[at];
        at += 1;
        for e in &graph.edges[d] {
            if reached[e.callee] {
                continue;
            }
            if !enter(&graph.defs[e.callee]) {
                continue;
            }
            if prune(d, e.callee, e.line) {
                continue;
            }
            reached[e.callee] = true;
            parent[e.callee] = Some((d, e.line));
            queue.push(e.callee);
        }
    }
    (reached, parent)
}

/// Render the call chain from a root down to `d` as `a -> b -> c`.
fn chain(graph: &Graph, parent: &[Option<(usize, usize)>], d: usize) -> String {
    let mut names = vec![graph.defs[d].display_name()];
    let mut cur = d;
    let mut hops = 0;
    while let Some((p, _)) = parent[cur] {
        names.push(graph.defs[p].display_name());
        cur = p;
        hops += 1;
        if hops > 64 {
            break;
        }
    }
    names.reverse();
    names.join(" -> ")
}

fn rule_wall_clock(
    graph: &Graph,
    lexed: &[Lexed],
    waivers: &mut WaiverTable,
    findings: &mut Vec<Finding>,
) {
    // Entries: fns with no in-graph callers that are neither test code nor
    // wall-domain boundaries. Everything reachable from them without
    // crossing a `#[dlsr::wall]` fn is "unprotected": it may run on a
    // rank, so it must not read wall clocks.
    let roots: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(i, d)| graph.callers[*i].is_empty() && !d.is_test && !d.has_marker("wall"))
        .map(|(i, _)| i)
        .collect();
    let (unprotected, parent) = reach(
        graph,
        &roots,
        &mut |d| !d.is_test && !d.has_marker("wall"),
        &mut |caller, _callee, line| {
            let file = graph.defs[caller].file;
            waivers.check(file, RULE_WALL_CLOCK, line)
        },
    );
    for (i, d) in graph.defs.iter().enumerate() {
        if !unprotected[i] {
            continue;
        }
        for (line, what) in wall_reads(&lexed[d.file].toks, d.body_span) {
            if waivers.check(d.file, RULE_WALL_CLOCK, line) {
                continue;
            }
            findings.push(Finding {
                path: d.path.clone(),
                line,
                rule: RULE_WALL_CLOCK,
                msg: format!(
                    "`{what}` read in `{}` outside the wall domain (reachable via {}); \
                     virtual time must come from the simulator clock, or mark the fn \
                     `#[dlsr::wall]`",
                    d.display_name(),
                    chain(graph, &parent, i)
                ),
            });
        }
    }
}

fn rule_hot_alloc(
    graph: &Graph,
    lexed: &[Lexed],
    waivers: &mut WaiverTable,
    findings: &mut Vec<Finding>,
) {
    let roots: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| d.has_marker("hot") && !d.is_test)
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let (reached, parent) = reach(
        graph,
        &roots,
        &mut |d| !d.is_test,
        &mut |caller, _callee, line| {
            let file = graph.defs[caller].file;
            waivers.check(file, RULE_HOT_ALLOC, line)
        },
    );
    for (i, d) in graph.defs.iter().enumerate() {
        if !reached[i] {
            continue;
        }
        for (line, what) in hot_alloc_sites(&lexed[d.file].toks, d.body_span) {
            if waivers.check(d.file, RULE_HOT_ALLOC, line) {
                continue;
            }
            let msg = if parent[i].is_none() {
                format!(
                    "allocating call `{what}` inside `#[dlsr::hot]` fn `{}`; \
                     hot paths must take scratch from the caller",
                    d.display_name()
                )
            } else {
                format!(
                    "allocating call `{what}` in `{}`, reachable from a \
                     `#[dlsr::hot]` fn via {}; hot paths must take scratch \
                     from the caller",
                    d.display_name(),
                    chain(graph, &parent, i)
                )
            };
            findings.push(Finding {
                path: d.path.clone(),
                line,
                rule: RULE_HOT_ALLOC,
                msg,
            });
        }
    }
}

/// Is this def a determinism root — code whose behaviour must be bitwise
/// identical on every rank?
fn is_taint_root(d: &FnDef) -> bool {
    if d.is_test {
        return false;
    }
    d.path.starts_with("crates/mpi/src/executor/")
        || d.path.starts_with("crates/mpi/src/collectives/")
        || matches!(
            d.trait_name.as_deref(),
            Some("RankProgram") | Some("EventTask")
        )
        || d.has_marker("deterministic")
}

fn rule_determinism_taint(
    graph: &Graph,
    lexed: &[Lexed],
    waivers: &mut WaiverTable,
    findings: &mut Vec<Finding>,
) {
    let roots: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| is_taint_root(d))
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let (reached, parent) = reach(
        graph,
        &roots,
        // `#[dlsr::wall]` fns are trusted boundaries: the wall-clock rule
        // owns what happens inside them.
        &mut |d| !d.is_test && !d.has_marker("wall"),
        &mut |caller, _callee, line| {
            let file = graph.defs[caller].file;
            waivers.check(file, RULE_TAINT, line)
        },
    );
    for (i, d) in graph.defs.iter().enumerate() {
        if !reached[i] {
            continue;
        }
        for (line, what) in taint_sources(&lexed[d.file].toks, d.body_span) {
            if waivers.check(d.file, RULE_TAINT, line) {
                continue;
            }
            findings.push(Finding {
                path: d.path.clone(),
                line,
                rule: RULE_TAINT,
                msg: format!(
                    "{what} in `{}`, reachable from rank-deterministic root via {}; \
                     rank-visible state must not depend on it",
                    d.display_name(),
                    chain(graph, &parent, i)
                ),
            });
        }
    }
}

/// A protocol skeleton node: the per-rank sequence of collective events a
/// fn performs, with control flow preserved where it matters.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Skel {
    /// A collective call site.
    Coll(String),
    /// A call into a workspace fn whose closure performs collectives.
    Call(usize),
    /// Control flow selecting between alternative sequences.
    Branch(Vec<Vec<Skel>>),
    /// A repeated sequence.
    Loop(Vec<Skel>),
}

fn render_seq(graph: &Graph, skels: &[Skel]) -> String {
    let parts: Vec<String> = skels
        .iter()
        .map(|s| match s {
            Skel::Coll(n) => n.clone(),
            Skel::Call(d) => format!("{}()", graph.defs[*d].display_name()),
            Skel::Branch(arms) => {
                let rendered: Vec<String> = arms.iter().map(|a| render_skels(graph, a)).collect();
                format!("if{{{}}}", rendered.join(" | "))
            }
            Skel::Loop(body) => format!("loop{{{}}}", render_seq(graph, body)),
        })
        .collect();
    parts.join(", ")
}

fn render_skels(graph: &Graph, skels: &[Skel]) -> String {
    format!("[{}]", render_seq(graph, skels))
}

fn rule_collective_order(
    graph: &Graph,
    waivers: &mut WaiverTable,
    findings: &mut Vec<Finding>,
) -> Vec<Protocol> {
    let n = graph.defs.len();
    // Fixpoint: does the def's call closure contain a collective call?
    let mut has_coll = vec![false; n];
    for (i, d) in graph.defs.iter().enumerate() {
        if let Some(body) = &d.body {
            crate::parser::walk_stmts(body, &mut |s| {
                if let Stmt::Call(c) = s {
                    if is_collective(&c.name) {
                        has_coll[i] = true;
                    }
                }
            });
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            if has_coll[i] {
                continue;
            }
            if graph.edges[i].iter().any(|e| has_coll[e.callee]) {
                has_coll[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut protocols = Vec::new();
    for (i, d) in graph.defs.iter().enumerate() {
        if d.is_test || !has_coll[i] {
            continue;
        }
        let Some(body) = &d.body else { continue };
        let skels = build_skels(graph, &has_coll, i, d, body, waivers, findings);
        let is_program_root = matches!(
            d.trait_name.as_deref(),
            Some("RankProgram") | Some("EventTask")
        ) || d.has_marker("deterministic");
        if is_program_root && !skels.is_empty() {
            protocols.push(Protocol {
                root: d.display_name(),
                path: d.path.clone(),
                line: d.line,
                skeleton: render_skels(graph, &skels),
            });
        }
    }
    protocols.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    protocols
}

/// Build the skeleton of one block, emitting findings for statically
/// rank-divergent shapes as they are found.
#[allow(clippy::too_many_arguments)]
fn build_skels(
    graph: &Graph,
    has_coll: &[bool],
    def_idx: usize,
    d: &FnDef,
    block: &Block,
    waivers: &mut WaiverTable,
    findings: &mut Vec<Finding>,
) -> Vec<Skel> {
    let mut out = Vec::new();
    for s in &block.stmts {
        match s {
            Stmt::Call(c) => {
                if is_collective(&c.name) {
                    out.push(Skel::Coll(c.name.clone()));
                } else {
                    // Match the stmt back to its resolved edge(s) by line
                    // AND callee name — two different calls can share a
                    // source line.
                    for e in &graph.edges[def_idx] {
                        if e.line == c.line
                            && graph.defs[e.callee].name == c.name
                            && has_coll[e.callee]
                        {
                            let node = Skel::Call(e.callee);
                            if out.last() != Some(&node) {
                                out.push(node);
                            }
                        }
                    }
                }
            }
            Stmt::Branch {
                rank_dep,
                arms,
                line,
            } => {
                let arm_skels: Vec<Vec<Skel>> = arms
                    .iter()
                    .map(|a| build_skels(graph, has_coll, def_idx, d, a, waivers, findings))
                    .collect();
                if arm_skels.iter().all(|a| a.is_empty()) {
                    continue;
                }
                if *rank_dep
                    && arm_skels.windows(2).any(|w| w[0] != w[1])
                    && !waivers.check(d.file, RULE_ORDER, *line)
                {
                    let rendered: Vec<String> =
                        arm_skels.iter().map(|a| render_skels(graph, a)).collect();
                    findings.push(Finding {
                        path: d.path.clone(),
                        line: *line,
                        rule: RULE_ORDER,
                        msg: format!(
                            "rank-divergent collective sequence in `{}`: branch arms \
                             run {}; every rank must issue the same collectives in \
                             the same order",
                            d.display_name(),
                            rendered.join(" vs ")
                        ),
                    });
                }
                out.push(Skel::Branch(arm_skels));
            }
            Stmt::Loop {
                rank_dep,
                body,
                line,
            } => {
                let body_skels = build_skels(graph, has_coll, def_idx, d, body, waivers, findings);
                if body_skels.is_empty() {
                    continue;
                }
                if *rank_dep && !waivers.check(d.file, RULE_ORDER, *line) {
                    findings.push(Finding {
                        path: d.path.clone(),
                        line: *line,
                        rule: RULE_ORDER,
                        msg: format!(
                            "collective sequence {} inside a rank-dependent loop in `{}`; \
                             a rank-dependent trip count desynchronizes the protocol",
                            render_skels(graph, &body_skels),
                            d.display_name()
                        ),
                    });
                }
                out.push(Skel::Loop(body_skels));
            }
            Stmt::Unsafe { body, .. } => {
                out.extend(build_skels(
                    graph, has_coll, def_idx, d, body, waivers, findings,
                ));
            }
            Stmt::Item(_) => {}
        }
    }
    out
}

/// Lexical scan: wall-clock type reads inside a body span.
fn wall_reads(toks: &[Tok], span: (usize, usize)) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for t in toks.iter().take(span.1).skip(span.0) {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" => out.push((t.line, "Instant")),
            "SystemTime" => out.push((t.line, "SystemTime")),
            _ => {}
        }
    }
    out.dedup();
    out
}

/// Lexical scan: banned allocating calls inside a body span (same token
/// shapes as PR 4's in-body rule).
fn hot_alloc_sites(toks: &[Tok], span: (usize, usize)) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for j in span.0..span.1.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        if HOT_BANNED_IDENTS.contains(&t.text.as_str()) {
            out.push((t.line, t.text.clone()));
        } else if HOT_BANNED_MACROS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|n| n.text == "!")
        {
            out.push((t.line, format!("{}!", t.text)));
        } else if HOT_BANNED_PATHS.iter().any(|(ty, m)| {
            t.text == *ty
                && toks.get(j + 1).is_some_and(|a| a.text == ":")
                && toks.get(j + 2).is_some_and(|b| b.text == ":")
                && toks.get(j + 3).is_some_and(|c| c.text == *m)
        }) {
            out.push((t.line, format!("{}::new", t.text)));
        }
    }
    out
}

/// Lexical scan: nondeterminism sources inside a body span.
fn taint_sources(toks: &[Tok], span: (usize, usize)) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for j in span.0..span.1.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" => out.push((
                t.line,
                format!("`{}` (process-random iteration order)", t.text),
            )),
            "par_bridge" => out.push((
                t.line,
                String::from("`par_bridge` (unordered rayon combinator)"),
            )),
            "thread_rng" => out.push((t.line, String::from("`thread_rng` (OS-entropy RNG)"))),
            "current"
                if j >= 3
                    && toks[j - 1].text == ":"
                    && toks[j - 2].text == ":"
                    && toks[j - 3].text == "thread" =>
            {
                out.push((t.line, String::from("`thread::current`")));
            }
            _ => {}
        }
    }
    // One finding per (line, source kind) is enough: `HashMap::<K,V>::new()`
    // mentions the type twice on the same line.
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Graph;
    use crate::lexer::lex;
    use crate::parser;
    use crate::rules::{collect_waivers, FileWaivers};

    /// Mini-harness: lex/parse/graph the given files and run the flow
    /// rules, returning (findings incl. stale waivers, protocols).
    fn run(files: &[(&str, &str, &str)]) -> (Vec<Finding>, Vec<Protocol>) {
        let lexed: Vec<Lexed> = files.iter().map(|(_, _, src)| lex(src)).collect();
        let mut fws = Vec::new();
        let mut findings = Vec::new();
        for ((path, _, _), lx) in files.iter().zip(&lexed) {
            let token_lines = lx.token_lines();
            let (waivers, mut bad) = collect_waivers(path, lx, &token_lines);
            findings.append(&mut bad);
            fws.push(FileWaivers {
                path: path.to_string(),
                waivers,
            });
        }
        let mut table = WaiverTable::new(fws);
        let graph = Graph::build(
            files
                .iter()
                .zip(&lexed)
                .map(|((p, c, _), lx)| (p.to_string(), c.to_string(), parser::parse(lx)))
                .collect(),
        );
        let protocols = run_flow_rules(&graph, &lexed, &mut table, &mut findings);
        findings.extend(table.stale_findings());
        (findings, protocols)
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn collective_list_is_sorted() {
        let mut sorted = COLLECTIVE_FNS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, COLLECTIVE_FNS);
    }

    #[test]
    fn transitive_wall_clock_trips_through_helpers() {
        let (f, _) = run(&[(
            "crates/cluster/src/x.rs",
            "cluster",
            "
            pub fn entry() { helper(); }
            fn helper() { let t = std::time::Instant::now(); }
            ",
        )]);
        assert_eq!(rules_of(&f), vec![RULE_WALL_CLOCK], "{f:?}");
        assert!(f[0].msg.contains("entry -> helper"), "{}", f[0].msg);
    }

    #[test]
    fn wall_marker_protects_reads_and_callees() {
        let (f, _) = run(&[(
            "crates/bench/src/bin/b.rs",
            "bench",
            "
            use dlsr_attr as dlsr;
            #[dlsr::wall]
            fn main() { let t0 = std::time::Instant::now(); timed(); }
            fn timed() { let t1 = std::time::Instant::now(); }
            ",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unannotated_entry_into_wall_helper_still_trips() {
        let (f, _) = run(&[(
            "crates/bench/src/bin/b.rs",
            "bench",
            "
            use dlsr_attr as dlsr;
            #[dlsr::wall]
            fn main() { timed(); }
            fn timed() { let t1 = std::time::Instant::now(); }
            pub fn leaked_into_rank_code() { timed(); }
            ",
        )]);
        assert_eq!(rules_of(&f), vec![RULE_WALL_CLOCK], "{f:?}");
        assert!(f[0].msg.contains("leaked_into_rank_code"), "{}", f[0].msg);
    }

    #[test]
    fn transitive_hot_alloc_trips_one_call_deep() {
        let (f, _) = run(&[(
            "crates/tensor/src/x.rs",
            "tensor",
            "
            use dlsr_attr as dlsr;
            #[dlsr::hot]
            fn microkernel_x(dst: &mut [f32]) { helper(dst); }
            fn helper(dst: &mut [f32]) { let v: Vec<f32> = Vec::new(); }
            fn cold() -> Vec<f32> { Vec::new() }
            ",
        )]);
        assert_eq!(rules_of(&f), vec![RULE_HOT_ALLOC], "{f:?}");
        assert!(f[0].msg.contains("microkernel_x -> helper"), "{}", f[0].msg);
    }

    #[test]
    fn hot_alloc_edge_waiver_prunes_the_path() {
        let (f, _) = run(&[(
            "crates/tensor/src/x.rs",
            "tensor",
            "
            use dlsr_attr as dlsr;
            #[dlsr::hot]
            fn microkernel_x(dst: &mut [f32]) {
                // dlsr-lint: allow(hot-alloc) -- setup-only call, runs once per shape
                helper(dst);
            }
            fn helper(dst: &mut [f32]) { let v: Vec<f32> = Vec::new(); }
            ",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn taint_reaches_other_crates_from_rank_roots() {
        let (f, _) = run(&[
            (
                "crates/mpi/src/executor/driven.rs",
                "mpi",
                "pub fn run_world() { dlsr_gpu::registry_new(); }",
            ),
            (
                "crates/gpu/src/ipc.rs",
                "gpu",
                "
                use std::collections::HashMap;
                pub fn registry_new() { let m: HashMap<u64, u64> = HashMap::new(); }
                ",
            ),
        ]);
        // Two HashMap tokens (use + body), but only the body one is inside
        // a fn span.
        assert_eq!(rules_of(&f), vec![RULE_TAINT], "{f:?}");
        assert!(
            f[0].msg.contains("run_world -> registry_new"),
            "{}",
            f[0].msg
        );
    }

    #[test]
    fn taint_roots_include_rank_program_impls() {
        let (f, _) = run(&[(
            "crates/horovod/src/prog.rs",
            "horovod",
            "
            struct P;
            impl RankProgram for P {
                fn next(&mut self) { self.pick(); }
            }
            impl P { fn pick(&self) { let _ = rand::thread_rng(); } }
            ",
        )]);
        assert_eq!(rules_of(&f), vec![RULE_TAINT], "{f:?}");
    }

    #[test]
    fn rank_divergent_branch_is_rejected() {
        let (f, protocols) = run(&[(
            "crates/mpi/src/executor/prog.rs",
            "mpi",
            "
            struct P;
            impl RankProgram for P {
                fn next(&mut self, rank: usize) {
                    if rank % 2 == 0 { allreduce(); } else { barrier(); }
                }
            }
            fn allreduce() {}
            fn barrier() {}
            ",
        )]);
        assert!(rules_of(&f).contains(&RULE_ORDER), "{f:?}");
        assert!(
            f[0].msg.contains("[allreduce] vs [barrier]"),
            "{}",
            f[0].msg
        );
        assert_eq!(protocols.len(), 1);
        assert!(protocols[0].skeleton.contains("allreduce"), "{protocols:?}");
    }

    #[test]
    fn rank_uniform_sequences_pass_and_render() {
        let (f, protocols) = run(&[(
            "crates/mpi/src/executor/prog.rs",
            "mpi",
            "
            struct P;
            impl RankProgram for P {
                fn next(&mut self, rank: usize) {
                    negotiate();
                    for step in 0..4 { allreduce(); }
                    if rank == 0 { log_local(); } else { log_local(); }
                }
            }
            fn negotiate() {}
            fn allreduce() {}
            fn log_local() {}
            ",
        )]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(protocols.len(), 1);
        assert_eq!(protocols[0].skeleton, "[negotiate, loop{allreduce}]");
    }

    #[test]
    fn rank_dependent_loop_around_collective_is_rejected() {
        let (f, _) = run(&[(
            "crates/mpi/src/executor/prog.rs",
            "mpi",
            "
            pub fn drive(rank: usize) {
                for i in 0..rank { barrier(); }
            }
            fn barrier() {}
            ",
        )]);
        assert!(rules_of(&f).contains(&RULE_ORDER), "{f:?}");
    }

    #[test]
    fn divergence_through_a_callee_is_seen() {
        // The branch itself calls helpers; divergence shows because the
        // two helpers' closures run different collectives.
        let (f, _) = run(&[(
            "crates/mpi/src/executor/prog.rs",
            "mpi",
            "
            pub fn drive(rank: usize) {
                if rank == 0 { path_a(); } else { path_b(); }
            }
            fn path_a() { allreduce(); }
            fn path_b() { barrier(); }
            fn allreduce() {}
            fn barrier() {}
            ",
        )]);
        assert!(rules_of(&f).contains(&RULE_ORDER), "{f:?}");
    }

    #[test]
    fn collective_order_waiver_suppresses() {
        let (f, _) = run(&[(
            "crates/mpi/src/executor/prog.rs",
            "mpi",
            "
            pub fn drive(rank: usize) {
                // dlsr-lint: allow(collective-order) -- root-only bcast, peers recv inside
                if rank == 0 { bcast(); } else { recv_side(); }
            }
            fn bcast() {}
            fn recv_side() {}
            ",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
