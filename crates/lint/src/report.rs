//! Machine-readable report rendering: `--json` and `--sarif`.
//!
//! Both serializers are hand-rolled — the analyzer stays zero-dependency —
//! and emit keys in fixed order over pre-sorted findings, so the output is
//! bitwise-stable across runs. `serde_json` is only a dev-dependency of
//! the test suite, which parses these strings back to prove validity.

use crate::rules::{ALL_RULES, RULE_WAIVER};
use crate::Analysis;

/// Escape one string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The native JSON report: stats, findings, and the extracted collective
/// protocol skeletons.
pub fn to_json(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"stats\": {{\"files\": {}, \"fns\": {}, \"edges\": {}}},\n",
        a.stats.files, a.stats.fns, a.stats.edges
    ));
    s.push_str("  \"findings\": [");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&f.path),
            f.line,
            esc(f.rule),
            esc(&f.msg)
        ));
    }
    if !a.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"protocols\": [");
    for (i, p) in a.protocols.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"root\": \"{}\", \"path\": \"{}\", \"line\": {}, \"skeleton\": \"{}\"}}",
            esc(&p.root),
            esc(&p.path),
            p.line,
            esc(&p.skeleton)
        ));
    }
    if !a.protocols.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// SARIF 2.1.0, the minimal schema GitHub code scanning accepts: one run,
/// one driver, a static rule table, one result per finding.
pub fn to_sarif(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"dlsr-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.invalid/dlsr-lint\",\n");
    s.push_str("          \"rules\": [");
    let mut rule_ids: Vec<&str> = ALL_RULES.to_vec();
    rule_ids.push(RULE_WAIVER);
    rule_ids.sort_unstable();
    for (i, r) in rule_ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n            {{\"id\": \"{}\"}}", esc(r)));
    }
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, f) in a.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
             \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            esc(f.rule),
            esc(&f.msg),
            esc(&f.path),
            f.line.max(1)
        ));
    }
    if !a.findings.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Protocol, Stats};

    fn sample() -> Analysis {
        Analysis {
            findings: vec![Finding {
                path: String::from("crates/x/src/a.rs"),
                line: 3,
                rule: "wall-clock",
                msg: String::from("bad \"clock\"\nread"),
            }],
            protocols: vec![Protocol {
                root: String::from("Prog::next"),
                path: String::from("crates/mpi/src/executor/x.rs"),
                line: 10,
                skeleton: String::from("[negotiate, loop{allreduce}]"),
            }],
            stats: Stats {
                files: 2,
                fns: 5,
                edges: 4,
            },
        }
    }

    #[test]
    fn json_escapes_and_round_trips() {
        let j = to_json(&sample());
        let v: serde_json::Value = serde_json::from_str(&j).expect("valid JSON");
        assert_eq!(v["findings"][0]["line"], 3);
        assert_eq!(v["findings"][0]["message"], "bad \"clock\"\nread");
        assert_eq!(
            v["protocols"][0]["skeleton"],
            "[negotiate, loop{allreduce}]"
        );
        assert_eq!(v["stats"]["fns"], 5);
    }

    #[test]
    fn sarif_is_valid_2_1_0() {
        let s = to_sarif(&sample());
        let v: serde_json::Value = serde_json::from_str(&s).expect("valid JSON");
        assert_eq!(v["version"], "2.1.0");
        let run = &v["runs"][0];
        assert_eq!(run["tool"]["driver"]["name"], "dlsr-lint");
        assert!(run["tool"]["driver"]["rules"].as_array().unwrap().len() >= 9);
        let res = &run["results"][0];
        assert_eq!(res["ruleId"], "wall-clock");
        assert_eq!(
            res["locations"][0]["physicalLocation"]["region"]["startLine"],
            3
        );
    }

    #[test]
    fn empty_analysis_renders_empty_arrays() {
        let a = Analysis::default();
        let v: serde_json::Value = serde_json::from_str(&to_json(&a)).unwrap();
        assert_eq!(v["findings"].as_array().unwrap().len(), 0);
        let sv: serde_json::Value = serde_json::from_str(&to_sarif(&a)).unwrap();
        assert_eq!(sv["runs"][0]["results"].as_array().unwrap().len(), 0);
    }
}
