//! A minimal Rust lexer: good enough to tell identifiers, punctuation and
//! literals apart, and to attribute comments to source lines.
//!
//! The vendored dependency set has no `syn`, so the lint rules work on this
//! token stream instead of an AST. The lexer therefore has one job above all
//! others: never mistake the *contents* of a string literal or comment for
//! code. Rules match identifier tokens (`Instant`, `HashMap`, `unsafe`) and
//! short token sequences (`Vec :: new`, `# [ dlsr :: hot ]`), so a lexer
//! that gets string/comment/lifetime boundaries right is sufficient.

/// Kind of a lexed token. Punctuation is emitted one character at a time;
/// rules that need `::` match two consecutive `:` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Instant`, ...).
    Ident,
    /// Single punctuation character.
    Punct,
    /// String, char, byte or numeric literal (text is not preserved).
    Literal,
}

/// One token with its starting line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

/// One comment (line or block) with its line span and full text.
#[derive(Debug, Clone)]
pub struct Comment {
    /// First line of the comment (1-based).
    pub line: usize,
    /// Last line of the comment (equal to `line` for `//` comments).
    pub end_line: usize,
    /// Raw comment text including the `//` / `/* */` markers.
    pub text: String,
    /// True when a token precedes the comment on its starting line
    /// (a trailing comment like `let x = 1; // note`).
    pub trailing: bool,
}

/// Lexer output: the token stream plus the comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Sorted, deduplicated list of lines that carry at least one token.
    pub fn token_lines(&self) -> Vec<usize> {
        let mut lines: Vec<usize> = self.toks.iter().map(|t| t.line).collect();
        lines.dedup();
        lines
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never panics on malformed input:
/// unterminated strings/comments simply run to end of file.
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let n = cs.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut last_tok_line = 0usize;

    while i < n {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n && cs[i + 1] == '/' {
            let start = i;
            while i < n && cs[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: cs[start..i].iter().collect(),
                trailing: last_tok_line == line,
            });
            continue;
        }
        if c == '/' && i + 1 < n && cs[i + 1] == '*' {
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if cs[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if cs[i] == '/' && i + 1 < n && cs[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && i + 1 < n && cs[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: cs[start..i].iter().collect(),
                trailing: last_tok_line == start_line,
            });
            continue;
        }

        // Raw strings / raw identifiers / byte strings: r"..", r#".."#,
        // br#".."#, b"..", b'x', and the raw identifier form r#ident.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && j < n && cs[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && cs[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let rawish = j > i + 1 || (j < n && cs[j] == '"');
            if rawish && j < n && cs[j] == '"' {
                // Raw (byte) string: scan to `"` followed by `hashes` hashes.
                let tok_line = line;
                i = j + 1;
                loop {
                    if i >= n {
                        break;
                    }
                    if cs[i] == '\n' {
                        line += 1;
                        i += 1;
                        continue;
                    }
                    if cs[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < n && cs[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break;
                        }
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::from("\"raw\""),
                    line: tok_line,
                });
                last_tok_line = tok_line;
                continue;
            }
            if c == 'r' && hashes == 1 && j < n && is_ident_start(cs[j]) {
                // Raw identifier r#ident: emit the bare identifier.
                let start = j;
                let mut k = j;
                while k < n && is_ident_continue(cs[k]) {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: cs[start..k].iter().collect(),
                    line,
                });
                last_tok_line = line;
                i = k;
                continue;
            }
            if c == 'b' && i + 1 < n && (cs[i + 1] == '"' || cs[i + 1] == '\'') {
                // Byte string / byte char: delegate to the quoted scanners.
                let quote = cs[i + 1];
                let tok_line = line;
                i += 1; // position on the quote
                i = scan_quoted(&cs, i, quote, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: if quote == '"' {
                        String::from("\"bytes\"")
                    } else {
                        String::from("'b'")
                    },
                    line: tok_line,
                });
                last_tok_line = tok_line;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        if c == '"' {
            let tok_line = line;
            i = scan_quoted(&cs, i, '"', &mut line);
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::from("\"str\""),
                line: tok_line,
            });
            last_tok_line = tok_line;
            continue;
        }

        if c == '\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
            let is_lifetime = i + 1 < n
                && is_ident_start(cs[i + 1])
                && cs[i + 1] != '\\'
                && !(i + 2 < n && cs[i + 2] == '\'');
            if is_lifetime {
                let mut k = i + 1;
                while k < n && is_ident_continue(cs[k]) {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: cs[i..k].iter().collect(),
                    line,
                });
                last_tok_line = line;
                i = k;
                continue;
            }
            let tok_line = line;
            i = scan_quoted(&cs, i, '\'', &mut line);
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::from("'c'"),
                line: tok_line,
            });
            last_tok_line = tok_line;
            continue;
        }

        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(cs[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: cs[start..i].iter().collect(),
                line,
            });
            last_tok_line = line;
            continue;
        }

        if c.is_ascii_digit() {
            // Numbers, loosely: digits, `_`, type suffixes, and a decimal
            // point only when followed by a digit (so `0..n` stays a range).
            let start = i;
            while i < n {
                let d = cs[i];
                let part_of_number = d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && i + 1 < n && cs[i + 1].is_ascii_digit())
                    || ((d == '+' || d == '-')
                        && i > start
                        && (cs[i - 1] == 'e' || cs[i - 1] == 'E'));
                if !part_of_number {
                    break;
                }
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: cs[start..i].iter().collect(),
                line,
            });
            last_tok_line = line;
            continue;
        }

        // Everything else: one punctuation character.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        last_tok_line = line;
        i += 1;
    }

    out
}

/// Scan a `'`- or `"`-delimited literal starting at the opening quote
/// index; returns the index just past the closing quote. Handles `\`
/// escapes and counts newlines into `line`.
fn scan_quoted(cs: &[char], open: usize, quote: char, line: &mut usize) -> usize {
    let n = cs.len();
    let mut i = open + 1;
    while i < n {
        match cs[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // Instant in a comment
            /* HashMap in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"SystemTime"#;
            let b = b"HashMap";
            let real = Instant;
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|t| *t == "Instant").count(),
            1,
            "only the real identifier counts: {ids:?}"
        );
        assert!(!ids.contains(&String::from("HashMap")));
        assert!(!ids.contains(&String::from("SystemTime")));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&String::from("str")));
        assert!(ids.contains(&String::from("x")));
    }

    #[test]
    fn char_literals_and_ranges() {
        let src = "let c = 'z'; let q = '\\''; for i in 0..10 { let f = 1.5e-3; }";
        let lexed = lex(src);
        let ids: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"for"));
        assert!(!ids.contains(&"z"));
        // `0..10` must lex as literal, dot, dot, literal — not `0.` `.10`.
        let texts: Vec<_> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.windows(4).any(|w| w == ["0", ".", ".", "10"]));
    }

    #[test]
    fn raw_identifiers_are_plain_idents() {
        let ids = idents("let r#type = 1;");
        assert!(ids.contains(&String::from("type")));
    }

    #[test]
    fn trailing_comment_flag() {
        let lexed = lex("let x = 1; // note\n// own line\n");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"two\nlines\";\nlet after = 1;";
        let lexed = lex(src);
        let after = lexed.toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }
}
