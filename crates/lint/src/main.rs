//! CLI entry point: `cargo run -p dlsr-lint [-- --self-test]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> Option<PathBuf> {
    // Under `cargo run` the manifest dir is exported; fall back to cwd so
    // the binary also works when invoked directly from the repo root.
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    dlsr_lint::find_root(&start)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut self_test = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--self-test" => self_test = true,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "dlsr-lint: workspace invariant lint pass\n\
                     \n\
                     usage: dlsr-lint [--self-test] [--root <workspace>]\n\
                     \n\
                     rules: {}\n\
                     waiver: `// dlsr-lint: allow(<rule>) -- <reason>` on the line above",
                    dlsr_lint::rules::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root_arg.or_else(workspace_root) else {
        eprintln!("could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };

    if self_test {
        let results = match dlsr_lint::self_test(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("self-test failed to read fixtures: {e}");
                return ExitCode::from(2);
            }
        };
        let mut failed = false;
        for r in &results {
            let mark = if r.ok { "ok " } else { "FAIL" };
            println!(
                "{mark}  {:<28} expect {:<20} {}",
                r.file, r.expected, r.detail
            );
            failed |= !r.ok;
        }
        if failed {
            eprintln!("self-test: a seeded fixture did not trip its rule");
            return ExitCode::FAILURE;
        }
        println!("self-test: {} fixtures, all rules trip", results.len());
        return ExitCode::SUCCESS;
    }

    match dlsr_lint::scan_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "dlsr-lint: workspace clean ({} rules)",
                dlsr_lint::rules::ALL_RULES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("dlsr-lint: {} violation(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("dlsr-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
