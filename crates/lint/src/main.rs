//! CLI entry point: `dlsr-lint [--self-test] [--json | --sarif] [--root <ws>]`.
//!
//! Exit codes are part of the contract (CI gates on them):
//! - `0` — scan ran, no findings
//! - `1` — scan ran, findings reported (or a self-test fixture failed)
//! - `2` — the analyzer itself failed (bad arguments, unreadable
//!   workspace, or an internal panic)

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> Option<PathBuf> {
    // Under `cargo run` the manifest dir is exported; fall back to cwd so
    // the binary also works when invoked directly from the repo root.
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())?;
    dlsr_lint::find_root(&start)
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut self_test = false;
    let mut format = Format::Text;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--self-test" => self_test = true,
            "--json" => format = Format::Json,
            "--sarif" => format = Format::Sarif,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "dlsr-lint: workspace static analyzer\n\
                     \n\
                     usage: dlsr-lint [--self-test] [--json | --sarif] [--root <workspace>]\n\
                     \n\
                     rules: {}\n\
                     waiver: `// dlsr-lint: allow(<rule>[, <rule>]) -- <reason>`\n\
                     (line above or trailing; a waiver that suppresses nothing is an error)\n\
                     \n\
                     exit codes: 0 clean, 1 findings, 2 analyzer failure",
                    dlsr_lint::rules::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root_arg.or_else(workspace_root) else {
        eprintln!("could not locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };

    if self_test {
        let results = match dlsr_lint::self_test(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("self-test failed to read fixtures: {e}");
                return ExitCode::from(2);
            }
        };
        let mut failed = false;
        for r in &results {
            let mark = if r.ok { "ok " } else { "FAIL" };
            println!(
                "{mark}  {:<28} expect {:<20} {}",
                r.file, r.expected, r.detail
            );
            failed |= !r.ok;
        }
        if failed {
            eprintln!("self-test: a seeded fixture did not trip its rule");
            return ExitCode::FAILURE;
        }
        println!("self-test: {} fixtures, all rules trip", results.len());
        return ExitCode::SUCCESS;
    }

    // An internal analyzer bug (parser panic on some file) must exit 2, not
    // look like a clean run or a finding.
    let analysis = match std::panic::catch_unwind(|| dlsr_lint::scan_workspace(&root)) {
        Ok(Ok(a)) => a,
        Ok(Err(e)) => {
            eprintln!("dlsr-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
        Err(_) => {
            eprintln!("dlsr-lint: internal analyzer panic");
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Json => print!("{}", dlsr_lint::report::to_json(&analysis)),
        Format::Sarif => print!("{}", dlsr_lint::report::to_sarif(&analysis)),
        Format::Text => {
            for f in &analysis.findings {
                println!("{f}");
            }
            if analysis.findings.is_empty() {
                println!(
                    "dlsr-lint: workspace clean ({} files, {} fns, {} call edges, {} rules)",
                    analysis.stats.files,
                    analysis.stats.fns,
                    analysis.stats.edges,
                    dlsr_lint::rules::ALL_RULES.len()
                );
            } else {
                eprintln!("dlsr-lint: {} violation(s)", analysis.findings.len());
            }
        }
    }
    if analysis.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
