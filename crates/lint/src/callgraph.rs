//! Workspace-wide call graph over the parsed ASTs.
//!
//! Name-based resolution, not type-based: the analyzer has no type
//! information, so a call resolves to the set of workspace definitions its
//! syntax can plausibly denote (path qualifiers matched against impl
//! types, traits, modules and crates; bare calls against free fns; method
//! calls against workspace methods of the same name). Two deliberate
//! asymmetries keep the graph useful:
//!
//! - Unresolvable calls (std, vendored deps) produce **no** edge — the
//!   dataflow rules have their own lexical scans for the std sinks they
//!   care about (`Instant`, `HashMap`, `Vec::new`, ...).
//! - Bare method calls whose name is in [`AMBIENT_METHODS`] produce no
//!   edge either: `.len()` / `.iter()` / `.next()` would otherwise
//!   resolve to every same-named workspace method and flood the graph
//!   with false paths. Path-qualified calls always resolve.
//!
//! Traversal and output ordering are index-based and sorted — no hashing
//! anywhere, so reports are bitwise-stable across runs.

use std::collections::BTreeMap;

use crate::parser::{self, Ast, Block, Item, ItemKind, Stmt};

/// Method names too generic to resolve by name alone: calls to these via
/// `.name(...)` syntax are dropped from the graph (path-qualified calls
/// still resolve). Sorted; `is_ambient_method` binary-searches it.
pub const AMBIENT_METHODS: &[&str] = &[
    "abs",
    "add",
    "all",
    "any",
    "as_mut",
    "as_mut_ptr",
    "as_ptr",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "bytes",
    "ceil",
    "chars",
    "checked_sub",
    "chunks",
    "chunks_exact",
    "chunks_mut",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "err",
    "exp",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "mul_add",
    "ne",
    "next",
    "offset",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "recip",
    "rem_euclid",
    "remove",
    "repeat",
    "replace",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "split_at_mut",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "strip_prefix",
    "strip_suffix",
    "sub",
    "sum",
    "swap",
    "take",
    "tanh",
    "to_le_bytes",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "write",
    "write_all",
    "zip",
];

/// Is `name` in the ambient-method exclusion list?
pub fn is_ambient_method(name: &str) -> bool {
    AMBIENT_METHODS.binary_search(&name).is_ok()
}

/// One function definition found anywhere in the workspace.
#[derive(Debug)]
pub struct FnDef {
    /// Index of the source file in the analysis file list.
    pub file: usize,
    /// Repo-relative path of that file (duplicated for messages).
    pub path: String,
    /// `crates/<name>` directory name the file belongs to.
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type head, when the fn is a method.
    pub impl_type: Option<String>,
    /// Enclosing `impl Trait for ...` trait head.
    pub trait_name: Option<String>,
    /// Module path inside the crate (file-derived plus inline `mod`s).
    pub module: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Own attributes (rendered, whitespace-free).
    pub attrs: Vec<String>,
    /// True under `#[cfg(test)]` / `#[test]` (own or inherited).
    pub is_test: bool,
    /// True when defined inside an `impl` or `trait` container.
    pub is_method: bool,
    /// Token index range of the body inside its braces (for lexical
    /// sub-scans over the file's token stream).
    pub body_span: (usize, usize),
    /// Parsed body, `None` for bodyless signatures.
    pub body: Option<Block>,
}

impl FnDef {
    /// Does the def carry the given `dlsr::<marker>` attribute?
    pub fn has_marker(&self, marker: &str) -> bool {
        self.attrs.iter().any(|a| {
            a.strip_prefix("dlsr::").is_some_and(|m| m == marker)
                || a.strip_prefix("dlsr_attr::").is_some_and(|m| m == marker)
        })
    }

    /// Human-readable name for findings: `Type::name` or `name`.
    pub fn display_name(&self) -> String {
        match &self.impl_type {
            Some(t) if !t.is_empty() => format!("{t}::{}", self.name),
            _ => self.name.clone(),
        }
    }
}

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee def index.
    pub callee: usize,
    /// Source line of the call site.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every function definition, in file order then source order.
    pub defs: Vec<FnDef>,
    /// Outgoing edges per def, deduplicated and sorted.
    pub edges: Vec<Vec<Edge>>,
    /// Incoming edge sources per def (deduplicated, sorted).
    pub callers: Vec<Vec<usize>>,
}

impl Graph {
    /// Build the graph from parsed files. `files` items are
    /// `(repo-relative path, crate name, ast)`; the index of each entry is
    /// the `FnDef::file` value.
    pub fn build(files: Vec<(String, String, Ast)>) -> Graph {
        let mut defs = Vec::new();
        for (file_idx, (path, crate_name, ast)) in files.into_iter().enumerate() {
            let module = module_path(&path);
            let mut ctx = Collect {
                file: file_idx,
                path: &path,
                crate_name: &crate_name,
                defs: &mut defs,
            };
            ctx.items(ast.items, &module, None, None, false);
        }

        // Name indexes (BTreeMap: deterministic iteration, no hashing).
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_trait_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, d) in defs.iter().enumerate() {
            if d.is_method {
                methods_by_name.entry(&d.name).or_default().push(i);
                if let Some(t) = &d.impl_type {
                    by_type_method.entry((t, &d.name)).or_default().push(i);
                }
                if let Some(t) = &d.trait_name {
                    by_trait_method.entry((t, &d.name)).or_default().push(i);
                }
            } else {
                free_by_name.entry(&d.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); defs.len()];
        for (i, d) in defs.iter().enumerate() {
            let Some(body) = &d.body else { continue };
            let mut out: Vec<Edge> = Vec::new();
            parser::walk_stmts(body, &mut |s| {
                let Stmt::Call(c) = s else { return };
                let mut targets: Vec<usize> = Vec::new();
                if c.method {
                    if is_ambient_method(&c.name) {
                        return;
                    }
                    if c.recv_self {
                        if let Some(t) = &d.impl_type {
                            if let Some(v) = by_type_method.get(&(t.as_str(), c.name.as_str())) {
                                targets.extend_from_slice(v);
                            }
                        }
                    }
                    if targets.is_empty() {
                        if let Some(v) = methods_by_name.get(c.name.as_str()) {
                            targets.extend_from_slice(v);
                        }
                    }
                } else {
                    match &c.qualifier {
                        Some(q) => {
                            let q = q.as_str();
                            let qn = if q == "Self" {
                                d.impl_type.as_deref().unwrap_or(q)
                            } else {
                                q
                            };
                            if let Some(v) = by_type_method.get(&(qn, c.name.as_str())) {
                                targets.extend_from_slice(v);
                            }
                            if let Some(v) = by_trait_method.get(&(qn, c.name.as_str())) {
                                targets.extend_from_slice(v);
                            }
                            if targets.is_empty() {
                                // Module- or crate-qualified free fn.
                                let crate_q = qn.strip_prefix("dlsr_").unwrap_or(match qn {
                                    "dlsr" => "core",
                                    other => other,
                                });
                                if let Some(v) = free_by_name.get(c.name.as_str()) {
                                    for &cand in v {
                                        let cd = &defs[cand];
                                        if cd.module.iter().any(|m| m == qn)
                                            || cd.crate_name == crate_q
                                            || qn == "crate" && cd.crate_name == d.crate_name
                                        {
                                            targets.push(cand);
                                        }
                                    }
                                }
                            }
                        }
                        None => {
                            if let Some(v) = free_by_name.get(c.name.as_str()) {
                                let same_crate: Vec<usize> = v
                                    .iter()
                                    .copied()
                                    .filter(|&cand| defs[cand].crate_name == d.crate_name)
                                    .collect();
                                if same_crate.is_empty() {
                                    targets.extend_from_slice(v);
                                } else {
                                    targets.extend_from_slice(&same_crate);
                                }
                            }
                        }
                    }
                }
                for t in targets {
                    if t != i {
                        out.push(Edge {
                            callee: t,
                            line: c.line,
                        });
                    }
                }
            });
            out.sort_by_key(|e| (e.callee, e.line));
            out.dedup_by_key(|e| (e.callee, e.line));
            edges[i] = out;
        }

        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); defs.len()];
        for (i, es) in edges.iter().enumerate() {
            for e in es {
                callers[e.callee].push(i);
            }
        }
        for c in &mut callers {
            c.sort_unstable();
            c.dedup();
        }

        Graph {
            defs,
            edges,
            callers,
        }
    }
}

/// File-derived module path: path components after `src/`, minus the file
/// name for `lib.rs`/`main.rs`/`mod.rs`, with the stem otherwise.
fn module_path(path: &str) -> Vec<String> {
    let parts: Vec<&str> = path.split('/').collect();
    let Some(src_at) = parts.iter().position(|p| *p == "src") else {
        // benches/, examples/: the file stem names the target.
        return match parts.last() {
            Some(f) => vec![f.trim_end_matches(".rs").to_string()],
            None => Vec::new(),
        };
    };
    let mut module: Vec<String> = parts[src_at + 1..parts.len().saturating_sub(1)]
        .iter()
        .map(|s| s.to_string())
        .collect();
    if let Some(f) = parts.last() {
        let stem = f.trim_end_matches(".rs");
        if stem != "lib" && stem != "main" && stem != "mod" {
            module.push(stem.to_string());
        }
    }
    module
}

struct Collect<'a> {
    file: usize,
    path: &'a str,
    crate_name: &'a str,
    defs: &'a mut Vec<FnDef>,
}

impl Collect<'_> {
    fn items(
        &mut self,
        items: Vec<Item>,
        module: &[String],
        impl_type: Option<&str>,
        trait_name: Option<&str>,
        in_test: bool,
    ) {
        for item in items {
            let item_test = in_test || attrs_mark_test(&item.attrs);
            match item.kind {
                ItemKind::Fn(f) => {
                    let body = f.body;
                    self.defs.push(FnDef {
                        file: self.file,
                        path: self.path.to_string(),
                        crate_name: self.crate_name.to_string(),
                        name: f.name,
                        impl_type: impl_type.map(str::to_string),
                        trait_name: trait_name.map(str::to_string),
                        module: module.to_vec(),
                        line: f.line,
                        attrs: item.attrs,
                        is_test: item_test,
                        is_method: impl_type.is_some(),
                        body_span: f.body_span,
                        body,
                    });
                    // Nested fns inside the body were already captured as
                    // Stmt::Item by the parser; hoist them too.
                    let idx = self.defs.len() - 1;
                    let nested = take_nested_items(self.defs[idx].body.as_mut());
                    if !nested.is_empty() {
                        self.items(nested, module, None, None, item_test);
                    }
                }
                ItemKind::Container {
                    kw,
                    name,
                    trait_name: tn,
                    items,
                } => match kw {
                    "mod" => {
                        let mut m = module.to_vec();
                        m.push(name);
                        self.items(items, &m, None, None, item_test);
                    }
                    "trait" => {
                        let t = name.clone();
                        self.items(items, module, Some(&t), Some(&t), item_test);
                    }
                    _ => {
                        // impl
                        self.items(items, module, Some(&name), tn.as_deref(), item_test);
                    }
                },
                ItemKind::Plain { .. } => {}
            }
        }
    }
}

/// Pull nested `Stmt::Item`s out of a body (they become defs of their
/// own); the statement list keeps everything else.
fn take_nested_items(body: Option<&mut Block>) -> Vec<Item> {
    let mut out = Vec::new();
    fn rec(b: &mut Block, out: &mut Vec<Item>) {
        for s in &mut b.stmts {
            match s {
                Stmt::Item(item)
                    if matches!(item.kind, ItemKind::Fn(_) | ItemKind::Container { .. }) =>
                {
                    let taken = std::mem::replace(
                        item,
                        Item {
                            kind: ItemKind::Plain { kw: "hoisted" },
                            attrs: Vec::new(),
                            span: (0, 0),
                            line: 0,
                        },
                    );
                    out.push(taken);
                }
                Stmt::Branch { arms, .. } => {
                    for a in arms {
                        rec(a, out);
                    }
                }
                Stmt::Loop { body, .. } => rec(body, out),
                Stmt::Unsafe { body, .. } => rec(body, out),
                _ => {}
            }
        }
    }
    if let Some(b) = body {
        rec(b, &mut out);
    }
    out
}

/// `#[test]`, `#[cfg(test)]` and cfg combinations naming `test`.
fn attrs_mark_test(attrs: &[String]) -> bool {
    attrs.iter().any(|a| {
        a == "test"
            || (a.starts_with("cfg(")
                && (a.contains("(test)") || a.contains("(test,") || a.contains(",test")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph_of(files: &[(&str, &str, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(p, c, src)| (p.to_string(), c.to_string(), parser::parse(&lex(src))))
                .collect(),
        )
    }

    fn def(g: &Graph, name: &str) -> usize {
        g.defs.iter().position(|d| d.name == name).unwrap()
    }

    fn callees(g: &Graph, name: &str) -> Vec<String> {
        g.edges[def(g, name)]
            .iter()
            .map(|e| g.defs[e.callee].name.clone())
            .collect()
    }

    #[test]
    fn ambient_list_is_sorted() {
        let mut sorted = AMBIENT_METHODS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, AMBIENT_METHODS);
    }

    #[test]
    fn bare_and_qualified_calls_resolve() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "
            fn top() { helper(); util::deep(); }
            fn helper() {}
            mod util { pub fn deep() { super::helper(); } }
            ",
        )]);
        assert_eq!(callees(&g, "top"), vec!["helper", "deep"]);
        assert_eq!(callees(&g, "deep"), vec!["helper"]);
        assert_eq!(g.callers[def(&g, "helper")].len(), 2);
    }

    #[test]
    fn cross_crate_qualified_calls_resolve() {
        let g = graph_of(&[
            (
                "crates/mpi/src/lib.rs",
                "mpi",
                "fn drive() { dlsr_trace::span_now(); }",
            ),
            ("crates/trace/src/lib.rs", "trace", "pub fn span_now() {}"),
        ]);
        assert_eq!(callees(&g, "drive"), vec!["span_now"]);
    }

    #[test]
    fn self_methods_prefer_same_impl() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "
            struct A; struct B;
            impl A { fn run(&self) { self.step(); } fn step(&self) {} }
            impl B { fn step(&self) {} }
            ",
        )]);
        let run = def(&g, "run");
        let targets: Vec<&str> = g.edges[run]
            .iter()
            .map(|e| g.defs[e.callee].impl_type.as_deref().unwrap())
            .collect();
        assert_eq!(targets, vec!["A"]);
    }

    #[test]
    fn ambient_methods_produce_no_edges() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "
            struct A;
            impl A { fn next(&self) {} }
            fn top(xs: &[u32]) { let _ = xs.iter().next(); }
            ",
        )]);
        assert!(callees(&g, "top").is_empty());
    }

    #[test]
    fn non_ambient_method_calls_resolve_by_name() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "
            struct Opt;
            impl Opt { fn negotiate_plan(&self) {} }
            fn top(o: &Opt) { o.negotiate_plan(); }
            ",
        )]);
        assert_eq!(callees(&g, "top"), vec!["negotiate_plan"]);
    }

    #[test]
    fn cfg_test_marks_defs() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "
            fn real() {}
            #[cfg(test)]
            mod tests { #[test] fn t() { super::real(); } }
            ",
        )]);
        assert!(!g.defs[def(&g, "real")].is_test);
        assert!(g.defs[def(&g, "t")].is_test);
    }

    #[test]
    fn nested_fns_are_hoisted_with_edges() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "
            fn outer() { fn inner() { leaf(); } inner(); }
            fn leaf() {}
            ",
        )]);
        assert_eq!(callees(&g, "outer"), vec!["inner"]);
        assert_eq!(callees(&g, "inner"), vec!["leaf"]);
    }

    #[test]
    fn markers_are_detected() {
        let g = graph_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "#[dlsr::hot]\nfn k() {}\n#[dlsr::wall]\nfn w() {}",
        )]);
        assert!(g.defs[def(&g, "k")].has_marker("hot"));
        assert!(g.defs[def(&g, "w")].has_marker("wall"));
        assert!(!g.defs[def(&g, "k")].has_marker("wall"));
    }
}
