//! Device memory tracking with OOM detection.

/// Error returned when an allocation exceeds remaining device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryError {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub free: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CUDA out of memory: tried to allocate {} MiB ({} MiB free of {} MiB)",
            self.requested >> 20,
            self.free >> 20,
            self.capacity >> 20
        )
    }
}

impl std::error::Error for MemoryError {}

/// Byte-granular allocation tracker for one device.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacity: u64,
    used: u64,
    peak: u64,
}

impl MemoryTracker {
    /// Tracker for a device of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryTracker {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Reserve `bytes`; fails with [`MemoryError`] when capacity is exceeded.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), MemoryError> {
        let free = self.capacity - self.used;
        if bytes > free {
            return Err(MemoryError {
                requested: bytes,
                free,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Release `bytes` (saturating — double frees clamp at zero).
    pub fn free(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes remaining.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = MemoryTracker::new(100);
        m.alloc(60).unwrap();
        assert_eq!(m.used(), 60);
        assert_eq!(m.free_bytes(), 40);
        m.free(20);
        assert_eq!(m.used(), 40);
        assert_eq!(m.peak(), 60);
    }

    #[test]
    fn oom_reports_sizes() {
        let mut m = MemoryTracker::new(100);
        m.alloc(80).unwrap();
        let err = m.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.free, 20);
        assert_eq!(err.capacity, 100);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut m = MemoryTracker::new(100);
        assert!(m.alloc(100).is_ok());
        assert!(m.alloc(1).is_err());
    }

    #[test]
    fn over_free_saturates() {
        let mut m = MemoryTracker::new(10);
        m.alloc(5).unwrap();
        m.free(50);
        assert_eq!(m.used(), 0);
    }
}
