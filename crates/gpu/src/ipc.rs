//! CUDA Inter-Process Communication, simulated at the protocol level the
//! paper describes in §II-A:
//!
//! 1. the owner calls `cuIpcGetMemHandle` on a device buffer,
//! 2. the handle travels to the peer over host channels,
//! 3. the peer calls `cuIpcOpenMemHandle` to map the buffer locally.
//!
//! Step 3 is where the `CUDA_VISIBLE_DEVICES` conflict bites: opening
//! requires both devices to be visible to the *opening library's* mask
//! (post-CUDA-10.1 semantics — MPI's own `MV2_VISIBLE_DEVICES` mask
//! suffices even when the framework mask hides the peer).

use std::collections::BTreeMap;

use parking_lot::Mutex;

use crate::device::{DeviceBuffer, GpuId};
use crate::visibility::DeviceEnv;

/// An exported IPC handle for a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpcHandle {
    /// Buffer the handle refers to.
    pub buffer: DeviceBuffer,
}

/// Why an IPC open failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpcError {
    /// The peer device is not visible under the opener's MPI mask — the
    /// exact failure mode of the paper's default configuration.
    DeviceNotVisible {
        /// Device owning the buffer.
        owner: GpuId,
        /// Device trying to map it.
        opener: GpuId,
    },
    /// IPC only works within one node.
    CrossNode {
        /// Device owning the buffer.
        owner: GpuId,
        /// Device trying to map it.
        opener: GpuId,
    },
    /// Handle was never exported (or already closed).
    StaleHandle,
}

impl std::fmt::Display for IpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcError::DeviceNotVisible { owner, opener } => write!(
                f,
                "cuIpcOpenMemHandle failed: {owner} not visible from {opener} (CUDA_VISIBLE_DEVICES restriction)"
            ),
            IpcError::CrossNode { owner, opener } => {
                write!(f, "CUDA IPC is intra-node only ({owner} vs {opener})")
            }
            IpcError::StaleHandle => write!(f, "stale or unexported IPC handle"),
        }
    }
}

impl std::error::Error for IpcError {}

/// Per-node registry of exported handles and open mappings.
///
/// Shared between rank threads of one simulated node.
#[derive(Debug, Default)]
pub struct IpcRegistry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    exported: BTreeMap<(GpuId, u64), u64>, // (device, buffer id) -> bytes
    open_count: u64,
}

impl IpcRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `cuIpcGetMemHandle`: export a buffer.
    pub fn get_mem_handle(&self, buf: DeviceBuffer) -> IpcHandle {
        self.inner
            .lock()
            .exported
            .insert((buf.device, buf.id), buf.bytes);
        IpcHandle { buffer: buf }
    }

    /// `cuIpcOpenMemHandle`: map an exported buffer into `opener`'s address
    /// space, subject to the opener's MPI visibility mask.
    pub fn open_mem_handle(
        &self,
        handle: IpcHandle,
        opener: GpuId,
        opener_env: &DeviceEnv,
    ) -> Result<DeviceBuffer, IpcError> {
        let owner = handle.buffer.device;
        if owner.node != opener.node {
            return Err(IpcError::CrossNode { owner, opener });
        }
        if !opener_env.ipc_possible(opener.local, owner.local) {
            return Err(IpcError::DeviceNotVisible { owner, opener });
        }
        let mut inner = self.inner.lock();
        if !inner.exported.contains_key(&(owner, handle.buffer.id)) {
            return Err(IpcError::StaleHandle);
        }
        inner.open_count += 1;
        dlsr_trace::counter_add(dlsr_trace::report::keys::GPU_IPC_OPENS, 1.0);
        Ok(handle.buffer)
    }

    /// Number of successful `open_mem_handle` calls (profiling).
    pub fn opens(&self) -> u64 {
        self.inner.lock().open_count
    }

    /// Unexport a buffer (owner frees it).
    pub fn close(&self, buf: DeviceBuffer) {
        self.inner.lock().exported.remove(&(buf.device, buf.id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(node: usize, local: usize, id: u64) -> DeviceBuffer {
        DeviceBuffer {
            device: GpuId { node, local },
            id,
            bytes: 1024,
        }
    }

    #[test]
    fn open_succeeds_with_mpi_opt_env() {
        let reg = IpcRegistry::new();
        let h = reg.get_mem_handle(buf(0, 1, 0));
        let opener = GpuId { node: 0, local: 0 };
        let env = DeviceEnv::mpi_opt(0, 4);
        assert!(reg.open_mem_handle(h, opener, &env).is_ok());
        assert_eq!(reg.opens(), 1);
    }

    #[test]
    fn open_fails_with_default_pinned_env() {
        // The paper's observed failure: CUDA_VISIBLE_DEVICES=<rank> hides
        // the peer, so MPI cannot open the handle and falls back to host.
        let reg = IpcRegistry::new();
        let h = reg.get_mem_handle(buf(0, 1, 0));
        let opener = GpuId { node: 0, local: 0 };
        let env = DeviceEnv::default_pinned(0);
        assert_eq!(
            reg.open_mem_handle(h, opener, &env),
            Err(IpcError::DeviceNotVisible {
                owner: GpuId { node: 0, local: 1 },
                opener
            })
        );
    }

    #[test]
    fn cross_node_is_rejected_regardless_of_masks() {
        let reg = IpcRegistry::new();
        let h = reg.get_mem_handle(buf(0, 0, 0));
        let opener = GpuId { node: 1, local: 0 };
        let env = DeviceEnv::mpi_opt(0, 4);
        assert!(matches!(
            reg.open_mem_handle(h, opener, &env),
            Err(IpcError::CrossNode { .. })
        ));
    }

    #[test]
    fn stale_handle_after_close() {
        let reg = IpcRegistry::new();
        let b = buf(0, 1, 3);
        let h = reg.get_mem_handle(b);
        reg.close(b);
        let env = DeviceEnv::mpi_opt(0, 4);
        assert_eq!(
            reg.open_mem_handle(h, GpuId { node: 0, local: 0 }, &env),
            Err(IpcError::StaleHandle)
        );
    }
}
