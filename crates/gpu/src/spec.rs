//! Device specifications.

use serde::{Deserialize, Serialize};

/// Static hardware description of a GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Kernel launch overhead in seconds.
    pub launch_overhead: f64,
    /// CUDA context footprint a process pays on each device it touches
    /// (the "overhead kernels" of paper Fig 6a), in bytes.
    pub context_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA Tesla V100 (16 GB SXM2) — the GPU on Lassen and Longhorn.
    pub fn v100() -> Self {
        GpuSpec {
            name: "Tesla V100-SXM2-16GB",
            memory_bytes: 16 * (1 << 30),
            peak_flops: 15.7e12,
            mem_bandwidth: 900.0e9,
            launch_overhead: 5.0e-6,
            context_bytes: 300 * (1 << 20),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_constants() {
        let v = GpuSpec::v100();
        assert_eq!(v.memory_bytes, 17_179_869_184);
        assert!(v.peak_flops > 1e13);
        assert!(v.launch_overhead > 0.0);
    }
}
