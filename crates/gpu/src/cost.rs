//! The kernel cost model: how long one training step takes on a V100.
//!
//! `time(step) = batch · max(t_flops, t_mem) / occupancy(batch)
//!             + kernels·3 · launch_overhead + framework_overhead`
//!
//! with a roofline per-sample time and a saturating occupancy curve
//! `occ(b) = b / (b + 1)` capturing small-batch under-utilization (Fig 9's
//! rising-then-flat throughput).
//!
//! ## Calibration
//!
//! Absolute GPU efficiency cannot be derived from first principles for a
//! framework stack (PyTorch kernel selection, cuDNN algorithms, Python
//! overhead), so the model carries one *model-flop-utilization* (MFU)
//! constant per workload class, calibrated against the paper's two
//! single-V100 anchors (Fig 1):
//!
//! - EDSR (B=32, F=256, ×2, LR 48² patches, batch 4): **10.3 img/s**
//!   → MFU ≈ 0.47 of fp32 peak,
//! - ResNet-50 (224², batch 64): **360 img/s** → MFU ≈ 0.60 of fp32 peak.
//!
//! Note on the EDSR variant: §IV-C of the paper says "64 feature maps",
//! but its own measurements contradict that — Table I shows fused
//! allreduce messages filling the 16–64 MB bins (⇒ ≈163 MB of gradients ⇒
//! ≈40M parameters, the F=256 NTIRE configuration; F=64 would be 10 MB
//! total), and 10.3 img/s is implausibly slow for the 2.5M-parameter F=64
//! model. The workspace therefore calibrates against the F=256 variant and
//! records the discrepancy in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use crate::memory::MemoryError;
use crate::spec::GpuSpec;

/// Workload class, selecting the calibrated MFU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Super-resolution CNNs (EDSR, SRCNN, SRResNet).
    SuperResolution,
    /// Image classification CNNs (ResNet).
    Classification,
}

impl WorkloadKind {
    /// Calibrated model-flop-utilization of fp32 peak.
    pub fn mfu(self) -> f64 {
        match self {
            WorkloadKind::SuperResolution => 0.47,
            WorkloadKind::Classification => 0.60,
        }
    }
}

/// Lightweight per-sample workload description (mirrors
/// `dlsr_models::ModelProfile`; this crate stays independent of the model
/// zoo so the simulator can be reused for arbitrary workloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Identifier for reports.
    pub name: String,
    /// Trainable parameter count.
    pub params: usize,
    /// Forward FLOPs per sample.
    pub fwd_flops: u64,
    /// Activation elements retained per sample.
    pub activation_elems: u64,
    /// Kernels launched per sample forward pass.
    pub kernels: u32,
    /// Workload class.
    pub kind: WorkloadKind,
}

impl WorkloadProfile {
    /// Training FLOPs per sample (≈ 3× forward).
    pub fn train_flops(&self) -> u64 {
        self.fwd_flops * 3
    }

    /// Gradient payload per step in bytes (fp32).
    pub fn grad_bytes(&self) -> usize {
        self.params * 4
    }

    /// Persistent device bytes: params + grads + Adam moments.
    pub fn persistent_bytes(&self) -> u64 {
        self.params as u64 * 16
    }

    /// Activation bytes per sample: forward caches + ~50 % backward
    /// workspace (calibrated against known V100 batch ceilings; see
    /// `dlsr_models::ModelProfile::activation_bytes_per_sample`).
    pub fn activation_bytes_per_sample(&self) -> u64 {
        self.activation_elems * 6
    }
}

/// Breakdown of one training step's device time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepCost {
    /// Roofline compute time (seconds).
    pub compute_s: f64,
    /// Kernel-launch overhead (seconds).
    pub launch_s: f64,
    /// Fixed per-iteration framework overhead (seconds).
    pub framework_s: f64,
}

impl StepCost {
    /// Total step time.
    pub fn total(&self) -> f64 {
        self.compute_s + self.launch_s + self.framework_s
    }
}

/// The cost model for one GPU spec.
#[derive(Debug, Clone)]
pub struct KernelCostModel {
    spec: GpuSpec,
    /// Fixed per-iteration overhead (optimizer step, Python dispatch, data
    /// pipeline) in seconds.
    pub framework_overhead: f64,
    /// Memory the framework reserves on startup (allocator pools), bytes.
    pub framework_reserved: u64,
    /// Effective fraction of HBM bandwidth usable by training kernels.
    pub mem_efficiency: f64,
}

impl KernelCostModel {
    /// Cost model with the calibrated defaults for a spec.
    pub fn new(spec: GpuSpec) -> Self {
        KernelCostModel {
            spec,
            framework_overhead: 5.0e-3,
            framework_reserved: 500 * (1 << 20),
            mem_efficiency: 0.6,
        }
    }

    /// The underlying device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Occupancy at a per-GPU batch size: `b / (b + 1)`.
    pub fn occupancy(batch: usize) -> f64 {
        let b = batch as f64;
        b / (b + 1.0)
    }

    /// Device memory one training process needs: persistent state +
    /// per-sample activations + CUDA contexts + framework pools.
    pub fn memory_required(
        &self,
        profile: &WorkloadProfile,
        batch: usize,
        context_count: usize,
    ) -> u64 {
        profile.persistent_bytes()
            + batch as u64 * profile.activation_bytes_per_sample()
            + context_count as u64 * self.spec.context_bytes
            + self.framework_reserved
    }

    /// Time of one training step at a per-GPU batch, or OOM.
    ///
    /// `context_count` is the number of devices this process holds CUDA
    /// contexts on (1 when pinned; `gpus_per_node` when unpinned — Fig 6a).
    pub fn train_step_time(
        &self,
        profile: &WorkloadProfile,
        batch: usize,
        context_count: usize,
    ) -> Result<StepCost, MemoryError> {
        assert!(batch > 0, "batch must be positive");
        let need = self.memory_required(profile, batch, context_count);
        if need > self.spec.memory_bytes {
            return Err(MemoryError {
                requested: need,
                free: self.spec.memory_bytes,
                capacity: self.spec.memory_bytes,
            });
        }
        let mfu = profile.kind.mfu();
        let t_flops = profile.train_flops() as f64 / (self.spec.peak_flops * mfu);
        // bytes moved ≈ 3 traversals of the activation working set
        let bytes = 3.0 * profile.activation_elems as f64 * 4.0;
        let t_mem = bytes / (self.spec.mem_bandwidth * self.mem_efficiency);
        let per_sample = t_flops.max(t_mem);
        let compute_s = batch as f64 * per_sample / Self::occupancy(batch);
        let launch_s = profile.kernels as f64 * 3.0 * self.spec.launch_overhead;
        Ok(StepCost {
            compute_s,
            launch_s,
            framework_s: self.framework_overhead,
        })
    }

    /// Convenience: steady-state training throughput in images/second.
    pub fn throughput(
        &self,
        profile: &WorkloadProfile,
        batch: usize,
        context_count: usize,
    ) -> Result<f64, MemoryError> {
        let cost = self.train_step_time(profile, batch, context_count)?;
        Ok(batch as f64 / cost.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// EDSR (B32, F256, ×2) at LR 48×48 — numbers match
    /// `dlsr_models::profile::edsr_profile(&EdsrConfig::full(), 48, 48)`
    /// (cross-checked in the cluster crate's integration tests).
    pub(crate) fn edsr_like() -> WorkloadProfile {
        WorkloadProfile {
            name: "EDSR(B32,F256,x2)@48x48".into(),
            params: 40_729_603,
            fwd_flops: 187_730_000_000,
            activation_elems: 82_000_000,
            kernels: 136,
            kind: WorkloadKind::SuperResolution,
        }
    }

    pub(crate) fn resnet50_like() -> WorkloadProfile {
        WorkloadProfile {
            name: "ResNet-50@224x224".into(),
            params: 25_557_032,
            fwd_flops: 8_180_000_000,
            activation_elems: 31_000_000,
            kernels: 158,
            kind: WorkloadKind::Classification,
        }
    }

    #[test]
    fn edsr_anchor_close_to_10_3_images_per_second() {
        let m = KernelCostModel::new(GpuSpec::v100());
        let tput = m.throughput(&edsr_like(), 4, 1).unwrap();
        assert!(
            (9.2..11.4).contains(&tput),
            "EDSR throughput {tput} img/s, expected ≈10.3 (Fig 1)"
        );
    }

    #[test]
    fn resnet_anchor_close_to_360_images_per_second() {
        let m = KernelCostModel::new(GpuSpec::v100());
        let tput = m.throughput(&resnet50_like(), 64, 1).unwrap();
        assert!(
            (320.0..400.0).contains(&tput),
            "ResNet-50 throughput {tput} img/s, expected ≈360 (Fig 1)"
        );
    }

    #[test]
    fn throughput_rises_then_saturates_with_batch() {
        // Fig 9 shape: bigger batches amortize overheads; gains flatten.
        let m = KernelCostModel::new(GpuSpec::v100());
        let p = edsr_like();
        let t1 = m.throughput(&p, 1, 1).unwrap();
        let t4 = m.throughput(&p, 4, 1).unwrap();
        let t16 = m.throughput(&p, 16, 1).unwrap();
        assert!(t4 > t1);
        assert!(t16 > t4);
        let early_gain = t4 / t1;
        let late_gain = t16 / t4;
        assert!(
            late_gain < early_gain,
            "no saturation: {early_gain} vs {late_gain}"
        );
    }

    #[test]
    fn large_batch_ooms() {
        // Fig 9's ceiling: EDSR activations exhaust 16 GB.
        let m = KernelCostModel::new(GpuSpec::v100());
        assert!(m.train_step_time(&edsr_like(), 64, 1).is_err());
        assert!(m.train_step_time(&edsr_like(), 16, 1).is_ok());
    }

    #[test]
    fn extra_contexts_shrink_usable_batch() {
        // Fig 6a: overhead kernels on all 4 devices cost ~900 MB, which can
        // push a batch that previously fit over the edge.
        let m = KernelCostModel::new(GpuSpec::v100());
        let p = edsr_like();
        let mut max_pinned = 0;
        let mut max_unpinned = 0;
        for b in 1..64 {
            if m.train_step_time(&p, b, 1).is_ok() {
                max_pinned = b;
            }
            if m.train_step_time(&p, b, 4).is_ok() {
                max_unpinned = b;
            }
        }
        assert!(max_unpinned <= max_pinned);
        assert!(max_pinned >= 16, "pinned max batch {max_pinned}");
    }

    #[test]
    fn occupancy_curve() {
        assert!((KernelCostModel::occupancy(1) - 0.5).abs() < 1e-9);
        assert!(KernelCostModel::occupancy(16) > 0.9);
        assert!(KernelCostModel::occupancy(64) > KernelCostModel::occupancy(16));
    }
}
