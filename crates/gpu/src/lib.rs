//! `dlsr-gpu` — a simulated NVIDIA V100 GPU.
//!
//! The paper's experiments ran on Lassen's Volta V100s. This crate models
//! the pieces of a V100 the scaling study actually depends on:
//!
//! - a **memory tracker** (16 GB HBM2, OOM detection — drives Fig 9's
//!   batch-size ceiling and the "overhead kernel" memory-pressure story of
//!   Fig 6a),
//! - a **kernel cost model** (roofline + occupancy + launch overheads,
//!   calibrated against the paper's two single-GPU anchors: EDSR ≈ 10.3
//!   img/s and ResNet-50 ≈ 360 img/s — Fig 1),
//! - **CUDA IPC** handle semantics, including the `CUDA_VISIBLE_DEVICES`
//!   conflict of §III-C and the CUDA ≥ 10.1 behaviour that
//!   `MV2_VISIBLE_DEVICES` exploits (Fig 7),
//! - **visible-device masks** as processes and the MPI library see them.
//!
//! Timing is virtual: cost functions return seconds that the cluster
//! simulator adds to per-rank virtual clocks.

//! # Example
//!
//! ```
//! use dlsr_gpu::{GpuSpec, KernelCostModel, WorkloadKind, WorkloadProfile};
//!
//! let model = KernelCostModel::new(GpuSpec::v100());
//! let tiny = WorkloadProfile {
//!     name: "demo".into(),
//!     params: 1_000_000,
//!     fwd_flops: 5_000_000_000,
//!     activation_elems: 4_000_000,
//!     kernels: 50,
//!     kind: WorkloadKind::SuperResolution,
//! };
//! let t4 = model.throughput(&tiny, 4, 1).unwrap();
//! let t8 = model.throughput(&tiny, 8, 1).unwrap();
//! assert!(t8 > t4); // larger batches amortize overheads (Fig 9)
//! ```

#![forbid(unsafe_code)]
pub mod cost;
pub mod device;
pub mod ipc;
pub mod memory;
pub mod spec;
pub mod stream;
pub mod visibility;

pub use cost::{KernelCostModel, StepCost, WorkloadKind, WorkloadProfile};
pub use device::{Gpu, GpuId};
pub use ipc::{IpcError, IpcHandle, IpcRegistry};
pub use memory::{MemoryError, MemoryTracker};
pub use spec::GpuSpec;
pub use stream::{Event, StreamId, StreamScheduler};
pub use visibility::{DeviceEnv, VisibleDevices};
