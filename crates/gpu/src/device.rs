//! Simulated GPU device: identity + memory + buffer handles.

use crate::memory::{MemoryError, MemoryTracker};
use crate::spec::GpuSpec;

/// Cluster-wide GPU identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuId {
    /// Node index within the cluster.
    pub node: usize,
    /// Local device index within the node (0..gpus_per_node).
    pub local: usize,
}

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}:{}", self.node, self.local)
    }
}

/// Handle to a device-memory allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceBuffer {
    /// Owning device.
    pub device: GpuId,
    /// Unique id within the device.
    pub id: u64,
    /// Allocation size in bytes.
    pub bytes: u64,
}

/// One simulated GPU.
#[derive(Debug, Clone)]
pub struct Gpu {
    id: GpuId,
    spec: GpuSpec,
    memory: MemoryTracker,
    next_buffer: u64,
}

impl Gpu {
    /// Create a device of the given spec.
    pub fn new(id: GpuId, spec: GpuSpec) -> Self {
        let memory = MemoryTracker::new(spec.memory_bytes);
        Gpu {
            id,
            spec,
            memory,
            next_buffer: 0,
        }
    }

    /// Device identity.
    pub fn id(&self) -> GpuId {
        self.id
    }

    /// Hardware spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Allocate a device buffer.
    pub fn alloc(&mut self, bytes: u64) -> Result<DeviceBuffer, MemoryError> {
        self.memory.alloc(bytes)?;
        let id = self.next_buffer;
        self.next_buffer += 1;
        Ok(DeviceBuffer {
            device: self.id,
            id,
            bytes,
        })
    }

    /// Free a previously allocated buffer.
    pub fn free(&mut self, buf: DeviceBuffer) {
        debug_assert_eq!(buf.device, self.id, "freeing a foreign buffer");
        self.memory.free(buf.bytes);
    }

    /// Memory tracker (read access).
    pub fn memory(&self) -> &MemoryTracker {
        &self.memory
    }

    /// Reserve memory without a buffer handle (context allocations,
    /// framework reserved pools).
    pub fn reserve(&mut self, bytes: u64) -> Result<(), MemoryError> {
        self.memory.alloc(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_unique_ids_and_tracks_memory() {
        let mut g = Gpu::new(GpuId { node: 0, local: 1 }, GpuSpec::v100());
        let a = g.alloc(1 << 20).unwrap();
        let b = g.alloc(1 << 20).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(g.memory().used(), 2 << 20);
        g.free(a);
        assert_eq!(g.memory().used(), 1 << 20);
    }

    #[test]
    fn oom_surfaces() {
        let mut g = Gpu::new(GpuId { node: 0, local: 0 }, GpuSpec::v100());
        assert!(g.alloc(17 * (1 << 30)).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(GpuId { node: 3, local: 2 }.to_string(), "gpu3:2");
    }
}
