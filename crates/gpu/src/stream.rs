//! CUDA streams and events on virtual time — the concurrency semantics
//! behind the paper's §III-C observation that IPC-less MPI transfers hurt
//! more than their byte counts suggest.
//!
//! The rules modeled (matching CUDA's documented behaviour):
//! - work within one stream executes in order;
//! - independent streams overlap freely;
//! - the **default stream is synchronizing**: a default-stream operation
//!   waits for all prior work on all streams and blocks later work — and
//!   pageable-host `cudaMemcpy` (the staging fallback's transport) is a
//!   default-stream, synchronous operation. That is exactly why host-staged
//!   MPI transfers stall the concurrent backward pass.

/// Identifies a stream on one device. Stream 0 is the (legacy) default
/// stream with synchronizing semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

/// A recorded event: a point in virtual time on some stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    time: f64,
}

impl Event {
    /// Completion time of the work recorded before this event.
    pub fn time(&self) -> f64 {
        self.time
    }
}

/// Virtual-time scheduler for the streams of one device.
#[derive(Debug, Clone)]
pub struct StreamScheduler {
    /// Per-stream "free at" times; index 0 is the default stream.
    free_at: Vec<f64>,
}

impl StreamScheduler {
    /// A device with `extra_streams` non-default streams.
    pub fn new(extra_streams: usize) -> Self {
        StreamScheduler {
            free_at: vec![0.0; extra_streams + 1],
        }
    }

    /// The default (synchronizing) stream.
    pub fn default_stream(&self) -> StreamId {
        StreamId(0)
    }

    /// Launch `duration` seconds of work on `stream`, not starting before
    /// `earliest` (e.g. host-side launch time). Returns the completion time.
    pub fn launch(&mut self, stream: StreamId, earliest: f64, duration: f64) -> f64 {
        assert!(stream.0 < self.free_at.len(), "unknown stream {stream:?}");
        assert!(duration >= 0.0);
        if stream.0 == 0 {
            // legacy default stream: waits for everything, blocks everything
            let start = self.free_at.iter().fold(earliest, |acc, &t| acc.max(t));
            let end = start + duration;
            for t in self.free_at.iter_mut() {
                *t = end;
            }
            end
        } else {
            let start = self.free_at[stream.0].max(earliest);
            let end = start + duration;
            self.free_at[stream.0] = end;
            end
        }
    }

    /// Record an event capturing the stream's current completion frontier.
    pub fn record_event(&self, stream: StreamId) -> Event {
        Event {
            time: self.free_at[stream.0],
        }
    }

    /// Make `stream` wait for `event` (`cudaStreamWaitEvent`).
    pub fn wait_event(&mut self, stream: StreamId, event: Event) {
        let t = &mut self.free_at[stream.0];
        *t = t.max(event.time);
    }

    /// Host-side `cudaDeviceSynchronize`: time when all streams are idle.
    pub fn synchronize(&self) -> f64 {
        self.free_at.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_streams_overlap() {
        let mut s = StreamScheduler::new(2);
        let a = s.launch(StreamId(1), 0.0, 1.0);
        let b = s.launch(StreamId(2), 0.0, 1.0);
        assert_eq!(a, 1.0);
        assert_eq!(b, 1.0, "streams must run concurrently");
        assert_eq!(s.synchronize(), 1.0);
    }

    #[test]
    fn same_stream_serializes() {
        let mut s = StreamScheduler::new(1);
        s.launch(StreamId(1), 0.0, 1.0);
        let end = s.launch(StreamId(1), 0.0, 1.0);
        assert_eq!(end, 2.0);
    }

    #[test]
    fn default_stream_synchronizes_everything() {
        // The §III-C mechanism: a pageable-memcpy on the default stream
        // cannot overlap the compute running on stream 1 — total time is
        // the sum, not the max.
        let mut s = StreamScheduler::new(1);
        s.launch(StreamId(1), 0.0, 1.0); // backward compute
        let copy_end = s.launch(StreamId(0), 0.0, 0.5); // staged D2H copy
        assert_eq!(copy_end, 1.5, "default stream must wait for stream 1");
        // and later compute is blocked behind it
        let next = s.launch(StreamId(1), 0.0, 1.0);
        assert_eq!(next, 2.5);
    }

    #[test]
    fn non_default_copy_stream_overlaps_compute() {
        // The IPC path: P2P copies ride their own stream and overlap.
        let mut s = StreamScheduler::new(2);
        s.launch(StreamId(1), 0.0, 1.0); // compute
        let copy_end = s.launch(StreamId(2), 0.0, 0.5); // NVLink P2P copy
        assert_eq!(copy_end, 0.5, "copy overlaps compute");
        assert_eq!(s.synchronize(), 1.0);
    }

    #[test]
    fn events_order_cross_stream_work() {
        let mut s = StreamScheduler::new(2);
        s.launch(StreamId(1), 0.0, 2.0);
        let ev = s.record_event(StreamId(1));
        s.wait_event(StreamId(2), ev);
        let end = s.launch(StreamId(2), 0.0, 0.5);
        assert_eq!(end, 2.5, "stream 2 must wait for the event");
    }

    #[test]
    fn earliest_launch_time_is_respected() {
        let mut s = StreamScheduler::new(1);
        let end = s.launch(StreamId(1), 5.0, 1.0);
        assert_eq!(end, 6.0);
    }
}
