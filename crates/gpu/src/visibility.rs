//! Visible-device masks — the mechanism at the heart of the paper's
//! CUDA IPC conflict (§III-C, Figs 6–7).
//!
//! DL frameworks pin each process to one GPU by setting
//! `CUDA_VISIBLE_DEVICES=<local rank>`, which stops Python libraries from
//! spraying context allocations ("overhead kernels") across every device —
//! but it also hides the peer GPUs from the MPI library, disabling CUDA IPC.
//! The paper's fix is a second mask, `MV2_VISIBLE_DEVICES`, consulted only
//! by MVAPICH2-GDR.

use serde::{Deserialize, Serialize};

/// A set of local GPU indices visible to some component of a process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisibleDevices(Vec<usize>);

impl VisibleDevices {
    /// All `n` local devices visible (the default when the env var is unset).
    pub fn all(n: usize) -> Self {
        VisibleDevices((0..n).collect())
    }

    /// Only one device visible (the framework-pinning pattern).
    pub fn only(local: usize) -> Self {
        VisibleDevices(vec![local])
    }

    /// Parse an env-var style list: `"0,1,2,3"`.
    pub fn parse(s: &str) -> Option<Self> {
        let v: Option<Vec<usize>> = s
            .split(',')
            .map(|t| t.trim().parse::<usize>().ok())
            .collect();
        v.map(VisibleDevices)
    }

    /// Is `local` visible?
    pub fn contains(&self, local: usize) -> bool {
        self.0.contains(&local)
    }

    /// The visible indices.
    pub fn devices(&self) -> &[usize] {
        &self.0
    }

    /// Number of visible devices.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no device is visible.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The per-process device environment: what the *framework* sees
/// (`CUDA_VISIBLE_DEVICES`) and, optionally, what the *MPI library* sees
/// (`MV2_VISIBLE_DEVICES`, the paper's proposed variable — Fig 7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceEnv {
    /// What user code / the DL framework can touch.
    pub cuda_visible: VisibleDevices,
    /// What the MPI library can additionally see for IPC. `None` means the
    /// variable is unset and MPI inherits `cuda_visible` (the default,
    /// broken configuration).
    pub mv2_visible: Option<VisibleDevices>,
}

impl DeviceEnv {
    /// The *default* (pre-fix) environment: framework pinned to its local
    /// rank, MPI inheriting the same single-device mask → IPC impossible.
    pub fn default_pinned(local_rank: usize) -> Self {
        DeviceEnv {
            cuda_visible: VisibleDevices::only(local_rank),
            mv2_visible: None,
        }
    }

    /// The *optimized* environment of Fig 7: framework pinned, MPI granted
    /// all `gpus_per_node` devices via `MV2_VISIBLE_DEVICES`.
    pub fn mpi_opt(local_rank: usize, gpus_per_node: usize) -> Self {
        DeviceEnv {
            cuda_visible: VisibleDevices::only(local_rank),
            mv2_visible: Some(VisibleDevices::all(gpus_per_node)),
        }
    }

    /// The naive environment: nothing pinned — every process sees every GPU
    /// (IPC works, but each process pays a CUDA context on every device,
    /// Fig 6a's overhead kernels).
    pub fn unpinned(gpus_per_node: usize) -> Self {
        DeviceEnv {
            cuda_visible: VisibleDevices::all(gpus_per_node),
            mv2_visible: None,
        }
    }

    /// The device mask the MPI library operates under.
    pub fn mpi_visible(&self) -> &VisibleDevices {
        self.mv2_visible.as_ref().unwrap_or(&self.cuda_visible)
    }

    /// Can the MPI library set up an IPC mapping between two local devices?
    /// Requires both endpoints visible to MPI (CUDA ≥ 10.1 semantics: the
    /// *framework* mask is irrelevant, only MPI's own mask matters).
    pub fn ipc_possible(&self, a: usize, b: usize) -> bool {
        let m = self.mpi_visible();
        m.contains(a) && m.contains(b)
    }

    /// Number of devices this process pays a CUDA context on.
    pub fn context_count(&self) -> usize {
        self.cuda_visible.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_list() {
        let v = VisibleDevices::parse("0, 2,3").unwrap();
        assert_eq!(v.devices(), &[0, 2, 3]);
        assert!(VisibleDevices::parse("0,x").is_none());
    }

    #[test]
    fn default_pinned_blocks_ipc() {
        // The paper's problem: rank 0 pinned to GPU 0 cannot IPC to GPU 1.
        let env = DeviceEnv::default_pinned(0);
        assert!(!env.ipc_possible(0, 1));
        assert!(env.ipc_possible(0, 0));
    }

    #[test]
    fn mpi_opt_restores_ipc_while_keeping_framework_pinned() {
        // The paper's fix (Fig 7): MV2_VISIBLE_DEVICES=0,1,2,3 with
        // CUDA_VISIBLE_DEVICES=<rank>.
        let env = DeviceEnv::mpi_opt(2, 4);
        assert!(env.ipc_possible(2, 0));
        assert!(env.ipc_possible(1, 3));
        assert_eq!(env.context_count(), 1, "framework still pinned to one GPU");
    }

    #[test]
    fn unpinned_allows_ipc_but_pays_contexts() {
        let env = DeviceEnv::unpinned(4);
        assert!(env.ipc_possible(0, 3));
        assert_eq!(env.context_count(), 4, "overhead kernels on every device");
    }

    #[test]
    fn mpi_visible_falls_back_to_cuda_mask() {
        let env = DeviceEnv::default_pinned(1);
        assert_eq!(env.mpi_visible().devices(), &[1]);
    }
}
