//! The pre-engine convolution/GEMM kernels, preserved as the benchmark
//! baseline.
//!
//! These are the kernels the workspace shipped with before the packed,
//! batch-parallel GEMM engine landed in `dlsr-tensor`: a row-parallel
//! triple-loop matmul and a sequential per-image im2col convolution that
//! allocates its temporaries on every call and applies bias in a second
//! pass. They exist so `benches/conv_kernels.rs` and the `bench_conv`
//! binary can report before/after numbers against the same workloads —
//! do **not** use them outside benchmarks.

use rayon::prelude::*;

use dlsr_tensor::conv::Conv2dParams;
use dlsr_tensor::{Tensor, TensorError};

/// Naive ikj GEMM: `c[m×n] = a[m×k] · b[k×n]`, parallel over C rows.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0.0);
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    });
}

/// `c[m×n] = aᵀ · b` for `a[k×m]`, `b[k×n]`.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0.0);
        for p in 0..k {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    });
}

/// `c[m×n] = a · bᵀ` for `a[m×k]`, `b[n×k]`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            *cv = arow.iter().zip(brow.iter()).map(|(&x, &y)| x * y).sum();
        }
    });
}

fn im2col(
    img: &[f32],
    (c_in, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    p: Conv2dParams,
    col: &mut [f32],
) {
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    for c in 0..c_in {
        let plane = &img[c * h * w..(c + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * hw_out;
                for oy in 0..h_out {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    let dst = &mut col[row + oy * w_out..row + (oy + 1) * w_out];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let iy = iy as usize;
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        *d = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            plane[iy * w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

fn col2im(
    col: &[f32],
    (c_in, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    p: Conv2dParams,
    img: &mut [f32],
) {
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    for c in 0..c_in {
        let plane_base = c * h * w;
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * hw_out;
                for oy in 0..h_out {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    let src = &col[row + oy * w_out..row + (oy + 1) * w_out];
                    for (ox, &s) in src.iter().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix >= 0 && ix < w as isize {
                            img[plane_base + iy * w + ix as usize] += s;
                        }
                    }
                }
            }
        }
    }
}

/// Sequential-over-batch forward conv, allocating per call, bias as a
/// second pass over the output.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: Conv2dParams,
) -> Result<Tensor, TensorError> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight.shape().as_nchw()?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;
    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);
    let mut col = vec![0.0f32; k * hw_out];
    for i in 0..n {
        let img = &input.data()[i * c_in * h * w..(i + 1) * c_in * h * w];
        im2col(img, (c_in, h, w), (kh, kw), p, &mut col);
        let dst = &mut out.data_mut()[i * c_out * hw_out..(i + 1) * c_out * hw_out];
        matmul_into(weight.data(), &col, dst, c_out, k, hw_out);
        if let Some(b) = bias {
            for (co, chunk) in dst.chunks_mut(hw_out).enumerate() {
                let bv = b[co];
                chunk.iter_mut().for_each(|x| *x += bv);
            }
        }
    }
    Ok(out)
}

/// Sequential-over-batch backward conv, allocating per call.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    p: Conv2dParams,
) -> Result<(Tensor, Tensor, Vec<f32>), TensorError> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight.shape().as_nchw()?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;

    let mut grad_input = Tensor::zeros([n, c_in, h, w]);
    let mut grad_weight = Tensor::zeros(weight.shape().clone());
    let mut grad_bias = vec![0.0f32; c_out];

    let mut col = vec![0.0f32; k * hw_out];
    let mut col_grad = vec![0.0f32; k * hw_out];
    let mut gw_acc = vec![0.0f32; c_out * k];

    for i in 0..n {
        let img = &input.data()[i * c_in * h * w..(i + 1) * c_in * h * w];
        let go = &grad_out.data()[i * c_out * hw_out..(i + 1) * c_out * hw_out];
        for (co, chunk) in go.chunks(hw_out).enumerate() {
            grad_bias[co] += chunk.iter().sum::<f32>();
        }
        im2col(img, (c_in, h, w), (kh, kw), p, &mut col);
        matmul_a_bt(go, &col, &mut gw_acc, c_out, hw_out, k);
        for (a, &b) in grad_weight.data_mut().iter_mut().zip(gw_acc.iter()) {
            *a += b;
        }
        matmul_at_b(weight.data(), go, &mut col_grad, c_out, k, hw_out);
        let gi = &mut grad_input.data_mut()[i * c_in * h * w..(i + 1) * c_in * h * w];
        col2im(&col_grad, (c_in, h, w), (kh, kw), p, gi);
    }
    Ok((grad_input, grad_weight, grad_bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_tensor::init;

    /// The baseline must agree with the production engine, or before/after
    /// numbers compare different math.
    #[test]
    fn legacy_matches_production() {
        let p = Conv2dParams::same(3);
        let x = init::uniform([2, 3, 8, 8], -1.0, 1.0, 1);
        let w = init::uniform([4, 3, 3, 3], -1.0, 1.0, 2);
        let b = vec![0.1f32, -0.2, 0.0, 0.3];
        let old = conv2d(&x, &w, Some(&b), p).unwrap();
        let new = dlsr_tensor::conv::conv2d(&x, &w, Some(&b), p).unwrap();
        assert!(
            old.allclose(&new, 1e-4),
            "forward diff {}",
            old.max_abs_diff(&new)
        );

        let go = init::uniform(old.shape().dims(), -1.0, 1.0, 3);
        let (ogi, ogw, ogb) = conv2d_backward(&x, &w, &go, p).unwrap();
        let (ngi, ngw, ngb) = dlsr_tensor::conv::conv2d_backward(&x, &w, &go, p).unwrap();
        assert!(ogi.allclose(&ngi, 1e-3));
        assert!(ogw.allclose(&ngw, 1e-3));
        for (a, b) in ogb.iter().zip(ngb.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
