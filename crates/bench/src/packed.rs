//! Snapshot of the PR-1 *packed* conv/GEMM engine, preserved verbatim
//! (minus tracing) as the `after_packed_engine` benchmark tier.
//!
//! The production engine in `dlsr-tensor` has since been rebuilt around
//! explicit SIMD microkernels, shape-keyed blueprints and implicit-GEMM
//! convolution (see `docs/KERNELS.md`). This module keeps the previous
//! tier — autovectorized `MR×NR = 4×16` microkernel, whole-operand
//! packing, materialized im2col — runnable so `bench_conv` can report
//! `before_legacy_kernels` → `after_packed_engine` → `after_simd_engine`
//! from one binary. Like [`crate::legacy`], it is **not** production code;
//! it shares the scratch pool with the production engine but nothing else.

use rayon::prelude::*;

use dlsr_tensor::conv::{Act, Conv2dParams};
use dlsr_tensor::{scratch, Result, Tensor, TensorError};

const MR: usize = 4;
const NR: usize = 16;
const KC: usize = 256;
const NC: usize = 256;
const PAR_FLOP_THRESHOLD: usize = 1 << 21;

#[derive(Debug, Clone, Copy)]
enum Epilogue<'a> {
    None,
    Bias(&'a [f32]),
    Relu,
    BiasRelu(&'a [f32]),
}

type GemmFn = for<'a> fn(&[f32], &[f32], &mut [f32], usize, usize, usize, Epilogue<'a>);

fn packed_a_len(m: usize, k: usize) -> usize {
    k * m.div_ceil(MR) * MR
}

fn packed_b_len(k: usize, n: usize) -> usize {
    k * n.div_ceil(NR) * NR
}

fn pack_a(a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    pack_a_impl(a, m, k, false, out);
}

fn pack_a_transposed(a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    pack_a_impl(a, m, k, true, out);
}

fn pack_a_impl(a: &[f32], m: usize, k: usize, trans: bool, out: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(out.len(), packed_a_len(m, k));
    let mr_pad = m.div_ceil(MR) * MR;
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        for ip in 0..mr_pad / MR {
            let base = kb * mr_pad + ip * (MR * kc);
            let dst = &mut out[base..base + MR * kc];
            for (p, drow) in dst.chunks_exact_mut(MR).enumerate() {
                for (i, d) in drow.iter_mut().enumerate() {
                    let row = ip * MR + i;
                    *d = if row < m {
                        let col = kb + p;
                        if trans {
                            a[col * m + row]
                        } else {
                            a[row * k + col]
                        }
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

fn pack_b(b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    pack_b_impl(b, k, n, false, out);
}

fn pack_b_transposed(b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    pack_b_impl(b, k, n, true, out);
}

fn pack_b_impl(b: &[f32], k: usize, n: usize, trans: bool, out: &mut [f32]) {
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), packed_b_len(k, n));
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc).div_ceil(NR) * NR;
        let block = k * jc;
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            for jp in 0..ncb / NR {
                let base = block + kb * ncb + jp * (NR * kc);
                let dst = &mut out[base..base + NR * kc];
                for (p, drow) in dst.chunks_exact_mut(NR).enumerate() {
                    for (j, d) in drow.iter_mut().enumerate() {
                        let col = jc + jp * NR + j;
                        *d = if col < n {
                            let row = kb + p;
                            if trans {
                                b[col * k + row]
                            } else {
                                b[row * n + col]
                            }
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

fn microkernel(apan: &[f32], bpan: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (arow, brow) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)) {
        let ar: &[f32; MR] = arow.try_into().expect("chunks_exact yields MR");
        let br: &[f32; NR] = brow.try_into().expect("chunks_exact yields NR");
        for i in 0..MR {
            let av = ar[i];
            let acc_i = &mut acc[i];
            for j in 0..NR {
                acc_i[j] += av * br[j];
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn store_tile(
    acc: &[[f32; NR]; MR],
    crows: &mut [f32],
    n: usize,
    rows: usize,
    j0: usize,
    cols: usize,
    accumulate: bool,
    finalize: Option<(Epilogue<'_>, usize)>,
) {
    for (i, acc_i) in acc.iter().enumerate().take(rows) {
        let dst = &mut crows[i * n + j0..i * n + j0 + cols];
        let src = &acc_i[..cols];
        if accumulate {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        } else {
            dst.copy_from_slice(src);
        }
        if let Some((epi, row0)) = finalize {
            match epi {
                Epilogue::None => {}
                Epilogue::Bias(bias) => {
                    let bv = bias[row0 + i];
                    dst.iter_mut().for_each(|d| *d += bv);
                }
                Epilogue::Relu => {
                    dst.iter_mut().for_each(|d| *d = d.max(0.0));
                }
                Epilogue::BiasRelu(bias) => {
                    let bv = bias[row0 + i];
                    dst.iter_mut().for_each(|d| *d = (*d + bv).max(0.0));
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    apack: &[f32],
    bpack: &[f32],
    crows: &mut [f32],
    chunk_idx: usize,
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    let rows = crows.len() / n;
    let row0 = chunk_idx * MR;
    if k == 0 {
        for (i, row) in crows.chunks_exact_mut(n).enumerate() {
            match epi {
                Epilogue::None | Epilogue::Relu => row.fill(0.0),
                Epilogue::Bias(bias) => row.fill(bias[row0 + i]),
                Epilogue::BiasRelu(bias) => row.fill(bias[row0 + i].max(0.0)),
            }
        }
        return;
    }
    let mr_pad = m.div_ceil(MR) * MR;
    let kb_last = (k - 1) / KC * KC;
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc).div_ceil(NR) * NR;
        let block = k * jc;
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            let a_off = kb * mr_pad + chunk_idx * (MR * kc);
            let apan = &apack[a_off..a_off + MR * kc];
            let finalize = (kb == kb_last).then_some((epi, row0));
            for jp in 0..ncb / NR {
                let j0 = jc + jp * NR;
                let cols = NR.min(n - j0);
                let b_off = block + kb * ncb + jp * (NR * kc);
                let mut acc = [[0.0f32; NR]; MR];
                microkernel(apan, &bpack[b_off..b_off + NR * kc], &mut acc);
                store_tile(&acc, crows, n, rows, j0, cols, kb != 0, finalize);
            }
        }
    }
}

fn gemm_prepacked(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    assert_eq!(apack.len(), packed_a_len(m, k));
    assert_eq!(bpack.len(), packed_b_len(k, n));
    assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    if 2 * m * k * n >= PAR_FLOP_THRESHOLD && rayon::current_num_threads() > 1 {
        c.par_chunks_mut(MR * n).enumerate().for_each(|(ip, rows)| {
            gemm_rows(apack, bpack, rows, ip, m, k, n, epi);
        });
    } else {
        gemm_prepacked_seq(apack, bpack, c, m, k, n, epi);
    }
}

fn gemm_prepacked_seq(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    assert_eq!(apack.len(), packed_a_len(m, k));
    assert_eq!(bpack.len(), packed_b_len(k, n));
    assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    for (ip, rows) in c.chunks_mut(MR * n).enumerate() {
        gemm_rows(apack, bpack, rows, ip, m, k, n, epi);
    }
}

fn im2col(
    img: &[f32],
    (c_in, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    p: Conv2dParams,
    col: &mut [f32],
) {
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    debug_assert_eq!(col.len(), c_in * kh * kw * hw_out);
    for c in 0..c_in {
        let plane = &img[c * h * w..(c + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * hw_out;
                for oy in 0..h_out {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    let dst = &mut col[row + oy * w_out..row + (oy + 1) * w_out];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let iy = iy as usize;
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        *d = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            plane[iy * w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

fn col2im(
    col: &[f32],
    (c_in, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    p: Conv2dParams,
    img: &mut [f32],
) {
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    for c in 0..c_in {
        let plane_base = c * h * w;
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * hw_out;
                for oy in 0..h_out {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    let src = &col[row + oy * w_out..row + (oy + 1) * w_out];
                    for (ox, &s) in src.iter().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix >= 0 && ix < w as isize {
                            img[plane_base + iy * w + ix as usize] += s;
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution of the packed tier (materialized im2col + packed
/// GEMM, fused bias/activation epilogue).
pub fn conv2d_fused(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    act: Act,
    p: Conv2dParams,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, c_in_w, kh, kw) = weight.shape().as_nchw()?;
    if c_in != c_in_w {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c_in],
            got: vec![c_in_w],
            context: "packed conv2d (input channels vs weight channels)",
        });
    }
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;
    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);

    let mut wpack = scratch::take(packed_a_len(c_out, k));
    pack_a(weight.data(), c_out, k, &mut wpack);
    let epi = match (bias, act) {
        (None, Act::Identity) => Epilogue::None,
        (None, Act::Relu) => Epilogue::Relu,
        (Some(b), Act::Identity) => Epilogue::Bias(b),
        (Some(b), Act::Relu) => Epilogue::BiasRelu(b),
    };

    let chw_in = c_in * h * w;
    let batch_par = n > 1 && rayon::current_num_threads() > 1;
    let image = |i: usize, dst: &mut [f32]| {
        let img = &input.data()[i * chw_in..(i + 1) * chw_in];
        let mut col = scratch::take(k * hw_out);
        im2col(img, (c_in, h, w), (kh, kw), p, &mut col);
        let mut bpack = scratch::take(packed_b_len(k, hw_out));
        pack_b(&col, k, hw_out, &mut bpack);
        if batch_par {
            gemm_prepacked_seq(&wpack, &bpack, dst, c_out, k, hw_out, epi);
        } else {
            gemm_prepacked(&wpack, &bpack, dst, c_out, k, hw_out, epi);
        }
    };
    let out_chunk = c_out * hw_out;
    if batch_par {
        out.data_mut()
            .par_chunks_mut(out_chunk)
            .enumerate()
            .for_each(|(i, dst)| image(i, dst));
    } else {
        for (i, dst) in out.data_mut().chunks_mut(out_chunk).enumerate() {
            image(i, dst);
        }
    }
    Ok(out)
}

/// Gradients of the packed tier (materialized im2col + packed GEMMs,
/// fixed-order cross-batch reduction).
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    p: Conv2dParams,
) -> Result<(Tensor, Tensor, Vec<f32>)> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight.shape().as_nchw()?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    if (gn, gc, gh, gw) != (n, c_out, h_out, w_out) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c_out, h_out, w_out],
            got: vec![gn, gc, gh, gw],
            context: "packed conv2d_backward (grad_out shape)",
        });
    }
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;
    let chw_in = c_in * h * w;

    let mut grad_input = Tensor::zeros([n, c_in, h, w]);

    let mut wt_pack = scratch::take(packed_a_len(k, c_out));
    pack_a_transposed(weight.data(), k, c_out, &mut wt_pack);

    let mut gw_all = scratch::take(n * c_out * k);
    let mut gb_all = scratch::take(n * c_out);

    let batch_par = n > 1 && rayon::current_num_threads() > 1;
    let image = |i: usize, gi: &mut [f32], gw_i: &mut [f32], gb_i: &mut [f32]| {
        let img = &input.data()[i * chw_in..(i + 1) * chw_in];
        let go = &grad_out.data()[i * c_out * hw_out..(i + 1) * c_out * hw_out];

        for (co, chunk) in go.chunks_exact(hw_out).enumerate() {
            gb_i[co] = chunk.iter().sum::<f32>();
        }

        let mut col = scratch::take(k * hw_out);
        im2col(img, (c_in, h, w), (kh, kw), p, &mut col);
        let mut go_apack = scratch::take(packed_a_len(c_out, hw_out));
        pack_a(go, c_out, hw_out, &mut go_apack);
        let mut colt_pack = scratch::take(packed_b_len(hw_out, k));
        pack_b_transposed(&col, hw_out, k, &mut colt_pack);
        let gemm: GemmFn = if batch_par {
            gemm_prepacked_seq
        } else {
            gemm_prepacked
        };
        gemm(
            &go_apack,
            &colt_pack,
            gw_i,
            c_out,
            hw_out,
            k,
            Epilogue::None,
        );

        let mut go_bpack = scratch::take(packed_b_len(c_out, hw_out));
        pack_b(go, c_out, hw_out, &mut go_bpack);
        gemm(
            &wt_pack,
            &go_bpack,
            &mut col,
            k,
            c_out,
            hw_out,
            Epilogue::None,
        );
        col2im(&col, (c_in, h, w), (kh, kw), p, gi);
    };

    let gw_len = c_out * k;
    if batch_par {
        grad_input
            .data_mut()
            .par_chunks_mut(chw_in)
            .zip(gw_all.par_chunks_mut(gw_len))
            .zip(gb_all.par_chunks_mut(c_out))
            .enumerate()
            .for_each(|(i, ((gi, gw_i), gb_i))| image(i, gi, gw_i, gb_i));
    } else {
        for (i, ((gi, gw_i), gb_i)) in grad_input
            .data_mut()
            .chunks_mut(chw_in)
            .zip(gw_all.chunks_mut(gw_len))
            .zip(gb_all.chunks_mut(c_out))
            .enumerate()
        {
            image(i, gi, gw_i, gb_i);
        }
    }

    let mut grad_weight = Tensor::zeros(weight.shape().clone());
    for gw_i in gw_all.chunks_exact(gw_len) {
        for (a, &b) in grad_weight.data_mut().iter_mut().zip(gw_i.iter()) {
            *a += b;
        }
    }
    let mut grad_bias = vec![0.0f32; c_out];
    for gb_i in gb_all.chunks_exact(c_out) {
        for (a, &b) in grad_bias.iter_mut().zip(gb_i.iter()) {
            *a += b;
        }
    }
    Ok((grad_input, grad_weight, grad_bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_tensor::init;

    /// The snapshot must agree with the production engine (within
    /// accumulation-order tolerance — the production engine fuses
    /// multiply-add, this tier does not).
    #[test]
    fn packed_tier_matches_production_engine() {
        let p = Conv2dParams::same(3);
        let x = init::uniform([2, 3, 8, 8], -1.0, 1.0, 91);
        let w = init::uniform([4, 3, 3, 3], -1.0, 1.0, 92);
        let b = vec![0.1f32, -0.2, 0.3, 0.0];
        let old = conv2d_fused(&x, &w, Some(&b), Act::Relu, p).unwrap();
        let new = dlsr_tensor::conv::conv2d_fused(&x, &w, Some(&b), Act::Relu, p).unwrap();
        assert!(old.allclose(&new, 1e-4), "{}", old.max_abs_diff(&new));

        let go = init::uniform(old.shape().dims(), -1.0, 1.0, 93);
        let (gi, gw, gb) = conv2d_backward(&x, &w, &go, p).unwrap();
        let (ni, nw, nb) = dlsr_tensor::conv::conv2d_backward(&x, &w, &go, p).unwrap();
        assert!(gi.allclose(&ni, 1e-3), "{}", gi.max_abs_diff(&ni));
        assert!(gw.allclose(&nw, 1e-3), "{}", gw.max_abs_diff(&nw));
        for (a, b) in gb.iter().zip(nb.iter()) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
