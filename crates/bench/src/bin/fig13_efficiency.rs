//! **Fig 13** — EDSR scaling efficiency (throughput ÷ ideal linear
//! scaling) for default MPI, MPI-Opt and NCCL up to 512 GPUs.
//! Paper: default drops below 60 % at scale; MPI-Opt stays above 70 %, a
//! +15.6 % efficiency improvement = 1.26× training speedup.
//!
//! Run: `cargo run --release -p dlsr-bench --bin fig13_efficiency`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{bar, node_counts, steps, warmup, write_json, SEED};

fn main() {
    let (w, tensors) = edsr_measured_workload();
    let nodes = node_counts();
    println!("== Fig 13: EDSR scaling efficiency ==\n");

    let mpi = scaling_sweep(
        &nodes,
        Scenario::MpiDefault,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );
    let opt = scaling_sweep(
        &nodes,
        Scenario::MpiOpt,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );
    let nccl = scaling_sweep(
        &nodes,
        Scenario::Nccl,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );

    println!("{:>6} {:>9} {:>9} {:>9}", "GPUs", "MPI", "MPI-Opt", "NCCL");
    for ((m, o), n) in mpi.iter().zip(opt.iter()).zip(nccl.iter()) {
        println!(
            "{:>6} {:>8.1}% {:>8.1}% {:>8.1}%   Opt {}",
            m.gpus,
            m.efficiency * 100.0,
            o.efficiency * 100.0,
            n.efficiency * 100.0,
            bar(o.efficiency, 1.0, 30)
        );
        println!("{:>41}MPI {}", "", bar(m.efficiency, 1.0, 30));
    }
    let (m_last, o_last) = (mpi.last().unwrap(), opt.last().unwrap());
    let diff_pp = (o_last.efficiency - m_last.efficiency) * 100.0;
    let speedup = o_last.images_per_sec / m_last.images_per_sec;
    println!(
        "\nat {} GPUs: MPI-Opt {:.1} % vs default {:.1} % — a {:.1} pp efficiency",
        o_last.gpus,
        o_last.efficiency * 100.0,
        m_last.efficiency * 100.0,
        diff_pp
    );
    println!("improvement (paper: +15.6 pp) and a {speedup:.2}× training speedup (paper: 1.26×).");

    let ser = |v: &[ScalingPoint]| {
        v.iter()
            .map(|p| serde_json::json!({ "gpus": p.gpus, "efficiency": p.efficiency }))
            .collect::<Vec<_>>()
    };
    write_json(
        "fig13_results.json",
        &serde_json::json!({
            "figure": "13",
            "paper": { "efficiency_gain_pp": 15.6, "speedup": 1.26,
                       "default_at_512": "<60%", "opt_at_512": ">70%" },
            "measured": { "efficiency_gain_pp": diff_pp, "speedup": speedup },
            "mpi_default": ser(&mpi),
            "mpi_opt": ser(&opt),
            "nccl": ser(&nccl),
        }),
    );
}
