//! **Fig 12** — Optimized distributed EDSR training performance: MPI-Opt
//! (CUDA IPC restored via `MV2_VISIBLE_DEVICES` + registration cache)
//! against default MPI and NCCL, 4 → 512 GPUs.
//! Paper: 26 % throughput improvement over default MPI at scale.
//!
//! Run: `cargo run --release -p dlsr-bench --bin fig12_optimized_scaling`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{bar, node_counts, steps, warmup, write_json, SEED};

fn main() {
    let (w, tensors) = edsr_measured_workload();
    let nodes = node_counts();
    println!("== Fig 12: optimized EDSR scaling (MPI-Opt vs MPI vs NCCL) ==\n");

    let mpi = scaling_sweep(
        &nodes,
        Scenario::MpiDefault,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );
    let opt = scaling_sweep(
        &nodes,
        Scenario::MpiOpt,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );
    let nccl = scaling_sweep(
        &nodes,
        Scenario::Nccl,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );

    let max = opt.iter().map(|p| p.images_per_sec).fold(0.0, f64::max);
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>9}",
        "GPUs", "MPI", "MPI-Opt", "NCCL", "Opt gain"
    );
    for ((m, o), n) in mpi.iter().zip(opt.iter()).zip(nccl.iter()) {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>8.1}%   {}",
            m.gpus,
            m.images_per_sec,
            o.images_per_sec,
            n.images_per_sec,
            (o.images_per_sec / m.images_per_sec - 1.0) * 100.0,
            bar(o.images_per_sec, max, 30)
        );
    }
    let (m_last, o_last) = (mpi.last().unwrap(), opt.last().unwrap());
    println!(
        "\nat {} GPUs MPI-Opt improves throughput by {:.1} % over default MPI",
        o_last.gpus,
        (o_last.images_per_sec / m_last.images_per_sec - 1.0) * 100.0
    );
    println!("(paper: 26 %), and matches or beats NCCL across the sweep.");

    let ser = |v: &[ScalingPoint]| {
        v.iter()
            .map(|p| serde_json::json!({ "gpus": p.gpus, "img_s": p.images_per_sec, "efficiency": p.efficiency }))
            .collect::<Vec<_>>()
    };
    write_json(
        "fig12_results.json",
        &serde_json::json!({
            "figure": "12",
            "paper": { "opt_vs_default_gain_pct": 26.0 },
            "mpi_default": ser(&mpi),
            "mpi_opt": ser(&opt),
            "nccl": ser(&nccl),
        }),
    );
}
