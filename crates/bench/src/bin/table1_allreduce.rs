//! **Table I** — Allreduce time performance improvement by message-size
//! bin, 100 training steps of EDSR on 4 GPUs (default MPI vs MPI-Opt).
//!
//! Paper values (ms over 100 steps):
//! 1–128 KB: 392.0 → 391.2 (≈0) · 128 KB–16 MB: 320.7 → 342.4 (≈0) ·
//! 16–32 MB: 1321.6 → 619.6 (53.1 %) · 32–64 MB: 5145.6 → 2587.2 (49.7 %)
//! · total 7179.9 → 3918.5 (**45.4 %**).
//!
//! Run: `cargo run --release -p dlsr-bench --bin table1_allreduce`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{write_json, SEED};
use dlsr_net::ClusterTopology;

fn main() {
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(1);
    let steps = 100;
    println!("== Table I: allreduce improvement, {steps} steps of EDSR on 4 GPUs ==\n");

    let d = run_training(&topo, Scenario::MpiDefault, &w, &tensors, 4, 2, steps, SEED);
    let o = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 2, steps, SEED);

    let rows = compare(&d.profile, &o.profile, Collective::Allreduce);
    print!("{}", render_table(&rows));

    let total = rows.last().expect("total row");
    println!(
        "\ntotal allreduce time improvement: {:.1} % (paper: 45.4 %)",
        total.improvement_pct
    );
    println!(
        "training throughput: {:.1} → {:.1} img/s",
        d.images_per_sec, o.images_per_sec
    );

    write_json(
        "table1_results.json",
        &serde_json::json!({
            "table": "I",
            "paper": {
                "rows": [
                    { "bin": "1-128 KB", "default_ms": 392.0, "optimized_ms": 391.2 },
                    { "bin": "128 KB - 16 MB", "default_ms": 320.7, "optimized_ms": 342.4 },
                    { "bin": "16 MB - 32 MB", "default_ms": 1321.6, "optimized_ms": 619.6 },
                    { "bin": "32 MB - 64 MB", "default_ms": 5145.6, "optimized_ms": 2587.2 },
                    { "bin": "Total Time", "default_ms": 7179.9, "optimized_ms": 3918.5 },
                ],
                "total_improvement_pct": 45.4
            },
            "measured": {
                "rows": rows.iter().map(|r| serde_json::json!({
                    "bin": r.bin, "default_ms": r.default_ms,
                    "optimized_ms": r.optimized_ms, "improvement_pct": r.improvement_pct
                })).collect::<Vec<_>>(),
                "total_improvement_pct": total.improvement_pct
            }
        }),
    );
}
