//! Before/after throughput of the packed, batch-parallel conv engine on a
//! fixed tiny-EDSR training step, against the pre-engine kernels preserved
//! in [`dlsr_bench::legacy`].
//!
//! Workload: batch 4 at 48×48 — a 3→64 head conv, two residual-style
//! conv(+ReLU)/conv pairs at F=64, and a 64→3 tail conv, forward and
//! backward. The engine path fuses the ReLU into the GEMM epilogue; the
//! legacy path applies it as a separate elementwise pass, exactly as the
//! seed code did. Emits `results/BENCH_conv.json` with img/sec both ways.

#![forbid(unsafe_code)]
use std::time::Instant;

use dlsr_bench::legacy;
use dlsr_tensor::conv::{conv2d_backward, conv2d_fused, Act, Conv2dParams};
use dlsr_tensor::{elementwise, init, Tensor};

const BATCH: usize = 4;
const PATCH: usize = 48;
const FEATS: usize = 64;
const WARMUP: usize = 1;
const STEPS: usize = 3;

struct Layer {
    w: Tensor,
    b: Vec<f32>,
    relu: bool,
}

fn build_stack() -> Vec<Layer> {
    let layer = |c_in: usize, c_out: usize, relu: bool, seed: u64| Layer {
        w: init::uniform([c_out, c_in, 3, 3], -0.05, 0.05, seed),
        b: (0..c_out).map(|i| 0.01 * i as f32).collect(),
        relu,
    };
    vec![
        layer(3, FEATS, false, 1),
        layer(FEATS, FEATS, true, 2),
        layer(FEATS, FEATS, false, 3),
        layer(FEATS, FEATS, true, 4),
        layer(FEATS, FEATS, false, 5),
        layer(FEATS, 3, false, 6),
    ]
}

/// One forward+backward pass with the production engine (fused ReLU).
fn step_engine(stack: &[Layer], x: &Tensor, p: Conv2dParams) -> Tensor {
    let mut acts = vec![x.clone()];
    for l in stack {
        let act = if l.relu { Act::Relu } else { Act::Identity };
        let y = conv2d_fused(acts.last().unwrap(), &l.w, Some(&l.b), act, p).unwrap();
        acts.push(y);
    }
    let mut grad = Tensor::ones(acts.last().unwrap().shape().clone());
    for (i, l) in stack.iter().enumerate().rev() {
        if l.relu {
            // post-activation output doubles as the mask: y > 0 ⇔ pre > 0
            grad = elementwise::relu_backward(&grad, &acts[i + 1]).unwrap();
        }
        let (gi, _gw, _gb) = conv2d_backward(&acts[i], &l.w, &grad, p).unwrap();
        grad = gi;
    }
    grad
}

/// The same pass with the pre-engine kernels: sequential conv, separate
/// ReLU pass, per-call allocations.
fn step_legacy(stack: &[Layer], x: &Tensor, p: Conv2dParams) -> Tensor {
    let mut acts = vec![x.clone()];
    for l in stack {
        let mut y = legacy::conv2d(acts.last().unwrap(), &l.w, Some(&l.b), p).unwrap();
        if l.relu {
            y = elementwise::relu(&y);
        }
        acts.push(y);
    }
    let mut grad = Tensor::ones(acts.last().unwrap().shape().clone());
    for (i, l) in stack.iter().enumerate().rev() {
        if l.relu {
            grad = elementwise::relu_backward(&grad, &acts[i + 1]).unwrap();
        }
        let (gi, _gw, _gb) = legacy::conv2d_backward(&acts[i], &l.w, &grad, p).unwrap();
        grad = gi;
    }
    grad
}

fn time_steps<F: FnMut() -> Tensor>(mut f: F) -> (f64, Tensor) {
    for _ in 0..WARMUP {
        f();
    }
    let t0 = Instant::now();
    let mut last = f();
    for _ in 1..STEPS {
        last = f();
    }
    (t0.elapsed().as_secs_f64() / STEPS as f64, last)
}

fn main() {
    let p = Conv2dParams::same(3);
    let stack = build_stack();
    let x = init::uniform([BATCH, 3, PATCH, PATCH], -1.0, 1.0, dlsr_bench::SEED);

    println!(
        "tiny-EDSR conv step: batch {BATCH}, {PATCH}x{PATCH}, F={FEATS}, {} convs",
        stack.len()
    );

    let (legacy_s, g_legacy) = time_steps(|| step_legacy(&stack, &x, p));
    let (engine_s, g_engine) = time_steps(|| step_engine(&stack, &x, p));
    assert!(
        g_engine.allclose(&g_legacy, 1e-3),
        "engine and legacy paths disagree: {}",
        g_engine.max_abs_diff(&g_legacy)
    );

    let legacy_ips = BATCH as f64 / legacy_s;
    let engine_ips = BATCH as f64 / engine_s;
    let speedup = legacy_s / engine_s;
    println!("legacy: {legacy_s:.4} s/step  ({legacy_ips:.2} img/s)");
    println!("engine: {engine_s:.4} s/step  ({engine_ips:.2} img/s)");
    println!("speedup: {speedup:.2}x");

    dlsr_bench::write_json(
        "BENCH_conv.json",
        &serde_json::json!({
            "workload": {
                "batch": BATCH,
                "patch": PATCH,
                "features": FEATS,
                "convs": stack.len(),
                "pass": "forward+backward",
                "warmup_steps": WARMUP,
                "timed_steps": STEPS,
            },
            "before_legacy_kernels": {
                "seconds_per_step": legacy_s,
                "images_per_sec": legacy_ips,
            },
            "after_packed_engine": {
                "seconds_per_step": engine_s,
                "images_per_sec": engine_ips,
            },
            "speedup": speedup,
        }),
    );
}
