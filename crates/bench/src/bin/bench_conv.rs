//! Three-tier throughput history of the conv engine on a fixed tiny-EDSR
//! training step:
//!
//! - `before_legacy_kernels` — the seed's direct conv loops, preserved in
//!   [`dlsr_bench::legacy`];
//! - `after_packed_engine` — the first engine rewrite (materialized im2col
//!   + packed 4×16 GEMM), preserved verbatim in [`dlsr_bench::packed`];
//! - `after_simd_engine` — the production path: SIMD microkernels behind
//!   runtime dispatch, shape-keyed blueprints, implicit-GEMM conv.
//!
//! Workload: batch 4 at 48×48 — a 3→64 head conv, two residual-style
//! conv(+ReLU)/conv pairs at F=64, and a 64→3 tail conv, forward and
//! backward. Emits `results/BENCH_conv.json` with img/sec for all tiers
//! and the tier-over-tier speedups.

#![forbid(unsafe_code)]
use std::time::Instant;

use dlsr_attr as dlsr;
use dlsr_bench::{legacy, packed};
use dlsr_tensor::conv::{conv2d_backward, conv2d_fused, Act, Conv2dParams};
use dlsr_tensor::{elementwise, init, Tensor};

const BATCH: usize = 4;
const PATCH: usize = 48;
const FEATS: usize = 64;
const WARMUP: usize = 1;
const STEPS: usize = 3;

struct Layer {
    w: Tensor,
    b: Vec<f32>,
    relu: bool,
}

fn build_stack() -> Vec<Layer> {
    let layer = |c_in: usize, c_out: usize, relu: bool, seed: u64| Layer {
        w: init::uniform([c_out, c_in, 3, 3], -0.05, 0.05, seed),
        b: (0..c_out).map(|i| 0.01 * i as f32).collect(),
        relu,
    };
    vec![
        layer(3, FEATS, false, 1),
        layer(FEATS, FEATS, true, 2),
        layer(FEATS, FEATS, false, 3),
        layer(FEATS, FEATS, true, 4),
        layer(FEATS, FEATS, false, 5),
        layer(FEATS, 3, false, 6),
    ]
}

type FusedFn =
    fn(&Tensor, &Tensor, Option<&[f32]>, Act, Conv2dParams) -> dlsr_tensor::Result<Tensor>;
type BackwardFn =
    fn(&Tensor, &Tensor, &Tensor, Conv2dParams) -> dlsr_tensor::Result<(Tensor, Tensor, Vec<f32>)>;

/// One forward+backward pass through `fused`/`backward` (fused-ReLU tiers).
fn step_fused(
    stack: &[Layer],
    x: &Tensor,
    p: Conv2dParams,
    fused: FusedFn,
    backward: BackwardFn,
) -> Tensor {
    let mut acts = vec![x.clone()];
    for l in stack {
        let act = if l.relu { Act::Relu } else { Act::Identity };
        let y = fused(acts.last().unwrap(), &l.w, Some(&l.b), act, p).unwrap();
        acts.push(y);
    }
    let mut grad = Tensor::ones(acts.last().unwrap().shape().clone());
    for (i, l) in stack.iter().enumerate().rev() {
        if l.relu {
            // post-activation output doubles as the mask: y > 0 ⇔ pre > 0
            grad = elementwise::relu_backward(&grad, &acts[i + 1]).unwrap();
        }
        let (gi, _gw, _gb) = backward(&acts[i], &l.w, &grad, p).unwrap();
        grad = gi;
    }
    grad
}

/// The same pass with the pre-engine kernels: sequential conv, separate
/// ReLU pass, per-call allocations.
fn step_legacy(stack: &[Layer], x: &Tensor, p: Conv2dParams) -> Tensor {
    let mut acts = vec![x.clone()];
    for l in stack {
        let mut y = legacy::conv2d(acts.last().unwrap(), &l.w, Some(&l.b), p).unwrap();
        if l.relu {
            y = elementwise::relu(&y);
        }
        acts.push(y);
    }
    let mut grad = Tensor::ones(acts.last().unwrap().shape().clone());
    for (i, l) in stack.iter().enumerate().rev() {
        if l.relu {
            grad = elementwise::relu_backward(&grad, &acts[i + 1]).unwrap();
        }
        let (gi, _gw, _gb) = legacy::conv2d_backward(&acts[i], &l.w, &grad, p).unwrap();
        grad = gi;
    }
    grad
}

#[dlsr::wall]
fn time_steps<F: FnMut() -> Tensor>(mut f: F) -> (f64, Tensor) {
    for _ in 0..WARMUP {
        f();
    }
    let t0 = Instant::now();
    let mut last = f();
    for _ in 1..STEPS {
        last = f();
    }
    (t0.elapsed().as_secs_f64() / STEPS as f64, last)
}

fn main() {
    let p = Conv2dParams::same(3);
    let stack = build_stack();
    let x = init::uniform([BATCH, 3, PATCH, PATCH], -1.0, 1.0, dlsr_bench::SEED);

    println!(
        "tiny-EDSR conv step: batch {BATCH}, {PATCH}x{PATCH}, F={FEATS}, {} convs",
        stack.len()
    );

    let (legacy_s, g_legacy) = time_steps(|| step_legacy(&stack, &x, p));
    let (packed_s, g_packed) =
        time_steps(|| step_fused(&stack, &x, p, packed::conv2d_fused, packed::conv2d_backward));
    let (simd_s, g_simd) = time_steps(|| step_fused(&stack, &x, p, conv2d_fused, conv2d_backward));
    assert!(
        g_packed.allclose(&g_legacy, 1e-3),
        "packed and legacy paths disagree: {}",
        g_packed.max_abs_diff(&g_legacy)
    );
    assert!(
        g_simd.allclose(&g_legacy, 1e-3),
        "simd and legacy paths disagree: {}",
        g_simd.max_abs_diff(&g_legacy)
    );

    let ips = |s: f64| BATCH as f64 / s;
    let speedup_packed = legacy_s / packed_s;
    let speedup_simd = packed_s / simd_s;
    println!("legacy: {legacy_s:.4} s/step  ({:.2} img/s)", ips(legacy_s));
    println!(
        "packed: {packed_s:.4} s/step  ({:.2} img/s)  [{speedup_packed:.2}x vs legacy]",
        ips(packed_s)
    );
    println!(
        "simd:   {simd_s:.4} s/step  ({:.2} img/s)  [{speedup_simd:.2}x vs packed]",
        ips(simd_s)
    );

    dlsr_bench::write_json(
        "BENCH_conv.json",
        &serde_json::json!({
            "workload": {
                "batch": BATCH,
                "patch": PATCH,
                "features": FEATS,
                "convs": stack.len(),
                "pass": "forward+backward",
                "warmup_steps": WARMUP,
                "timed_steps": STEPS,
            },
            "before_legacy_kernels": {
                "seconds_per_step": legacy_s,
                "images_per_sec": ips(legacy_s),
            },
            "after_packed_engine": {
                "seconds_per_step": packed_s,
                "images_per_sec": ips(packed_s),
            },
            "after_simd_engine": {
                "seconds_per_step": simd_s,
                "images_per_sec": ips(simd_s),
            },
            "speedup_packed_vs_legacy": speedup_packed,
            "speedup_simd_vs_packed": speedup_simd,
            "speedup_simd_vs_legacy": legacy_s / simd_s,
        }),
    );
}
