//! **Fig 9** — Single-GPU batch-size evaluation for EDSR: throughput vs
//! batch size on a 16 GB V100, with the OOM ceiling. The paper selected
//! batch 4 from this sweep (throughput saturates early, and small batches
//! preserve convergence speed).
//!
//! Run: `cargo run --release -p dlsr-bench --bin fig09_batch_size`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{bar, write_json};

fn main() {
    let (workload, _) = edsr_measured_workload();
    let batches = [1usize, 2, 4, 8, 16, 24, 32, 48, 64];
    let sweep = batch_sweep(&workload, &batches);

    println!("== Fig 9: EDSR single-GPU throughput vs batch size ==\n");
    let best = sweep.iter().filter_map(|&(_, t)| t).fold(0.0f64, f64::max);
    println!("{:>6} {:>12}", "batch", "img/s");
    let mut series = Vec::new();
    for &(b, t) in &sweep {
        match t {
            Some(t) => {
                println!("{b:>6} {t:>12.2}   {}", bar(t, best, 40));
                series.push(serde_json::json!({ "batch": b, "img_s": t }));
            }
            None => {
                println!("{b:>6} {:>12}   (16 GB exceeded)", "OOM");
                series.push(serde_json::json!({ "batch": b, "img_s": null }));
            }
        }
    }
    println!("\nthe paper trains with batch 4 (§IV-C): throughput is already within");
    let t4 = sweep
        .iter()
        .find(|&&(b, _)| b == 4)
        .and_then(|&(_, t)| t)
        .unwrap();
    println!(
        "{:.0} % of the saturated rate while keeping per-GPU batches small for",
        t4 / best * 100.0
    );
    println!("convergence at scale.");

    write_json(
        "fig09_results.json",
        &serde_json::json!({ "figure": "9", "series": series }),
    );
}
