//! **Extra** — what if the paper's EDSR really were the literal §IV-C
//! configuration (B=32, **F=64**)? Its full gradient set is only ~10 MB,
//! so every fused message sits *below* the 16 MB CUDA-IPC rendezvous
//! threshold — and the `MV2_VISIBLE_DEVICES` fix would change almost
//! nothing. The measured Table I bins (16–64 MB) and the real MPI-Opt gains
//! therefore imply the F=256 model; this harness makes that argument
//! quantitative (see EXPERIMENTS.md "Known deviations" #1).
//!
//! Run: `cargo run --release -p dlsr-bench --bin extra_text_config_scaling`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{steps, warmup, write_json, SEED};
use dlsr_net::ClusterTopology;

fn main() {
    println!("== what-if: the literal §IV-C EDSR (B=32, F=64, ~10 MB gradients) ==\n");
    let (w, tensors) = edsr_text_workload();
    println!(
        "workload: {} — {} params, {} MB of gradients\n",
        w.name,
        w.params,
        w.grad_bytes() >> 20
    );
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "GPUs", "MPI (img/s)", "Opt (img/s)", "Opt gain"
    );
    let mut rows = Vec::new();
    for &nodes in &[1usize, 8, 32, 128] {
        let topo = ClusterTopology::lassen(nodes);
        let d = run_training(
            &topo,
            Scenario::MpiDefault,
            &w,
            &tensors,
            4,
            warmup(),
            steps(),
            SEED,
        );
        let o = run_training(
            &topo,
            Scenario::MpiOpt,
            &w,
            &tensors,
            4,
            warmup(),
            steps(),
            SEED,
        );
        let gain = (o.images_per_sec / d.images_per_sec - 1.0) * 100.0;
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>8.1}%",
            d.gpus, d.images_per_sec, o.images_per_sec, gain
        );
        rows.push(serde_json::json!({
            "gpus": d.gpus,
            "mpi_img_s": d.images_per_sec,
            "mpi_opt_img_s": o.images_per_sec,
            "gain_pct": gain,
        }));
        // the message-size evidence
        if nodes == 1 {
            print!("\n{}\n", d.profile.render(Collective::Allreduce));
        }
    }
    println!("with every fused message below the 16 MB IPC threshold, MPI-Opt's");
    println!("gain is a few percent (registration cache only) — nothing like the");
    println!("paper's 26 %. The measured results require the F=256 model.");

    write_json(
        "extra_text_config.json",
        &serde_json::json!({ "rows": rows }),
    );
}
