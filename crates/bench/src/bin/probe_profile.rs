//! Internal probe: per-bin allreduce profile plus the cross-layer
//! step-time breakdown for each scenario at a scale. All timing comes
//! from the shared trace collector (`dlsr_bench::traced_training_run`).

#![forbid(unsafe_code)]
use dlsr_bench::traced_training_run;
use dlsr_cluster::Scenario;
use dlsr_hvprof::Collective;
use dlsr_net::ClusterTopology;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).map(|a| a.parse().unwrap()).unwrap_or(1);
    let topo = ClusterTopology::lassen(nodes);
    for sc in Scenario::ALL {
        let (run, report) = traced_training_run(&topo, sc, 4, 2, 8, 99);
        println!(
            "-- {} ({} nodes): step {:.1} ms, allreduce total {:.1} ms --",
            sc.label(),
            nodes,
            run.step_time * 1e3,
            run.profile.total_seconds(Collective::Allreduce) * 1e3
        );
        print!("{}", run.profile.render(Collective::Allreduce));
        print!("{}", report.render());
        println!();
    }
}
