//! Internal probe: per-bin allreduce profile for each scenario at a scale.

use dlsr_cluster::{edsr_measured_workload, run_training, Scenario};
use dlsr_hvprof::Collective;
use dlsr_net::ClusterTopology;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).map(|a| a.parse().unwrap()).unwrap_or(1);
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(nodes);
    for sc in Scenario::all() {
        let run = run_training(&topo, sc, &w, &tensors, 4, 2, 8, 99);
        println!(
            "-- {} ({} nodes): step {:.1} ms, allreduce total {:.1} ms --",
            sc.label(),
            nodes,
            run.step_time * 1e3,
            run.profile.total_seconds(Collective::Allreduce) * 1e3
        );
        print!("{}", run.profile.render(Collective::Allreduce));
    }
}
