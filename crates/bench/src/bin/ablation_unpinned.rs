//! **Ablation** — the Fig 6a story: what happens *without*
//! `CUDA_VISIBLE_DEVICES` pinning. Every process then instantiates a CUDA
//! context ("overhead kernels") on all four local GPUs, so each device
//! hosts 4 contexts; CUDA IPC works, but the wasted memory shrinks the
//! usable batch — "these extra kernels frequently overflow GPU memory, and
//! restrict the hyperparameter space" (§III-C).
//!
//! Run: `cargo run --release -p dlsr-bench --bin ablation_unpinned`

#![forbid(unsafe_code)]
use dlsr::gpu::DeviceEnv;
use dlsr::prelude::*;
use dlsr_bench::write_json;

fn max_batch(model: &KernelCostModel, w: &WorkloadProfile, contexts: usize) -> usize {
    (1..=256)
        .take_while(|&b| model.train_step_time(w, b, contexts).is_ok())
        .count()
}

fn main() {
    let model = KernelCostModel::new(GpuSpec::v100());
    let (w, _) = edsr_measured_workload();
    println!("== Fig 6 ablation: device-visibility configurations ==\n");

    let rows = [
        ("unpinned (no masks)", DeviceEnv::unpinned(4)),
        (
            "pinned (CUDA_VISIBLE_DEVICES)",
            DeviceEnv::default_pinned(0),
        ),
        ("pinned + MV2_VISIBLE_DEVICES", DeviceEnv::mpi_opt(0, 4)),
    ];
    println!(
        "{:<32} {:>9} {:>9} {:>11} {:>10}",
        "configuration", "contexts", "IPC?", "ctx waste", "max batch"
    );
    let mut out = Vec::new();
    for (name, env) in rows {
        // per *device*: every local process (4 of them) opens a context on
        // each device it can see
        let contexts_per_device = if env.context_count() == 4 { 4 } else { 1 };
        let ipc = env.ipc_possible(0, 1);
        let waste = contexts_per_device as u64 * model.spec().context_bytes;
        let mb = max_batch(&model, &w, contexts_per_device);
        println!(
            "{:<32} {:>9} {:>9} {:>8} MB {:>10}",
            name,
            contexts_per_device,
            if ipc { "yes" } else { "no" },
            waste >> 20,
            mb
        );
        out.push(serde_json::json!({
            "config": name,
            "contexts_per_device": contexts_per_device,
            "ipc": ipc,
            "context_waste_mb": waste >> 20,
            "max_batch": mb,
        }));
    }
    println!("\nunpinned keeps IPC but pays 4 CUDA contexts per device (Fig 6a);");
    println!("pinning frees the memory but breaks MPI's IPC (Fig 6b) — only the");
    println!("MV2_VISIBLE_DEVICES split (Fig 7) gets both.");

    write_json(
        "ablation_unpinned.json",
        &serde_json::json!({ "rows": out }),
    );
}
