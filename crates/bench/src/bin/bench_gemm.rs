//! Raw GEMM shape sweep for the SIMD engine: the ten EDSR training shapes
//! plus square sizes, each timed through the blueprint engine exactly as
//! the conv path drives it (pack A once, stream B row panels).
//!
//! For the forward-conv body shape the sweep also times the implicit
//! im2col source ([`BSrc::Im2col`]) against a pre-materialized column
//! matrix, isolating the cost of virtualizing the patch gather into the
//! packer. Emits `results/BENCH_gemm.json` with GFLOP/s per shape and the
//! selected blueprint, so regressions in either the kernels or the
//! selector show up as a drop in this file.

#![forbid(unsafe_code)]
use std::time::Instant;

use dlsr_attr as dlsr;
use dlsr_tensor::matmul::{self, BSrc, Epilogue, Im2colView};
use dlsr_tensor::{init, scratch, tune};

const WARMUP: usize = 2;
const REPS: usize = 5;

#[dlsr::wall]
fn time_reps<F: FnMut()>(mut f: F) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..REPS {
        f();
    }
    t0.elapsed().as_secs_f64() / REPS as f64
}

fn bench_shape(m: usize, k: usize, n: usize) -> serde_json::Value {
    let a = init::uniform([m, k], -1.0, 1.0, 11);
    let b = init::uniform([k, n], -1.0, 1.0, 12);
    let mut c = vec![0.0f32; m * n];
    let bp = tune::select(m, k, n);
    let mut apack = scratch::take(matmul::packed_a_len(&bp, m, k));
    matmul::pack_a(&bp, a.data(), m, k, &mut apack);
    let secs = time_reps(|| {
        matmul::gemm(
            &bp,
            &apack,
            BSrc::Rows(b.data()),
            &mut c,
            m,
            k,
            n,
            Epilogue::None,
            false,
        );
    });
    let gflops = 2.0 * (m * k * n) as f64 / secs / 1e9;
    println!(
        "{m:>4}x{k:>4}x{n:>4}  {:>8.1} GFLOP/s  kernel={} kc={} nc={}",
        gflops,
        bp.kernel.executes_as().as_str(),
        bp.kc,
        bp.nc,
    );
    serde_json::json!({
        "m": m, "k": k, "n": n,
        "seconds": secs,
        "gflops": gflops,
        "kernel": bp.kernel.executes_as().as_str(),
        "kc": bp.kc,
        "nc": bp.nc,
    })
}

/// Forward-conv body shape through the virtual im2col source vs a
/// pre-materialized column matrix: measures the packing virtualization
/// overhead in isolation.
fn bench_implicit_im2col() -> serde_json::Value {
    let (c_in, h, w) = (64usize, 48usize, 48usize);
    let (kh, kw) = (3usize, 3usize);
    let (m, kdim, n) = (64usize, c_in * kh * kw, h * w);
    let img = init::uniform([c_in, h, w], -1.0, 1.0, 21);
    let wmat = init::uniform([m, kdim], -1.0, 1.0, 22);
    let bp = tune::select(m, kdim, n);
    let mut apack = scratch::take(matmul::packed_a_len(&bp, m, kdim));
    matmul::pack_a(&bp, wmat.data(), m, kdim, &mut apack);

    // materialize the column matrix once (same gather order as the view)
    let view = Im2colView::new(img.data(), (c_in, h, w), (kh, kw), 1, 1);
    let mut col = vec![0.0f32; kdim * n];
    let mut probe = vec![0.0f32; kdim * n];
    // recover col by multiplying the identity-free way: pack directly via
    // a 1-row A? Simpler: gather per element through conv reference
    // semantics below.
    for c in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (c * kh + ky) * kw + kx;
                for oy in 0..h {
                    for ox in 0..w {
                        let iy = (oy + ky) as isize - 1;
                        let ix = (ox + kx) as isize - 1;
                        col[row * n + oy * w + ox] =
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                img.data()[(c * h + iy as usize) * w + ix as usize]
                            } else {
                                0.0
                            };
                    }
                }
            }
        }
    }

    let mut c_out = vec![0.0f32; m * n];
    let implicit_s = time_reps(|| {
        matmul::gemm(
            &bp,
            &apack,
            BSrc::Im2col(view),
            &mut c_out,
            m,
            kdim,
            n,
            Epilogue::None,
            false,
        );
    });
    probe.copy_from_slice(&col);
    let materialized_s = time_reps(|| {
        matmul::gemm(
            &bp,
            &apack,
            BSrc::Rows(&probe),
            &mut c_out,
            m,
            kdim,
            n,
            Epilogue::None,
            false,
        );
    });
    let gf = |s: f64| 2.0 * (m * kdim * n) as f64 / s / 1e9;
    println!(
        "implicit im2col {m}x{kdim}x{n}: {:.1} GFLOP/s  (materialized col: {:.1})",
        gf(implicit_s),
        gf(materialized_s),
    );
    serde_json::json!({
        "m": m, "k": kdim, "n": n,
        "implicit_seconds": implicit_s,
        "implicit_gflops": gf(implicit_s),
        "materialized_seconds": materialized_s,
        "materialized_gflops": gf(materialized_s),
    })
}

fn main() {
    println!("GEMM shape sweep (pack A once, stream B):");
    let mut shapes: Vec<serde_json::Value> = Vec::new();
    for &(m, k, n) in &tune::EDSR_SHAPES {
        shapes.push(bench_shape(m, k, n));
    }
    for &s in &[64usize, 128, 256, 512] {
        shapes.push(bench_shape(s, s, s));
    }
    let implicit = bench_implicit_im2col();
    dlsr_bench::write_json(
        "BENCH_gemm.json",
        &serde_json::json!({
            "workload": {
                "warmup_reps": WARMUP,
                "timed_reps": REPS,
                "driver": "seq (batch-parallel posture of the conv path)",
            },
            "shapes": shapes,
            "implicit_im2col": implicit,
        }),
    );
}
