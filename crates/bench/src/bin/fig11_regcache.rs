//! **Fig 11** — Effect of the MVAPICH2-GDR registration cache on EDSR
//! training throughput (MPI vs MPI-Reg), plus the observed cache hit rate.
//! Paper: average +5.1 % throughput, 93 % hit rate.
//!
//! Run: `cargo run --release -p dlsr-bench --bin fig11_regcache`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{node_counts, steps, warmup, write_json, SEED};
use dlsr_net::ClusterTopology;

fn main() {
    let (w, tensors) = edsr_measured_workload();
    // the registration cache only matters across nodes — sweep ≥ 2 nodes
    let nodes: Vec<usize> = node_counts().into_iter().filter(|&n| n >= 2).collect();
    println!("== Fig 11: registration-cache effect (MPI vs MPI-Reg) ==\n");
    println!(
        "{:>6} {:>13} {:>13} {:>8} {:>9}",
        "GPUs", "MPI (img/s)", "+Reg (img/s)", "gain", "hit rate"
    );

    let mut gains = Vec::new();
    let mut rows = Vec::new();
    for &n in &nodes {
        let topo = ClusterTopology::lassen(n);
        let base = run_training(
            &topo,
            Scenario::MpiDefault,
            &w,
            &tensors,
            4,
            warmup(),
            steps(),
            SEED,
        );
        let reg = run_training(
            &topo,
            Scenario::MpiReg,
            &w,
            &tensors,
            4,
            warmup(),
            steps(),
            SEED,
        );
        let gain = (reg.images_per_sec / base.images_per_sec - 1.0) * 100.0;
        gains.push(gain);
        println!(
            "{:>6} {:>13.1} {:>13.1} {:>7.1}% {:>8.1}%",
            base.gpus,
            base.images_per_sec,
            reg.images_per_sec,
            gain,
            reg.regcache_hit_rate * 100.0
        );
        rows.push(serde_json::json!({
            "gpus": base.gpus,
            "mpi_img_s": base.images_per_sec,
            "mpi_reg_img_s": reg.images_per_sec,
            "gain_pct": gain,
            "hit_rate": reg.regcache_hit_rate,
            "regcache": {
                "hits": reg.regcache.hits,
                "misses": reg.regcache.misses,
                "evictions": reg.regcache.evictions,
            },
        }));
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    println!("\naverage throughput improvement: {avg:.1} % (paper: 5.1 %); the cache",);
    println!("hit rate reflects Horovod's persistent fusion buffers (paper: 93 %).");

    write_json(
        "fig11_results.json",
        &serde_json::json!({
            "figure": "11",
            "paper": { "avg_gain_pct": 5.1, "hit_rate": 0.93 },
            "measured": { "avg_gain_pct": avg, "rows": rows },
        }),
    );
}
