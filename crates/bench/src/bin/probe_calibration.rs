//! Internal calibration probe: prints the headline numbers the paper's
//! figures hinge on, at a few scales, for every scenario. Not one of the
//! figure harnesses — used to verify/tune simulator constants.

#![forbid(unsafe_code)]
use dlsr_cluster::{edsr_measured_workload, run_training, Scenario};
use dlsr_net::ClusterTopology;

fn main() {
    let (w, tensors) = edsr_measured_workload();
    let args: Vec<String> = std::env::args().collect();
    let nodes_list: Vec<usize> = if args.len() > 1 {
        args[1..]
            .iter()
            .map(|a| a.parse().expect("node count"))
            .collect()
    } else {
        vec![1, 8, 32, 128]
    };
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "GPUs", "scenario", "img/s", "eff", "step(ms)", "reghit"
    );
    for &nodes in &nodes_list {
        let topo = ClusterTopology::lassen(nodes);
        for sc in Scenario::ALL {
            let run = run_training(&topo, sc, &w, &tensors, 4, 2, 8, 99);
            println!(
                "{:>6} {:>10} {:>12.1} {:>10.3} {:>10.1} {:>10.2}",
                run.gpus,
                sc.label(),
                run.images_per_sec,
                run.efficiency,
                run.step_time * 1e3,
                run.regcache_hit_rate
            );
        }
    }
}
