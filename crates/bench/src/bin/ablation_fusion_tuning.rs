//! **Ablation** — the paper states (§II-D) that `HOROVOD_FUSION_THRESHOLD`
//! and `HOROVOD_CYCLE_TIME` were "carefully tuned at each scale to maximize
//! training throughput". This harness produces the tuning surface: EDSR
//! throughput under MPI-Opt across a threshold × cycle-time grid at a
//! chosen scale, plus the resulting fused-message sizes.
//!
//! Run: `cargo run --release -p dlsr-bench --bin ablation_fusion_tuning [nodes]`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{write_json, SEED};
use dlsr_net::ClusterTopology;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(nodes);
    println!(
        "== fusion tuning surface: EDSR on {} GPUs (MPI-Opt) ==\n",
        topo.total_gpus()
    );

    let thresholds = [8u64 << 20, 16 << 20, 32 << 20, 48 << 20, 64 << 20];
    let cycles = [3.5e-3, 20e-3, 50e-3, 80e-3, 120e-3];

    print!("{:>14}", "thr \\ cycle");
    for c in cycles {
        print!("{:>10.1}ms", c * 1e3);
    }
    println!();

    let mut best = (0.0f64, 0u64, 0.0f64);
    let mut grid = Vec::new();
    for &t in &thresholds {
        print!("{:>12}MB", t >> 20);
        for &c in &cycles {
            let hcfg = HorovodConfig::builder()
                .fusion_threshold(t)
                .cycle_time(c)
                .backend(Backend::Mpi)
                .build();
            let run =
                run_training_tuned(&topo, Scenario::MpiOpt, &w, &tensors, 4, 1, 4, SEED, hcfg);
            print!("{:>12.1}", run.images_per_sec);
            if run.images_per_sec > best.0 {
                best = (run.images_per_sec, t, c);
            }
            grid.push(serde_json::json!({
                "threshold_mb": t >> 20,
                "cycle_ms": c * 1e3,
                "img_s": run.images_per_sec,
            }));
        }
        println!();
    }
    println!(
        "\nbest: {:.1} img/s at threshold {} MB, cycle {:.1} ms",
        best.0,
        best.1 >> 20,
        best.2 * 1e3
    );
    println!("small thresholds/cycles fragment the gradient set into many small");
    println!("reductions (per-round coordination dominates); oversized cycles add");
    println!("idle latency — the trade-off the paper tuned per scale.");

    write_json(
        "ablation_fusion_tuning.json",
        &serde_json::json!({ "nodes": nodes, "grid": grid }),
    );
}
