//! Measured GEMM autotuner — the one place blueprint selection is allowed
//! to look at a wall clock.
//!
//! The runtime selector in `dlsr_tensor::tune` is a pure function of the
//! problem shape, so training digests can never depend on machine load.
//! This binary does the measuring on its behalf: for each shape it times
//! every candidate blueprint (`tune::candidates` keeps `kc` pinned to the
//! heuristic value, so every candidate produces bit-identical results and
//! the winner only changes *speed*, never the digest), installs the
//! winner, and writes the tune-cache file the runtime loads via
//! `DLSR_TUNE_CACHE`.
//!
//! Usage: `cargo run --release -p dlsr-bench --bin tune_gemm [-- out.tune]`
//! Tunes the EDSR training shapes; the output path defaults to
//! `results/gemm.tune`.

#![forbid(unsafe_code)]
use std::time::Instant;

use dlsr_attr as dlsr;
use dlsr_tensor::matmul::{self, BSrc, Epilogue};
use dlsr_tensor::tune::{self, Blueprint};
use dlsr_tensor::{init, scratch};

const REPS: usize = 3;

#[dlsr::wall]
fn time_candidate(bp: &Blueprint, m: usize, k: usize, n: usize) -> f64 {
    let a = init::uniform([m, k], -1.0, 1.0, 5);
    let b = init::uniform([k, n], -1.0, 1.0, 6);
    let mut c = vec![0.0f32; m * n];
    let mut apack = scratch::take(matmul::packed_a_len(bp, m, k));
    matmul::pack_a(bp, a.data(), m, k, &mut apack);
    // one warm-up, then best-of-REPS (min is robust to scheduler noise)
    let run = |c: &mut [f32]| {
        matmul::gemm(
            bp,
            &apack,
            BSrc::Rows(b.data()),
            c,
            m,
            k,
            n,
            Epilogue::None,
            false,
        );
    };
    run(&mut c);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        run(&mut c);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| String::from("results/gemm.tune"));
    for &(m, k, n) in &tune::EDSR_SHAPES {
        let mut best: Option<(f64, Blueprint)> = None;
        for bp in tune::candidates(m, k, n) {
            let secs = time_candidate(&bp, m, k, n);
            if best.is_none_or(|(b, _)| secs < b) {
                best = Some((secs, bp));
            }
        }
        let (secs, bp) = best.expect("at least the scalar candidate exists");
        tune::install(m, k, n, bp);
        println!(
            "{m}x{k}x{n}: {} kc={} nc={} ({:.1} GFLOP/s)",
            bp.kernel.as_str(),
            bp.kc,
            bp.nc,
            2.0 * (m * k * n) as f64 / secs / 1e9,
        );
    }
    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create tune-cache directory");
    }
    tune::write_cache(path).expect("write tune cache");
    println!("[tune cache written to {out}]");
}
