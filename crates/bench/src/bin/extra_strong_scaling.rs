//! **Extra** — strong scaling. The paper's sweep is weak scaling (batch 4
//! per GPU, global batch grows with the machine). The complementary
//! question a practitioner asks is: *for a fixed global batch, how fast can
//! I finish?* With the global batch pinned, per-GPU batches shrink with
//! scale, occupancy falls (the Fig 9 curve read backwards), and efficiency
//! collapses much sooner than in the weak-scaling figures.
//!
//! Run: `cargo run --release -p dlsr-bench --bin extra_strong_scaling`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{bar, steps, warmup, write_json, SEED};
use dlsr_net::ClusterTopology;

fn main() {
    let global_batch = 256usize;
    let (w, tensors) = edsr_measured_workload();
    println!("== strong scaling: global batch fixed at {global_batch} ==\n");
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>12}",
        "GPUs", "batch/GPU", "img/s", "eff", "step (ms)"
    );
    let mut rows = Vec::new();
    let mut best = 0.0f64;
    let mut runs = Vec::new();
    for &nodes in &[4usize, 8, 16, 32, 64] {
        let topo = ClusterTopology::lassen(nodes);
        let world = topo.total_gpus();
        let per_gpu = global_batch / world;
        if per_gpu == 0 {
            println!("{world:>6} {:>10} — fewer samples than GPUs; stopping", 0);
            break;
        }
        let run = run_training(
            &topo,
            Scenario::MpiOpt,
            &w,
            &tensors,
            per_gpu,
            warmup(),
            steps(),
            SEED,
        );
        best = best.max(run.images_per_sec);
        runs.push((world, per_gpu, run));
    }
    for (world, per_gpu, run) in &runs {
        println!(
            "{world:>6} {per_gpu:>10} {:>12.1} {:>9.1}% {:>12.1}   {}",
            run.images_per_sec,
            run.efficiency * 100.0,
            run.step_time * 1e3,
            bar(run.images_per_sec, best, 28)
        );
        rows.push(serde_json::json!({
            "gpus": world,
            "batch_per_gpu": per_gpu,
            "img_s": run.images_per_sec,
            "efficiency": run.efficiency,
        }));
    }
    println!("\nstrong scaling trades occupancy for latency: past the point where");
    println!("per-GPU batches stop amortizing kernel overheads, adding GPUs mostly");
    println!("adds communication — the regime weak scaling (Figs 10–13) avoids by");
    println!("growing the global batch with the machine.");

    write_json(
        "extra_strong_scaling.json",
        &serde_json::json!({ "global_batch": global_batch, "rows": rows }),
    );
}
