//! **Fig 10** — Default distributed EDSR training performance for Horovod
//! built against MVAPICH2-GDR (the broken `CUDA_VISIBLE_DEVICES`-pinned
//! configuration) compared with NCCL, 4 → 512 GPUs on Lassen.
//!
//! Run: `cargo run --release -p dlsr-bench --bin fig10_default_scaling`
//! (set `DLSR_NODES="1,2,4"` for a quick pass)

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{bar, node_counts, steps, warmup, write_json, SEED};

fn main() {
    let (w, tensors) = edsr_measured_workload();
    let nodes = node_counts();
    println!("== Fig 10: default EDSR scaling, MVAPICH2-GDR (default) vs NCCL ==\n");

    let mpi = scaling_sweep(
        &nodes,
        Scenario::MpiDefault,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );
    let nccl = scaling_sweep(
        &nodes,
        Scenario::Nccl,
        &w,
        &tensors,
        4,
        warmup(),
        steps(),
        SEED,
    );

    let max = nccl
        .iter()
        .chain(mpi.iter())
        .map(|p| p.images_per_sec)
        .fold(0.0, f64::max);
    println!("{:>6} {:>14} {:>14}", "GPUs", "MPI (img/s)", "NCCL (img/s)");
    for (m, n) in mpi.iter().zip(nccl.iter()) {
        println!(
            "{:>6} {:>14.1} {:>14.1}   MPI  {}",
            m.gpus,
            m.images_per_sec,
            n.images_per_sec,
            bar(m.images_per_sec, max, 34)
        );
        println!("{:>51}NCCL {}", "", bar(n.images_per_sec, max, 34));
    }
    let last = mpi.last().unwrap();
    println!(
        "\nat {} GPUs, default MPI reaches only {:.1} % scaling efficiency — the",
        last.gpus,
        last.efficiency * 100.0
    );
    println!("degradation the paper traces to the CUDA IPC conflict (§III-C).");

    write_json(
        "fig10_results.json",
        &serde_json::json!({
            "figure": "10",
            "mpi_default": mpi.iter().map(|p| serde_json::json!({
                "gpus": p.gpus, "img_s": p.images_per_sec, "efficiency": p.efficiency
            })).collect::<Vec<_>>(),
            "nccl": nccl.iter().map(|p| serde_json::json!({
                "gpus": p.gpus, "img_s": p.images_per_sec, "efficiency": p.efficiency
            })).collect::<Vec<_>>(),
        }),
    );
}
