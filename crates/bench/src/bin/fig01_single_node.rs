//! **Fig 1** — Single-node training performance for classification
//! (ResNet-50) and super-resolution (EDSR) on one V100.
//!
//! Paper anchors: ResNet-50 ≈ 360 img/s (batch 64 @ 224²),
//! EDSR ≈ 10.3 img/s (batch 4, the paper-measured configuration).
//!
//! Run: `cargo run --release -p dlsr-bench --bin fig01_single_node`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{bar, write_json};

fn main() {
    let model = KernelCostModel::new(GpuSpec::v100());
    let (edsr, _) = edsr_measured_workload();
    let resnet = resnet50_workload();

    let t_edsr = model.throughput(&edsr, 4, 1).expect("EDSR batch 4 fits");
    let t_resnet = model
        .throughput(&resnet, 64, 1)
        .expect("ResNet batch 64 fits");
    let mem_edsr = model.memory_required(&edsr, 4, 1) as f64 / (1 << 30) as f64;
    let mem_resnet = model.memory_required(&resnet, 64, 1) as f64 / (1 << 30) as f64;

    println!("== Fig 1: single-V100 training throughput ==\n");
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "model", "batch", "img/s", "mem (GiB)"
    );
    println!(
        "{:<28} {:>10} {:>12.1} {:>10.1}   {}",
        "ResNet-50 @224",
        64,
        t_resnet,
        mem_resnet,
        bar(t_resnet, t_resnet, 40)
    );
    println!(
        "{:<28} {:>10} {:>12.1} {:>10.1}   {}",
        "EDSR (B32,F256,x2) @48 LR",
        4,
        t_edsr,
        mem_edsr,
        bar(t_edsr, t_resnet, 40)
    );
    println!(
        "\nratio: {:.1}× — the paper's motivation: SR training is dramatically",
        t_resnet / t_edsr
    );
    println!("more expensive per image than classification (paper: 360 vs 10.3 img/s).");

    write_json(
        "fig01_results.json",
        &serde_json::json!({
            "figure": "1",
            "paper": { "resnet50_img_s": 360.0, "edsr_img_s": 10.3 },
            "measured": { "resnet50_img_s": t_resnet, "edsr_img_s": t_edsr },
        }),
    );
}
