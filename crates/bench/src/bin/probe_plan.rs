//! Internal probe: prints the fusion schedule for a scenario at a scale.

#![forbid(unsafe_code)]
use dlsr_cluster::{edsr_measured_workload, Scenario, SimTrainer};
use dlsr_net::ClusterTopology;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).map(|a| a.parse().unwrap()).unwrap_or(1);
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(nodes);
    for sc in Scenario::ALL {
        let tr = SimTrainer::new(w.clone(), tensors.clone(), 4, sc, &topo, 1).unwrap();
        println!("-- {} ({} nodes) --", sc.label(), nodes);
        for sg in tr.plan() {
            println!(
                "  launch {:>7.1} ms  {:>6.1} MB  ({} tensors)",
                sg.launch_offset * 1e3,
                sg.group.bytes as f64 / (1 << 20) as f64,
                sg.group.indices.len()
            );
        }
    }
}
