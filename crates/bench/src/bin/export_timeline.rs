//! Export a `HOROVOD_TIMELINE`-style Chrome trace of a few simulated EDSR
//! training steps (open `results/timeline_*.json` in `chrome://tracing` or
//! <https://ui.perfetto.dev>) — the visualization real Horovod users debug
//! overlap with.
//!
//! The events come from the cross-layer trace collector (negotiate,
//! per-group allreduce, fwd/bwd compute, wire transfers), exported through
//! the shared `dlsr_bench::traced_training_run` path.
//!
//! Run: `cargo run --release -p dlsr-bench --bin export_timeline [nodes]`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{traced_training_run, SEED};
use dlsr_net::ClusterTopology;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let topo = ClusterTopology::lassen(nodes);
    std::fs::create_dir_all("results").expect("results dir");
    for sc in [Scenario::MpiDefault, Scenario::MpiOpt] {
        let (run, report) = traced_training_run(&topo, sc, 4, 1, 3, SEED);
        let tl = dlsr::trace::to_timeline(&run.trace);
        let path = format!(
            "results/timeline_{}_{}gpus.json",
            sc.label().to_lowercase().replace('-', "_"),
            run.gpus
        );
        std::fs::write(&path, tl.to_chrome_trace()).expect("write trace");
        println!(
            "{}: {} events, allreduce busy {:.1} ms, compute {:.1} ms -> {path}",
            sc.label(),
            tl.events().len(),
            tl.category_seconds(dlsr::trace::cat::ALLREDUCE) * 1e3,
            tl.category_seconds(dlsr::trace::cat::COMPUTE) * 1e3,
        );
        print!("{}", report.render());
        println!();
    }
    println!("open the files in chrome://tracing or https://ui.perfetto.dev");
}
