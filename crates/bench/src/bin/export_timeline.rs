//! Export a `HOROVOD_TIMELINE`-style Chrome trace of a few simulated EDSR
//! training steps (open `results/timeline_*.json` in `chrome://tracing` or
//! <https://ui.perfetto.dev>) — the visualization real Horovod users debug
//! overlap with.
//!
//! Run: `cargo run --release -p dlsr-bench --bin export_timeline [nodes]`

use dlsr::prelude::*;
use dlsr_bench::SEED;
use dlsr_net::ClusterTopology;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(nodes);
    std::fs::create_dir_all("results").expect("results dir");
    for sc in [Scenario::MpiDefault, Scenario::MpiOpt] {
        let run = run_training(&topo, sc, &w, &tensors, 4, 1, 3, SEED);
        let path = format!(
            "results/timeline_{}_{}gpus.json",
            sc.label().to_lowercase().replace('-', "_"),
            run.gpus
        );
        std::fs::write(&path, run.timeline.to_chrome_trace()).expect("write trace");
        println!(
            "{}: {} events, allreduce busy {:.1} ms, compute {:.1} ms -> {path}",
            sc.label(),
            run.timeline.events().len(),
            run.timeline.category_seconds("allreduce") * 1e3,
            run.timeline.category_seconds("compute") * 1e3,
        );
    }
    println!("\nopen the files in chrome://tracing or https://ui.perfetto.dev");
}
