//! **Fig 14** — hvprof allreduce profile for 100 training steps of EDSR on
//! 4 GPUs, default MPI vs MPI-Opt, by message-size bin.
//!
//! Run: `cargo run --release -p dlsr-bench --bin fig14_hvprof`

#![forbid(unsafe_code)]
use dlsr::prelude::*;
use dlsr_bench::{bar, write_json, SEED};
use dlsr_hvprof::BINS;
use dlsr_net::ClusterTopology;

fn main() {
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(1); // 4 GPUs, as in §III-B
    let steps = 100;
    println!("== Fig 14: hvprof allreduce profile, {steps} steps of EDSR on 4 GPUs ==\n");

    let d = run_training(&topo, Scenario::MpiDefault, &w, &tensors, 4, 2, steps, SEED);
    let o = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 2, steps, SEED);

    let db = d.profile.bin_seconds(Collective::Allreduce);
    let ob = o.profile.bin_seconds(Collective::Allreduce);
    let max = db.iter().chain(ob.iter()).copied().fold(0.0, f64::max);

    let mut series = Vec::new();
    for (i, &(name, _, _)) in BINS.iter().enumerate() {
        if db[i] == 0.0 && ob[i] == 0.0 {
            continue;
        }
        println!(
            "{name:>16}  default {:>8.1} ms  {}",
            db[i] * 1e3,
            bar(db[i], max, 32)
        );
        println!(
            "{:>16}  MPI-Opt {:>8.1} ms  {}",
            "",
            ob[i] * 1e3,
            bar(ob[i], max, 32)
        );
        series.push(serde_json::json!({
            "bin": name, "default_ms": db[i] * 1e3, "optimized_ms": ob[i] * 1e3
        }));
    }
    println!(
        "\ntotal: default {:.1} ms vs MPI-Opt {:.1} ms over {steps} steps",
        d.profile.total_seconds(Collective::Allreduce) * 1e3,
        o.profile.total_seconds(Collective::Allreduce) * 1e3
    );
    println!("(see table1_allreduce for the Table I presentation of this run)");

    write_json(
        "fig14_results.json",
        &serde_json::json!({ "figure": "14", "series": series }),
    );
}
