//! **Ablation** — why MVAPICH2-GDR's hierarchical (two-level) allreduce is
//! the right design for dense GPU nodes: virtual-time comparison of ring,
//! recursive doubling and two-level across message sizes and scales.
//!
//! Run: `cargo run --release -p dlsr-bench --bin ablation_allreduce_algos`

#![forbid(unsafe_code)]
use dlsr::mpi::collectives::{synthetic, AllreduceAlgorithm};
use dlsr::prelude::*;
use dlsr_bench::write_json;
use dlsr_net::ClusterTopology;

fn time_allreduce(topo: &ClusterTopology, elems: usize, algo: AllreduceAlgorithm) -> f64 {
    MpiWorld::run(topo, MpiConfig::mpi_opt(), move |c| {
        // warm up registrations, then measure a steady-state reduction
        synthetic::allreduce_elems(c, elems, 1, algo);
        let t0 = c.now();
        synthetic::allreduce_elems(c, elems, 1, algo);
        c.now() - t0
    })
    .clocks
    .iter()
    .copied()
    .fold(0.0, f64::max)
}

fn main() {
    println!("== allreduce algorithm ablation (virtual ms, steady state) ==\n");
    let algos = [
        ("ring", AllreduceAlgorithm::Ring),
        ("recursive-dbl", AllreduceAlgorithm::RecursiveDoubling),
        ("two-level", AllreduceAlgorithm::TwoLevel),
    ];
    let mut out = Vec::new();
    for &nodes in &[1usize, 4, 16, 64] {
        let topo = ClusterTopology::lassen(nodes);
        println!("-- {} GPUs --", topo.total_gpus());
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            "size", algos[0].0, algos[1].0, algos[2].0
        );
        for &elems in &[4_096usize, 262_144, 12_000_000] {
            let times: Vec<f64> = algos
                .iter()
                .map(|&(_, a)| time_allreduce(&topo, elems, a))
                .collect();
            println!(
                "{:>8}KB {:>12.3}ms {:>12.3}ms {:>12.3}ms{}",
                elems * 4 / 1024,
                times[0] * 1e3,
                times[1] * 1e3,
                times[2] * 1e3,
                {
                    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
                    let winner = algos[times.iter().position(|&t| t == min).unwrap()].0;
                    format!("   <- {winner}")
                }
            );
            out.push(serde_json::json!({
                "gpus": topo.total_gpus(),
                "bytes": elems * 4,
                "ring_ms": times[0] * 1e3,
                "recursive_doubling_ms": times[1] * 1e3,
                "two_level_ms": times[2] * 1e3,
            }));
        }
        println!();
    }
    println!("recursive doubling wins latency-bound (small) reductions; the flat");
    println!("ring is bandwidth-optimal for large buffers at moderate scale (which");
    println!("is why NCCL uses it); the hierarchical two-level design pays off at");
    println!("extreme rank counts, where the ring's 2(p−1) per-step latencies and");
    println!("per-chunk costs dominate — the regime where MPI-Opt overtakes NCCL");
    println!("in Fig 12.");

    write_json(
        "ablation_allreduce_algos.json",
        &serde_json::json!({ "rows": out }),
    );
}
