//! `dlsr-bench` — harness binaries regenerating every table and figure of
//! the paper (see `src/bin/`), plus criterion microbenches (`benches/`).
//!
//! Shared output helpers live here.

#![forbid(unsafe_code)]
pub mod legacy;
pub mod packed;

use std::io::Write;

use dlsr::trace::report::StepReport;
use dlsr_cluster::{edsr_measured_workload, run_training, Scenario, TrainRun};
use dlsr_net::ClusterTopology;

/// Run one costs-only training measurement with the cross-layer trace
/// collector on, and build the step-time breakdown from the recorded
/// spans and counters. The shared timing path for every harness that
/// reports per-phase times — no harness keeps its own stopwatch code.
pub fn traced_training_run(
    topo: &ClusterTopology,
    scenario: Scenario,
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
) -> (TrainRun, StepReport) {
    let (w, tensors) = edsr_measured_workload();
    dlsr::trace::set_enabled(true);
    dlsr::trace::reset();
    let run = run_training(topo, scenario, &w, &tensors, batch, warmup, steps, seed);
    dlsr::trace::set_enabled(false);
    let counters = dlsr::trace::counters_snapshot();
    let mut report = StepReport::build(&run.trace, &counters).with_context(
        scenario.label(),
        run.gpus,
        steps,
        run.step_time,
    );
    report.set_regcache(
        run.regcache.hits,
        run.regcache.misses,
        run.regcache.evictions,
    );
    report.attach_critical_path(dlsr::trace::analyze::critical_path(&run.trace, steps));
    dlsr::trace::reset();
    (run, report)
}

/// Render a simple ASCII bar for terminal figures.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "█".repeat(n.min(width))
}

/// Write a JSON results file under `results/` so EXPERIMENTS.md numbers
/// are machine-checkable; prints the path.
pub fn write_json(name: &str, value: &serde_json::Value) {
    std::fs::create_dir_all("results").expect("create results dir");
    let path = format!("results/{name}");
    let mut f = std::fs::File::create(&path).expect("create results file");
    f.write_all(
        serde_json::to_string_pretty(value)
            .expect("serialize")
            .as_bytes(),
    )
    .expect("write results file");
    println!("[results written to {path}]");
}

/// Node counts for scaling sweeps: the paper's 1→128 Lassen nodes
/// (4→512 GPUs). Override with `DLSR_NODES="1,2,4"` for quick runs.
pub fn node_counts() -> Vec<usize> {
    match std::env::var("DLSR_NODES") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("DLSR_NODES: comma-separated node counts")
            })
            .collect(),
        Err(_) => vec![1, 2, 4, 8, 16, 32, 64, 128],
    }
}

/// Measured steps per scaling point (override with `DLSR_STEPS`).
pub fn steps() -> usize {
    std::env::var("DLSR_STEPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

/// Warmup steps per scaling point.
pub fn warmup() -> usize {
    2
}

/// The fixed seed used by every figure harness (results are deterministic).
pub const SEED: u64 = 2021;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(10.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn default_node_counts_reach_512_gpus() {
        let n = node_counts();
        assert_eq!(*n.last().unwrap() * 4, 512);
    }
}
