//! Sequential vs overlapped real 2-node EDSR training step.
//!
//! Two measurements, one file:
//!
//! - a criterion group `overlap` timing the *host* cost of the two paths
//!   (the hook-driven engine must not make the simulation itself slower),
//! - a traced virtual-time comparison — step time, exposed communication
//!   and overlap ratio per mode — written to `BENCH_overlap.json` at the
//!   repo root so the perf trajectory has before/after data points.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use dlsr_cluster::{train_real, RealTrainConfig};
use dlsr_mpi::MpiConfig;
use dlsr_net::ClusterTopology;

const NODES: usize = 2; // 8 ranks
const STEPS: usize = 3;

fn cfg(overlap: bool) -> RealTrainConfig {
    RealTrainConfig::builder()
        .steps(STEPS)
        .global_batch(8)
        .overlap(overlap)
        .build()
}

fn bench_overlap(c: &mut Criterion) {
    let topo = ClusterTopology::lassen(NODES);
    let mut group = c.benchmark_group("overlap");
    group.sample_size(10);
    for (label, overlap) in [("sequential", false), ("overlapped", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let res = train_real(&topo, MpiConfig::mpi_opt(), &cfg(overlap));
                black_box(res.makespan)
            })
        });
    }
    group.finish();
}

/// Traced run of one mode: (virtual step time, mean comm s, mean exposed
/// comm s per rank).
fn traced(overlap: bool) -> (f64, f64, f64) {
    let topo = ClusterTopology::lassen(NODES);
    dlsr::trace::set_enabled(true);
    dlsr::trace::reset();
    let res = train_real(&topo, MpiConfig::mpi_opt(), &cfg(overlap));
    dlsr::trace::set_enabled(false);
    let counters = dlsr::trace::counters_snapshot();
    dlsr::trace::reset();
    let report = dlsr::trace::report::StepReport::build(&res.trace, &counters);
    let n = report.ranks.len() as f64;
    let comm = report.ranks.iter().map(|r| r.comm_s).sum::<f64>() / n;
    let exposed = report.ranks.iter().map(|r| r.exposed_comm_s).sum::<f64>() / n;
    (res.makespan / STEPS as f64, comm, exposed)
}

fn write_overlap_results() {
    let (seq_step, seq_comm, seq_exposed) = traced(false);
    let (ovl_step, ovl_comm, ovl_exposed) = traced(true);
    let mode = |step: f64, comm: f64, exposed: f64| {
        serde_json::json!({
            "step_time_s": step,
            "images_per_sec": 8.0 / step,
            "comm_s": comm,
            "exposed_comm_s": exposed,
            "overlap_ratio": if comm > 0.0 { 1.0 - exposed / comm } else { 0.0 },
        })
    };
    let value = serde_json::json!({
        "workload": {
            "model": "EDSR(tiny)",
            "nodes": NODES,
            "gpus": NODES * 4,
            "global_batch": 8,
            "steps": STEPS,
            "scenario": "mpi-opt",
        },
        "sequential": mode(seq_step, seq_comm, seq_exposed),
        "overlapped": mode(ovl_step, ovl_comm, ovl_exposed),
        "exposed_drop_frac": if seq_exposed > 0.0 { 1.0 - ovl_exposed / seq_exposed } else { 0.0 },
        "step_speedup": seq_step / ovl_step,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overlap.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&value).expect("serialize"),
    )
    .expect("write BENCH_overlap.json");
    println!("[results written to {path}]");
    println!(
        "virtual step: {:.3} ms sequential -> {:.3} ms overlapped; exposed comm {:.3} -> {:.3} ms",
        seq_step * 1e3,
        ovl_step * 1e3,
        seq_exposed * 1e3,
        ovl_exposed * 1e3
    );
}

criterion_group!(benches, bench_overlap);

fn main() {
    write_overlap_results();
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
}
