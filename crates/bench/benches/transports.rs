//! Criterion benches of the transport-model hot path (path selection +
//! cost evaluation runs once per message in every simulated collective)
//! and of the bicubic resampling kernels used by the data pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlsr_net::{TransportModel, TransportPath};
use dlsr_tensor::{init, resize};

fn bench_path_selection(c: &mut Criterion) {
    let t = TransportModel::lassen();
    let mut group = c.benchmark_group("transport_model");
    group.bench_function("path_plus_cost", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &bytes in &[1u64 << 10, 1 << 20, 32 << 20] {
                for &(same_node, ipc) in &[(true, true), (true, false), (false, false)] {
                    let p = t.path(false, same_node, ipc, bytes);
                    acc += t.transfer_time(black_box(p), black_box(bytes));
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("pin_time", |b| {
        b.iter(|| black_box(t.pin_time(black_box(48 << 20))))
    });
    group.bench_function("nccl_transfer", |b| {
        b.iter(|| {
            black_box(t.transfer_time_nccl(black_box(TransportPath::IbRdma), black_box(1 << 20)))
        })
    });
    group.finish();
}

fn bench_bicubic(c: &mut Criterion) {
    let mut group = c.benchmark_group("bicubic");
    for &hw in &[64usize, 128] {
        let img = init::uniform([1, 3, hw, hw], 0.0, 1.0, 1);
        group.bench_with_input(BenchmarkId::new("downsample_x2", hw), &img, |b, img| {
            b.iter(|| resize::bicubic_downsample(black_box(img), 2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("upsample_x2", hw), &img, |b, img| {
            b.iter(|| resize::bicubic_upsample(black_box(img), 2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path_selection, bench_bicubic);
criterion_main!(benches);
