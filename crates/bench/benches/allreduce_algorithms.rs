//! Criterion benches of the allreduce algorithm implementations (real
//! payloads, 8 simulated ranks): the ablation behind choosing the
//! hierarchical two-level design for dense GPU nodes. Measures *host* time
//! of the simulation — i.e. the implementation cost of each algorithm's
//! message schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlsr_mpi::collectives::{Allreduce, AllreduceAlgorithm};
use dlsr_mpi::{MpiConfig, MpiWorld};
use dlsr_net::ClusterTopology;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_8_ranks");
    group.sample_size(20);
    for &elems in &[4_096usize, 262_144] {
        for algo in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), elems * 4),
                &elems,
                |b, &elems| {
                    let topo = ClusterTopology::lassen(2);
                    b.iter(|| {
                        MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |comm| {
                            let mut buf = vec![comm.rank() as f32; elems];
                            Allreduce::new(&mut buf).buf_id(1).algo(algo).run(comm);
                            black_box(buf[0])
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_synthetic_vs_real(c: &mut Criterion) {
    // The costs-only path must be far cheaper in host time — that is its
    // reason to exist for 512-rank sweeps.
    let mut group = c.benchmark_group("synthetic_vs_real_payloads");
    group.sample_size(15);
    let elems = 1_000_000usize;
    group.bench_function("real_4MB", |b| {
        let topo = ClusterTopology::lassen(2);
        b.iter(|| {
            MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |comm| {
                let mut buf = vec![1.0f32; elems];
                Allreduce::new(&mut buf)
                    .buf_id(1)
                    .algo(AllreduceAlgorithm::TwoLevel)
                    .run(comm);
                black_box(buf[0])
            })
        })
    });
    group.bench_function("synthetic_4MB", |b| {
        let topo = ClusterTopology::lassen(2);
        b.iter(|| {
            MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |comm| {
                dlsr_mpi::collectives::synthetic::allreduce_elems(
                    comm,
                    elems,
                    1,
                    AllreduceAlgorithm::TwoLevel,
                );
                black_box(comm.now())
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_synthetic_vs_real);
criterion_main!(benches);
