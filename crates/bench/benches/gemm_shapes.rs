//! Criterion shape sweep over the SIMD GEMM engine.
//!
//! Drives `dlsr_tensor::matmul::gemm` exactly as the conv path does (pack
//! A once, stream B) across the EDSR training shapes and a square ladder,
//! plus the forward-conv body shape through the virtual im2col source.
//! CI runs this as a smoke test (`--test`) so a kernel or selector
//! regression that breaks the bench harness is caught by the suite even
//! when no timing run happens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlsr_tensor::matmul::{self, BSrc, Epilogue, Im2colView};
use dlsr_tensor::{init, scratch, tune};

/// The subset of EDSR shapes worth tracking continuously (head, body and
/// the two body gradients), plus squares bracketing the cache hierarchy.
const SHAPES: [(usize, usize, usize); 6] = [
    (64, 27, 2304),
    (64, 576, 2304),
    (64, 2304, 576),
    (576, 64, 2304),
    (128, 128, 128),
    (512, 512, 512),
];

fn bench_gemm_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_shapes");
    group.sample_size(10);
    for &(m, k, n) in &SHAPES {
        let a = init::uniform([m, k], -1.0, 1.0, 1);
        let b_mat = init::uniform([k, n], -1.0, 1.0, 2);
        let mut out = vec![0.0f32; m * n];
        let bp = tune::select(m, k, n);
        let mut apack = scratch::take(matmul::packed_a_len(&bp, m, k));
        matmul::pack_a(&bp, a.data(), m, k, &mut apack);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    matmul::gemm(
                        &bp,
                        black_box(&apack),
                        BSrc::Rows(black_box(b_mat.data())),
                        &mut out,
                        m,
                        k,
                        n,
                        Epilogue::None,
                        false,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Forward conv body GEMM through the virtual im2col packer — tracks the
/// implicit-GEMM overhead relative to the plain-rows numbers above.
fn bench_implicit_im2col(c: &mut Criterion) {
    let (c_in, h, w) = (64usize, 48usize, 48usize);
    let (m, kdim, n) = (64usize, c_in * 9, h * w);
    let img = init::uniform([c_in, h, w], -1.0, 1.0, 3);
    let wmat = init::uniform([m, kdim], -1.0, 1.0, 4);
    let bp = tune::select(m, kdim, n);
    let mut apack = scratch::take(matmul::packed_a_len(&bp, m, kdim));
    matmul::pack_a(&bp, wmat.data(), m, kdim, &mut apack);
    let mut out = vec![0.0f32; m * n];

    let mut group = c.benchmark_group("gemm_implicit_im2col");
    group.sample_size(10);
    group.bench_function("64x576x2304_conv_body", |bch| {
        bch.iter(|| {
            let view = Im2colView::new(black_box(img.data()), (c_in, h, w), (3, 3), 1, 1);
            matmul::gemm(
                &bp,
                &apack,
                BSrc::Im2col(view),
                &mut out,
                m,
                kdim,
                n,
                Epilogue::None,
                false,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gemm_shapes, bench_implicit_im2col);
criterion_main!(benches);
