//! Criterion microbenches for the convolution kernels — the compute
//! substrate every model in the workspace runs on.
//!
//! Three ablations:
//! - production im2col+GEMM vs the direct reference (sanity scale),
//! - production engine vs the pre-engine `dlsr_bench::legacy` kernels on
//!   EDSR-shaped workloads (the before/after the engine was built for),
//! - raw packed GEMM vs the naive triple loop on an im2col-shaped matmul.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlsr_bench::legacy;
use dlsr_tensor::conv::{conv2d, conv2d_backward, conv2d_reference, Conv2dParams};
use dlsr_tensor::{init, matmul};

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward");
    for &(ch, hw) in &[(16usize, 24usize), (32, 24), (64, 12)] {
        let x = init::uniform([2, ch, hw, hw], -1.0, 1.0, 1);
        let w = init::uniform([ch, ch, 3, 3], -1.0, 1.0, 2);
        let p = Conv2dParams::same(3);
        group.bench_with_input(
            BenchmarkId::new("im2col_gemm", format!("c{ch}_s{hw}")),
            &(&x, &w),
            |b, (x, w)| b.iter(|| conv2d(black_box(x), black_box(w), None, p).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("direct_reference", format!("c{ch}_s{hw}")),
            &(&x, &w),
            |b, (x, w)| b.iter(|| conv2d_reference(black_box(x), black_box(w), None, p).unwrap()),
        );
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_backward");
    for &ch in &[16usize, 32] {
        let x = init::uniform([2, ch, 16, 16], -1.0, 1.0, 1);
        let w = init::uniform([ch, ch, 3, 3], -1.0, 1.0, 2);
        let p = Conv2dParams::same(3);
        let go = init::uniform([2, ch, 16, 16], -1.0, 1.0, 3);
        group.bench_with_input(BenchmarkId::from_parameter(ch), &ch, |b, _| {
            b.iter(|| conv2d_backward(black_box(&x), black_box(&w), black_box(&go), p).unwrap())
        });
    }
    group.finish();
}

/// EDSR body shapes: F feature maps on 48×48 LR patches, batch 4 — the
/// exact per-layer workload of the paper's training loop. This is the
/// acceptance benchmark for the packed-GEMM engine: `engine` vs `legacy`
/// on the same tensors.
fn bench_edsr_shapes(c: &mut Criterion) {
    let p = Conv2dParams::same(3);

    let mut group = c.benchmark_group("conv2d_edsr_f64_b4_48x48");
    let x = init::uniform([4, 64, 48, 48], -1.0, 1.0, 1);
    let w = init::uniform([64, 64, 3, 3], -1.0, 1.0, 2);
    let go = init::uniform([4, 64, 48, 48], -1.0, 1.0, 3);
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("forward", "engine"), |b| {
        b.iter(|| conv2d(black_box(&x), black_box(&w), None, p).unwrap())
    });
    group.bench_function(BenchmarkId::new("forward", "legacy"), |b| {
        b.iter(|| legacy::conv2d(black_box(&x), black_box(&w), None, p).unwrap())
    });
    group.bench_function(BenchmarkId::new("backward", "engine"), |b| {
        b.iter(|| conv2d_backward(black_box(&x), black_box(&w), black_box(&go), p).unwrap())
    });
    group.bench_function(BenchmarkId::new("backward", "legacy"), |b| {
        b.iter(|| legacy::conv2d_backward(black_box(&x), black_box(&w), black_box(&go), p).unwrap())
    });
    group.finish();

    // The EDSR-paper-scale body (F=256) is an order of magnitude heavier;
    // forward only, minimum sample count, so the suite stays runnable.
    let mut group = c.benchmark_group("conv2d_edsr_f256_b4_48x48");
    let x = init::uniform([4, 256, 48, 48], -1.0, 1.0, 4);
    let w = init::uniform([256, 256, 3, 3], -1.0, 1.0, 5);
    group.sample_size(5);
    group.bench_function(BenchmarkId::new("forward", "engine"), |b| {
        b.iter(|| conv2d(black_box(&x), black_box(&w), None, p).unwrap())
    });
    group.bench_function(BenchmarkId::new("forward", "legacy"), |b| {
        b.iter(|| legacy::conv2d(black_box(&x), black_box(&w), None, p).unwrap())
    });
    group.finish();
}

/// Raw GEMM at the im2col shape behind a single F=64 image:
/// C[64×2304] = W[64×576] · col[576×2304].
fn bench_raw_gemm(c: &mut Criterion) {
    let (m, k, n) = (64usize, 576usize, 2304usize);
    let a = init::uniform([m, k], -1.0, 1.0, 1);
    let b_mat = init::uniform([k, n], -1.0, 1.0, 2);
    let mut out = vec![0.0f32; m * n];

    let mut group = c.benchmark_group("gemm_64x576x2304");
    group.bench_function("packed", |b| {
        b.iter(|| {
            matmul::matmul_into(
                black_box(a.data()),
                black_box(b_mat.data()),
                &mut out,
                m,
                k,
                n,
            )
        })
    });
    group.bench_function("naive_ikj", |b| {
        b.iter(|| {
            legacy::matmul_into(
                black_box(a.data()),
                black_box(b_mat.data()),
                &mut out,
                m,
                k,
                n,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_backward,
    bench_edsr_shapes,
    bench_raw_gemm
);
criterion_main!(benches);
