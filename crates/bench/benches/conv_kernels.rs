//! Criterion microbenches for the convolution kernels — the compute
//! substrate every model in the workspace runs on. Ablation: im2col+GEMM
//! (production path) vs the direct reference implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlsr_tensor::conv::{conv2d, conv2d_backward, conv2d_reference, Conv2dParams};
use dlsr_tensor::init;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward");
    for &(ch, hw) in &[(16usize, 24usize), (32, 24), (64, 12)] {
        let x = init::uniform([2, ch, hw, hw], -1.0, 1.0, 1);
        let w = init::uniform([ch, ch, 3, 3], -1.0, 1.0, 2);
        let p = Conv2dParams::same(3);
        group.bench_with_input(
            BenchmarkId::new("im2col_gemm", format!("c{ch}_s{hw}")),
            &(&x, &w),
            |b, (x, w)| b.iter(|| conv2d(black_box(x), black_box(w), None, p).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("direct_reference", format!("c{ch}_s{hw}")),
            &(&x, &w),
            |b, (x, w)| {
                b.iter(|| conv2d_reference(black_box(x), black_box(w), None, p).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_backward");
    for &ch in &[16usize, 32] {
        let x = init::uniform([2, ch, 16, 16], -1.0, 1.0, 1);
        let w = init::uniform([ch, ch, 3, 3], -1.0, 1.0, 2);
        let p = Conv2dParams::same(3);
        let go = init::uniform([2, ch, 16, 16], -1.0, 1.0, 3);
        group.bench_with_input(BenchmarkId::from_parameter(ch), &ch, |b, _| {
            b.iter(|| conv2d_backward(black_box(&x), black_box(&w), black_box(&go), p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
