//! Criterion benches of the tensor-fusion machinery: static packing,
//! dynamic (cycle-aware) planning, and the registration cache — the
//! design pieces §II-D and §III-D turn on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dlsr_horovod::{plan_dynamic, plan_fusion, readiness_from_elems, TensorSpec};
use dlsr_net::RegistrationCache;

fn edsr_tensors() -> Vec<TensorSpec> {
    dlsr_models::EdsrConfig::full()
        .param_shapes()
        .into_iter()
        .rev()
        .map(|(name, elems)| TensorSpec { name, elems })
        .collect()
}

fn bench_fusion_planning(c: &mut Criterion) {
    let tensors = edsr_tensors();
    let readiness = readiness_from_elems(&tensors, 0.25);
    let mut group = c.benchmark_group("fusion_planning");
    for &threshold in &[16u64 << 20, 48 << 20, 64 << 20] {
        group.bench_with_input(
            BenchmarkId::new("static", threshold >> 20),
            &threshold,
            |b, &t| b.iter(|| plan_fusion(black_box(&tensors), t)),
        );
        group.bench_with_input(
            BenchmarkId::new("dynamic", threshold >> 20),
            &threshold,
            |b, &t| {
                b.iter(|| {
                    plan_dynamic(black_box(&tensors), &readiness, 80e-3, t, 1e-3, &|bytes| {
                        bytes as f64 / 12e9
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_registration_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("registration_cache");
    group.bench_function("hit_path", |b| {
        let mut cache = RegistrationCache::new(1 << 30);
        cache.lookup(1, 64 << 20);
        b.iter(|| black_box(cache.lookup(1, 64 << 20)))
    });
    group.bench_function("miss_with_eviction", |b| {
        let mut cache = RegistrationCache::new(4 << 20);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            black_box(cache.lookup(id, 1 << 20))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fusion_planning, bench_registration_cache);
criterion_main!(benches);
