//! Throughput under injected faults (requires `--features faults`).
//!
//! Two measurements, one file:
//!
//! - a criterion group `faults` timing the *host* cost of a clean run vs a
//!   lossy-transport run (the retry loop must not make the simulation
//!   itself measurably slower),
//! - a virtual-time sweep over every chaos scenario — throughput, timeline
//!   overhead, retry/backoff/degraded charges per fault class — written to
//!   `BENCH_faults.json` at the repo root so robustness overhead has
//!   before/after data points like the rest of the perf trajectory.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use dlsr_cluster::{train_real, RealTrainConfig, RealTrainResult};
use dlsr_faults::ChaosScenario;
use dlsr_mpi::MpiConfig;
use dlsr_net::ClusterTopology;

const NODES: usize = 2;
const GPUS_PER_NODE: usize = 2; // 4 ranks; 2 nodes so degraded-link bites
const STEPS: usize = 6;
const GLOBAL_BATCH: usize = 8;
const SEED: u64 = 42;

fn topo() -> ClusterTopology {
    ClusterTopology {
        name: format!("chaos-{NODES}x{GPUS_PER_NODE}"),
        nodes: NODES,
        gpus_per_node: GPUS_PER_NODE,
    }
}

fn cfg() -> RealTrainConfig {
    RealTrainConfig::builder()
        .steps(STEPS)
        .global_batch(GLOBAL_BATCH)
        .checkpoint_every(3)
        .build()
}

fn run(fault: Option<ChaosScenario>) -> RealTrainResult {
    let world = NODES * GPUS_PER_NODE;
    let mut mpi = MpiConfig::mpi_opt();
    if let Some(f) = fault {
        mpi = mpi
            .to_builder()
            .fault_plan(Some(Arc::new(f.plan(SEED, world, STEPS))))
            .build();
    }
    train_real(&topo(), mpi, &cfg())
}

fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults");
    group.sample_size(10);
    group.bench_function("clean", |b| b.iter(|| black_box(run(None).makespan)));
    group.bench_function("lossy", |b| {
        b.iter(|| black_box(run(Some(ChaosScenario::Lossy)).makespan))
    });
    group.finish();
}

fn write_fault_results() {
    let clean = run(None);
    let throughput = |r: &RealTrainResult| GLOBAL_BATCH as f64 * STEPS as f64 / r.makespan;
    let mut scenarios = std::collections::BTreeMap::new();
    for f in ChaosScenario::ALL {
        let res = run(Some(f));
        let same_math = res
            .final_params
            .iter()
            .map(|p| p.to_bits())
            .eq(clean.final_params.iter().map(|p| p.to_bits()));
        assert!(same_math, "fault `{f}` changed the training math");
        scenarios.insert(
            f.label().to_string(),
            serde_json::json!({
                "images_per_sec": throughput(&res),
                "makespan_s": res.makespan,
                "overhead_frac": res.makespan / clean.makespan - 1.0,
                "retries": res.comm_stats.retries,
                "backoff_s": res.comm_stats.backoff_seconds,
                "degraded_s": res.comm_stats.degraded_seconds,
                "math_bitwise_identical": same_math,
            }),
        );
        println!(
            "{:>15}: {:>7.1} img/s ({:+.1}% makespan, {} retries)",
            f.label(),
            throughput(&res),
            (res.makespan / clean.makespan - 1.0) * 100.0,
            res.comm_stats.retries
        );
    }
    let value = serde_json::json!({
        "workload": {
            "model": "EDSR(tiny)",
            "nodes": NODES,
            "gpus": NODES * GPUS_PER_NODE,
            "global_batch": GLOBAL_BATCH,
            "steps": STEPS,
            "checkpoint_every": 3,
            "scenario": "mpi-opt",
            "plan_seed": SEED,
        },
        "clean": {
            "images_per_sec": throughput(&clean),
            "makespan_s": clean.makespan,
        },
        "faults": serde_json::Value::Object(scenarios),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&value).expect("serialize"),
    )
    .expect("write BENCH_faults.json");
    println!("[results written to {path}]");
}

criterion_group!(benches, bench_faults);

fn main() {
    write_fault_results();
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
}
