//! Wire-efficiency of the compressed gradient formats (docs/WIRE.md).
//!
//! Three measurements, one file:
//!
//! - a **wire-byte sweep**: encoded bytes per [`WireFormat`] across the
//!   gradient size bins the selector distinguishes, asserting the headline
//!   claim — bf16 shrinks every >= 8 MiB bin by >= 1.8x,
//! - a traced virtual-time comparison of the overlapped 2-node profile:
//!   plain f32 vs hierarchical allreduce + bf16 wire + the (frozen) comm
//!   tuner, asserting exposed communication drops by >= 15%,
//! - a criterion group `wire` timing the host cost of the quantizers
//!   (compression must not make the simulation itself slow).
//!
//! Written to `results/BENCH_wire.json`. The assertions run in both bench
//! and `--test` mode, so CI exercises them via
//! `cargo bench -p dlsr-bench --bench wire -- --test`.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use dlsr_cluster::{train_real, RealTrainConfig};
use dlsr_models::EdsrConfig;
use dlsr_mpi::{MpiConfig, WireFormat};
use dlsr_net::ClusterTopology;

const NODES: usize = 2; // 8 ranks
const STEPS: usize = 3;

/// Gradient size bins of the sweep, in dense f32 bytes.
const BINS: [u64; 5] = [256 << 10, 1 << 20, 8 << 20, 32 << 20, 128 << 20];

/// Paper-width EDSR body (F=64) truncated to 4 residual blocks: ~1.9 MB
/// of gradients whose individual tensors (148–590 KB) sit above the
/// 128 KiB `rd_threshold`, so communication is bandwidth-dominated and
/// the two-level hierarchy actually engages — unlike `EdsrConfig::tiny`
/// (22 KB total), which is pure latency and compresses to nothing.
fn model() -> EdsrConfig {
    EdsrConfig {
        n_resblocks: 4,
        ..EdsrConfig::paper()
    }
}

fn cfg(tune_comm: bool) -> RealTrainConfig {
    RealTrainConfig::builder()
        .model(model())
        .steps(STEPS)
        .global_batch(8)
        .overlap(true)
        // Horovod's out-of-box fusion threshold (64 MB) — the untuned
        // configuration the paper starts from (§II-D). It fuses the whole
        // gradient set into one message that can only launch once the
        // last gradient lands, so the allreduce is genuinely exposed and
        // the wire format / hierarchy / tuner have something to save.
        .fusion_threshold(64 << 20)
        .tune_comm(tune_comm)
        .build()
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group.sample_size(10);
    let src: Vec<f32> = (0..1 << 18).map(|i| (i as f32).sin()).collect();
    for wf in [
        WireFormat::Bf16,
        WireFormat::Fp16,
        WireFormat::TopK { k_permille: 50 },
    ] {
        group.bench_function(format!("quantize/{wf}"), |b| {
            b.iter(|| {
                let mut buf = src.clone();
                wf.quantize(&mut buf);
                black_box(buf)
            })
        });
    }
    group.finish();
}

/// Mean exposed communication per rank of one traced overlapped run.
fn traced_exposed(mpi: MpiConfig, tune_comm: bool) -> (f64, f64) {
    let topo = ClusterTopology::lassen(NODES);
    if tune_comm {
        // Warm-up: explore and freeze the tuner so the traced run below
        // measures the tuned steady state, not the exploration sweep. The
        // run must outlast the candidate list (two steps per candidate:
        // settle + measure) for the decision to freeze and land in the
        // process-global table.
        let warmup = cfg(true).to_builder().steps(16).build();
        train_real(&topo, mpi.clone(), &warmup);
    }
    dlsr::trace::set_enabled(true);
    dlsr::trace::reset();
    let res = train_real(&topo, mpi, &cfg(tune_comm));
    dlsr::trace::set_enabled(false);
    let counters = dlsr::trace::counters_snapshot();
    dlsr::trace::reset();
    let report = dlsr::trace::report::StepReport::build(&res.trace, &counters);
    let n = report.ranks.len() as f64;
    let exposed = report.ranks.iter().map(|r| r.exposed_comm_s).sum::<f64>() / n;
    (res.makespan / STEPS as f64, exposed)
}

fn write_wire_results() {
    // Part 1: encoded bytes per format and size bin.
    let mut sweep = Vec::new();
    for dense in BINS {
        let elems = (dense / 4) as usize;
        let mut formats = std::collections::BTreeMap::new();
        for wf in WireFormat::ALL {
            let bytes = wf.wire_bytes(elems);
            formats.insert(
                wf.to_string(),
                serde_json::json!({
                    "wire_bytes": bytes,
                    "ratio": dense as f64 / bytes as f64,
                }),
            );
            if wf == WireFormat::Bf16 && dense >= 8 << 20 {
                let ratio = dense as f64 / bytes as f64;
                assert!(
                    ratio >= 1.8,
                    "bf16 shrinks a {} MiB bin only {ratio:.2}x (< 1.8x)",
                    dense >> 20
                );
            }
        }
        sweep.push(serde_json::json!({
            "dense_bytes": dense,
            "formats": serde_json::Value::Object(formats),
        }));
    }

    // Part 2: overlapped 2-node profile, f32 vs hierarchy+bf16+tuner.
    let (f32_step, f32_exposed) = traced_exposed(MpiConfig::mpi_opt(), false);
    let wire_cfg = MpiConfig::mpi_opt()
        .to_builder()
        .wire(WireFormat::Bf16)
        .wire_threshold(0)
        .hierarchical(true)
        .build();
    let (wire_step, wire_exposed) = traced_exposed(wire_cfg, true);
    let drop = 1.0 - wire_exposed / f32_exposed;
    assert!(
        drop >= 0.15,
        "hierarchy+bf16+tuner dropped exposed comm only {:.1}% \
         ({:.3} ms -> {:.3} ms, >= 15% required)",
        drop * 100.0,
        f32_exposed * 1e3,
        wire_exposed * 1e3,
    );

    let value = serde_json::json!({
        "workload": {
            "model": "EDSR(B=4, F=64)",
            "grad_bytes": model().grad_bytes(),
            "nodes": NODES,
            "gpus": NODES * 4,
            "global_batch": 8,
            "steps": STEPS,
            "scenario": "mpi-opt",
        },
        "size_bins": sweep,
        "overlapped_f32": {
            "step_time_s": f32_step,
            "exposed_comm_s": f32_exposed,
        },
        "overlapped_hier_bf16_tuned": {
            "step_time_s": wire_step,
            "exposed_comm_s": wire_exposed,
        },
        "exposed_drop_frac": drop,
        "step_speedup": f32_step / wire_step,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_wire.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&value).expect("serialize"),
    )
    .expect("write BENCH_wire.json");
    println!("[results written to {path}]");
    println!(
        "exposed comm: {:.3} ms f32 -> {:.3} ms hier+bf16+tuned ({:.1}% drop)",
        f32_exposed * 1e3,
        wire_exposed * 1e3,
        drop * 100.0
    );
}

criterion_group!(benches, bench_wire);

fn main() {
    write_wire_results();
    let mut criterion = Criterion::from_args();
    benches(&mut criterion);
}
